#![forbid(unsafe_code)]
#![deny(deprecated)]
//! Dijkstra semaphores over the `bloom-sim` deterministic simulator.
//!
//! Semaphores are the low-level baseline the paper's high-level mechanisms
//! (monitors, serializers, path expressions) are measured against: Bloom's
//! opening observation is that "the need for a mechanism that is higher
//! level than semaphores, and easier to use, is widely recognized".
//! This crate provides the classical constructs:
//!
//! * [`Semaphore`] — counting semaphore with a choice of [`Fairness`]:
//!   *strong* (FIFO, direct hand-off, no barging) or *weak* (a released
//!   permit may be stolen by a barger, so waiters can starve under an
//!   unfair scheduler — demonstrated in the test suite).
//! * [`BinarySemaphore`] — the two-state variant; `v` on an open semaphore
//!   is a programming error and panics, matching Dijkstra's definition.
//! * [`Lock`] — a mutual-exclusion convenience wrapper with a closure API.
//!
//! # Crash safety
//!
//! Bare `p`/`v` pairs have no crash story: a process that dies (fault-plan
//! kill or panic) between `p` and `v` takes the permit with it and later
//! entrants wedge — which is precisely the low-level-mechanism fragility
//! the crash-robustness experiment (R1) measures. The structured entry
//! points are safe: [`Semaphore::with_permit`] releases the permit during
//! the unwind, and [`Lock::with`]/[`Lock::try_with`] mark the lock
//! *poisoned* (surfaced as [`bloom_sim::Poisoned`]) and wake all waiters
//! so no survivor blocks forever. A process that dies while *blocked* in
//! `p` is removed from the wait queue by the queue's own unwind guard and
//! is never granted a permit.
//!
//! # Example
//!
//! ```
//! use bloom_sim::Sim;
//! use bloom_semaphore::Semaphore;
//! use std::sync::Arc;
//!
//! let mut sim = Sim::new();
//! let sem = Arc::new(Semaphore::strong("permits", 1));
//! for i in 0..2 {
//!     let sem = Arc::clone(&sem);
//!     sim.spawn(&format!("worker{i}"), move |ctx| {
//!         sem.p(ctx);
//!         ctx.emit("critical", &[i]);
//!         sem.v(ctx);
//!     });
//! }
//! let report = sim.run().unwrap();
//! assert_eq!(report.trace.count_user("critical"), 2);
//! ```

use bloom_sim::{Access, Ctx, Deadline, ObjId, Poisoned, WaitQueue};
use parking_lot::Mutex;

/// Outcome of a timed acquire ([`Semaphore::p_by`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryResult {
    /// A permit was obtained.
    Acquired,
    /// The timeout elapsed without obtaining a permit.
    TimedOut,
}

/// Wake-up discipline of a [`Semaphore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fairness {
    /// FIFO with direct hand-off: `v` transfers the permit straight to the
    /// longest-waiting process, so waiters are served in arrival order and
    /// cannot be overtaken (a "strong" or blocked-queue semaphore).
    Strong,
    /// `v` increments the count and wakes one waiter, but the woken process
    /// must re-contend: a process that calls `p` before the woken one is
    /// rescheduled can steal the permit (barging). Starvation is possible
    /// under an adversarial scheduler.
    Weak,
}

/// A counting semaphore.
#[derive(Debug)]
pub struct Semaphore {
    count: Mutex<u64>,
    queue: WaitQueue,
    fairness: Fairness,
    /// Identity of the count for the explorers' object-granular
    /// dependency tracking: two semaphores with different names never
    /// conflict footprint-wise.
    obj: ObjId,
}

impl Semaphore {
    /// Creates a semaphore with the given initial count and fairness.
    pub fn new(name: &str, initial: u64, fairness: Fairness) -> Self {
        Semaphore {
            count: Mutex::new(initial),
            queue: WaitQueue::new(name),
            fairness,
            obj: ObjId::new("semaphore", name),
        }
    }

    /// Creates a strong (FIFO hand-off) semaphore.
    pub fn strong(name: &str, initial: u64) -> Self {
        Semaphore::new(name, initial, Fairness::Strong)
    }

    /// Creates a weak (barging-prone) semaphore.
    pub fn weak(name: &str, initial: u64) -> Self {
        Semaphore::new(name, initial, Fairness::Weak)
    }

    /// Dijkstra's P operation: decrement the count, blocking while it is zero.
    pub fn p(&self, ctx: &Ctx) {
        match self.fairness {
            Fairness::Strong => {
                // The count is kernel-invisible shared state: mark the
                // quantum (see `Ctx::note_sync_obj`) before touching it.
                ctx.note_sync_obj_op(&self.obj, Access::Write);
                let available = {
                    let mut count = self.count.lock();
                    if *count > 0 {
                        *count -= 1;
                        true
                    } else {
                        false
                    }
                };
                if !available {
                    // The permit will be handed to us directly by `v`
                    // without touching the count — the resumed quantum
                    // reads no shared state, so it is deliberately *not*
                    // marked: a pure stutter after a hand-off stays
                    // prunable for the explorer.
                    self.queue.wait(ctx);
                }
            }
            Fairness::Weak => loop {
                // Each re-contention (including the first attempt and
                // every post-wake retry) touches the shared count.
                ctx.note_sync_obj_op(&self.obj, Access::Write);
                {
                    let mut count = self.count.lock();
                    if *count > 0 {
                        *count -= 1;
                        return;
                    }
                }
                self.queue.wait(ctx);
                // Re-contend: a barger may have taken the permit between
                // our wake-up and our next dispatch.
            },
        }
    }

    /// Non-blocking P: takes a permit if one is immediately available.
    ///
    /// **Explore-unsafe**: records no footprint. The count is shared
    /// state, and taking (or failing to take) a permit both mutates and
    /// branches on it — a solution calling this bare form inside an
    /// explored schedule is invisible to the object-granular prune, so
    /// the explorer may skip a sibling reordering that would change the
    /// outcome (see `tests/prune_soundness.rs`). Solution code must use
    /// [`Semaphore::try_p_ctx`]; this form exists for test assertions and
    /// post-run inspection only.
    pub fn try_p(&self) -> bool {
        let mut count = self.count.lock();
        if *count > 0 {
            *count -= 1;
            true
        } else {
            false
        }
    }

    /// Instrumented [`Semaphore::try_p`]: records the count access in the
    /// quantum's footprint (a write — the attempt may decrement, and the
    /// failure branch is invalidated by any concurrent `v`).
    pub fn try_p_ctx(&self, ctx: &Ctx) -> bool {
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        self.try_p()
    }

    /// Timed P: blocks until the [`Deadline`] — relative
    /// (`u64`/`Duration` ticks) or absolute ([`Deadline::at`],
    /// [`Ctx::deadline_after`]) — expires.
    ///
    /// An already-expired deadline degenerates to a [`Semaphore::try_p`]
    /// that never parks, so retry loops can pass a fixed absolute deadline
    /// through repeated acquire attempts without re-computing remaining
    /// ticks.
    ///
    /// The timeout-vs-wake race (see [`WaitQueue::wait_by`]) cannot
    /// lose a permit in either direction: a `v` that skips a waiter whose
    /// timer already fired falls back to incrementing the count, and a
    /// hand-off that wins the race simply delivers the permit. On a strong
    /// semaphore a timed-out waiter reports [`TryResult::TimedOut`] even
    /// if a permit became free in the same instant (hand-off order is
    /// king); a weak waiter re-contends one final time before giving up.
    pub fn p_by(&self, ctx: &Ctx, deadline: impl Into<Deadline>) -> TryResult {
        // The non-parking fast path below mutates the count without any
        // kernel-visible operation; the timed paths disable pruning for
        // the whole run anyway (timers), so the entry mark is what keeps
        // the fast path honest.
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        let deadline = deadline.into();
        let Some(ticks) = ctx.remaining(deadline) else {
            // Expired: one permit check, no parking.
            return if self.try_p() {
                TryResult::Acquired
            } else {
                TryResult::TimedOut
            };
        };
        match self.fairness {
            Fairness::Strong => {
                if self.try_p() {
                    return TryResult::Acquired;
                }
                if self.queue.wait_by(ctx, ticks) {
                    // Woken by v's direct hand-off: the permit is ours.
                    TryResult::Acquired
                } else {
                    TryResult::TimedOut
                }
            }
            Fairness::Weak => {
                let abs = match deadline.absolute() {
                    Some(t) => t,
                    None => ctx.now().plus(ticks),
                };
                loop {
                    if self.try_p() {
                        return TryResult::Acquired;
                    }
                    let now = ctx.now();
                    if now >= abs {
                        return TryResult::TimedOut;
                    }
                    if !self.queue.wait_by(ctx, abs.0 - now.0) {
                        // Timed out parked; the barging discipline grants
                        // one last look at the count.
                        return if self.try_p() {
                            TryResult::Acquired
                        } else {
                            TryResult::TimedOut
                        };
                    }
                }
            }
        }
    }

    /// Runs `f` with a permit held, releasing it even if `f` unwinds
    /// (fault-plan kill or panic): the crash-safe alternative to a bare
    /// `p`/`v` pair.
    pub fn with_permit<R>(&self, ctx: &Ctx, f: impl FnOnce() -> R) -> R {
        self.p(ctx);
        let cleanup = ReleaseOnUnwind { sem: self, ctx };
        let r = f();
        std::mem::forget(cleanup);
        self.v(ctx);
        r
    }

    /// Dijkstra's V operation: release a permit.
    pub fn v(&self, ctx: &Ctx) {
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        match self.fairness {
            Fairness::Strong => {
                // Direct hand-off: if anyone waits, the permit never becomes
                // visible to bargers.
                if self.queue.wake_one(ctx).is_none() {
                    *self.count.lock() += 1;
                }
            }
            Fairness::Weak => {
                *self.count.lock() += 1;
                self.queue.wake_one(ctx);
            }
        }
    }

    /// Current count (permits immediately available).
    ///
    /// **Explore-unsafe probe** — see [`Semaphore::try_p`]; solution code
    /// that branches on the count must use [`Semaphore::value_ctx`].
    pub fn value(&self) -> u64 {
        *self.count.lock()
    }

    /// Instrumented [`Semaphore::value`] (footprint-recorded read).
    pub fn value_ctx(&self, ctx: &Ctx) -> u64 {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.value()
    }

    /// Number of processes blocked in [`Semaphore::p`].
    ///
    /// **Explore-unsafe probe** — see [`Semaphore::try_p`]; solution code
    /// that branches on the queue must use [`Semaphore::waiting_ctx`].
    pub fn waiting(&self) -> usize {
        self.queue.len()
    }

    /// Instrumented [`Semaphore::waiting`] (footprint-recorded read).
    pub fn waiting_ctx(&self, ctx: &Ctx) -> usize {
        self.queue.len_ctx(ctx)
    }

    /// The configured fairness discipline.
    pub fn fairness(&self) -> Fairness {
        self.fairness
    }

    /// The diagnostic name this semaphore was created with.
    pub fn name(&self) -> &str {
        self.queue.name()
    }
}

/// Returns the permit of a [`Semaphore::with_permit`] section whose body
/// unwound. Disarmed with `mem::forget` on the normal path.
struct ReleaseOnUnwind<'a> {
    sem: &'a Semaphore,
    ctx: &'a Ctx,
}

impl Drop for ReleaseOnUnwind<'_> {
    fn drop(&mut self) {
        // Shutdown cancellations unwind concurrently; kernel state and the
        // trace are off-limits then, and nobody is left to need the permit.
        if self.ctx.cancelling() {
            return;
        }
        self.sem.v(self.ctx);
    }
}

/// A binary semaphore: the count is only ever 0 or 1.
///
/// Following Dijkstra, `v` on an already-open binary semaphore is a
/// programming error rather than a no-op, and panics.
#[derive(Debug)]
pub struct BinarySemaphore {
    inner: Semaphore,
}

impl BinarySemaphore {
    /// Creates a binary semaphore; `open` selects the initial state.
    pub fn new(name: &str, open: bool) -> Self {
        BinarySemaphore {
            inner: Semaphore::strong(name, u64::from(open)),
        }
    }

    /// P: close the semaphore, blocking while it is closed.
    pub fn p(&self, ctx: &Ctx) {
        self.inner.p(ctx);
    }

    /// V: open the semaphore.
    ///
    /// # Panics
    ///
    /// Panics if the semaphore is already open (count would exceed 1).
    pub fn v(&self, ctx: &Ctx) {
        assert!(
            self.inner.value() == 0,
            "V on an already-open binary semaphore \"{}\"",
            self.inner.name()
        );
        self.inner.v(ctx);
    }

    /// Whether the semaphore is currently open.
    ///
    /// **Explore-unsafe probe** — see [`Semaphore::try_p`]; solution code
    /// that branches on the state must use
    /// [`BinarySemaphore::is_open_ctx`].
    pub fn is_open(&self) -> bool {
        self.inner.value() == 1
    }

    /// Instrumented [`BinarySemaphore::is_open`] (footprint-recorded).
    pub fn is_open_ctx(&self, ctx: &Ctx) -> bool {
        self.inner.value_ctx(ctx) == 1
    }
}

/// Mutual exclusion built from a strong binary semaphore, with a closure
/// API that makes forgetting the release impossible.
///
/// # Crash safety
///
/// If the body of a [`Lock::with`]/[`Lock::try_with`] section unwinds
/// (fault-plan kill or panic), the lock is marked *poisoned* — the
/// protected state may be mid-update — and released, so waiters wake
/// instead of wedging. Subsequent [`Lock::try_with`] calls observe
/// [`Poisoned`]; plain [`Lock::with`] panics on a poisoned lock, keeping
/// the failure loud. The bare [`Lock::acquire`]/[`Lock::release`] pair
/// has no crash protection, exactly like a raw semaphore.
#[derive(Debug)]
pub struct Lock {
    sem: Semaphore,
    poisoned: Mutex<Option<Poisoned>>,
}

impl Lock {
    /// Creates an open lock.
    pub fn new(name: &str) -> Self {
        Lock {
            sem: Semaphore::strong(name, 1),
            poisoned: Mutex::new(None),
        }
    }

    /// Runs `f` with the lock held.
    ///
    /// # Panics
    ///
    /// Panics if the lock is poisoned (a previous holder died mid-section).
    /// Use [`Lock::try_with`] to handle poisoning as a value.
    pub fn with<R>(&self, ctx: &Ctx, f: impl FnOnce() -> R) -> R {
        match self.try_with(ctx, f) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Runs `f` with the lock held, surfacing poisoning instead of
    /// panicking. The body is not entered on a poisoned lock.
    pub fn try_with<R>(&self, ctx: &Ctx, f: impl FnOnce() -> R) -> Result<R, Poisoned> {
        self.sem.p(ctx);
        // Unlike a bare strong-semaphore hand-off, the quantum resumed
        // here *does* read shared state (the poison flag), so it must be
        // marked even though `p` itself leaves the hand-off unmarked.
        ctx.note_sync_obj_op(&self.sem.obj, Access::Read);
        if let Some(p) = self.poisoned.lock().clone() {
            ctx.emit(&format!("poison-seen:{}", self.name()), &[]);
            self.sem.v(ctx);
            return Err(p);
        }
        let cleanup = PoisonOnUnwind { lock: self, ctx };
        let r = f();
        std::mem::forget(cleanup);
        self.sem.v(ctx);
        Ok(r)
    }

    /// Whether a previous holder died inside a closure section.
    ///
    /// **Explore-unsafe probe** — see [`Semaphore::try_p`]; solution code
    /// that branches on poisoning must use [`Lock::is_poisoned_ctx`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.lock().is_some()
    }

    /// Instrumented [`Lock::is_poisoned`] (footprint-recorded read).
    pub fn is_poisoned_ctx(&self, ctx: &Ctx) -> bool {
        ctx.note_sync_obj_op(&self.sem.obj, Access::Read);
        self.is_poisoned()
    }

    /// The diagnostic name this lock was created with.
    pub fn name(&self) -> &str {
        self.sem.name()
    }

    /// Acquires the lock without the closure API; pair with [`Lock::release`].
    pub fn acquire(&self, ctx: &Ctx) {
        self.sem.p(ctx);
    }

    /// Releases the lock acquired with [`Lock::acquire`].
    pub fn release(&self, ctx: &Ctx) {
        self.sem.v(ctx);
    }
}

/// Poisons and releases a [`Lock`] whose closure section unwound.
struct PoisonOnUnwind<'a> {
    lock: &'a Lock,
    ctx: &'a Ctx,
}

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        if self.ctx.cancelling() {
            return;
        }
        *self.lock.poisoned.lock() = Some(Poisoned {
            primitive: self.lock.name().to_string(),
            by: self.ctx.pid(),
        });
        self.ctx.emit(&format!("poison:{}", self.lock.name()), &[]);
        // Release so waiters wake and observe the poison instead of
        // blocking forever behind a dead holder.
        self.lock.sem.v(self.ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_sim::{FifoPolicy, RandomPolicy, Sim};
    use std::sync::Arc;

    /// N workers around a 1-permit semaphore: the critical section is
    /// exclusive (checked via an occupancy counter).
    fn exclusion_scenario(fairness: Fairness) {
        let mut sim = Sim::new();
        let sem = Arc::new(Semaphore::new("cs", 1, fairness));
        let occupancy = Arc::new(Mutex::new((0u32, 0u32))); // (current, max)
        for i in 0..5 {
            let sem = Arc::clone(&sem);
            let occ = Arc::clone(&occupancy);
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..4 {
                    sem.p(ctx);
                    {
                        let mut o = occ.lock();
                        o.0 += 1;
                        o.1 = o.1.max(o.0);
                    }
                    ctx.yield_now(); // stretch the critical section
                    occ.lock().0 -= 1;
                    sem.v(ctx);
                }
            });
        }
        sim.run().expect("no deadlock");
        assert_eq!(occupancy.lock().1, 1, "mutual exclusion held");
    }

    #[test]
    fn strong_semaphore_enforces_exclusion() {
        exclusion_scenario(Fairness::Strong);
    }

    #[test]
    fn weak_semaphore_enforces_exclusion() {
        exclusion_scenario(Fairness::Weak);
    }

    #[test]
    fn initial_count_admits_that_many() {
        let mut sim = Sim::new();
        let sem = Arc::new(Semaphore::strong("pool", 3));
        let peak = Arc::new(Mutex::new((0u32, 0u32)));
        for i in 0..6 {
            let sem = Arc::clone(&sem);
            let peak = Arc::clone(&peak);
            sim.spawn(&format!("w{i}"), move |ctx| {
                sem.p(ctx);
                {
                    let mut p = peak.lock();
                    p.0 += 1;
                    p.1 = p.1.max(p.0);
                }
                ctx.yield_now();
                ctx.yield_now();
                peak.lock().0 -= 1;
                sem.v(ctx);
            });
        }
        sim.run().unwrap();
        let (_, max) = *peak.lock();
        assert_eq!(max, 3, "exactly the pool size runs concurrently");
    }

    #[test]
    fn strong_serves_in_fifo_order() {
        let mut sim = Sim::new();
        let sem = Arc::new(Semaphore::strong("s", 0));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let sem = Arc::clone(&sem);
            let order = Arc::clone(&order);
            sim.spawn(&format!("w{i}"), move |ctx| {
                sem.p(ctx);
                order.lock().push(i);
            });
        }
        let sem2 = Arc::clone(&sem);
        sim.spawn("releaser", move |ctx| {
            for _ in 0..5 {
                ctx.yield_now();
            }
            for _ in 0..4 {
                sem2.v(ctx);
            }
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    /// The classical weak/strong distinction, under a *fair* (FIFO)
    /// scheduler. A cycler holds the permit and repeatedly does `v(); p()`
    /// without yielding in between: with a weak semaphore each `v` wakes the
    /// victim but the cycler's very next `p` steals the permit back before
    /// the victim is dispatched, so the victim re-parks every cycle
    /// (barging starvation). A strong semaphore hands the permit directly
    /// to the victim on the first `v`, so the victim enters immediately.
    #[test]
    fn weak_semaphore_allows_barging_starvation() {
        const CYCLES: u64 = 100;
        let run = |fairness: Fairness| -> u64 {
            let mut sim = Sim::new();
            let sem = Arc::new(Semaphore::new("s", 1, fairness));
            let cycle = Arc::new(Mutex::new(0u64));
            let entered_at = Arc::new(Mutex::new(u64::MAX));

            let sem1 = Arc::clone(&sem);
            let cycle1 = Arc::clone(&cycle);
            sim.spawn("cycler", move |ctx| {
                sem1.p(ctx); // take the permit before the victim arrives
                ctx.yield_now(); // let the victim block
                for _ in 0..CYCLES {
                    *cycle1.lock() += 1;
                    sem1.v(ctx);
                    sem1.p(ctx); // barge (weak) or block behind victim (strong)
                    ctx.yield_now();
                }
                sem1.v(ctx);
            });

            let sem2 = Arc::clone(&sem);
            let cycle2 = Arc::clone(&cycle);
            let entered2 = Arc::clone(&entered_at);
            sim.spawn("victim", move |ctx| {
                sem2.p(ctx);
                *entered2.lock() = *cycle2.lock();
                sem2.v(ctx);
            });

            sim.run().expect("no deadlock");
            let at = *entered_at.lock();
            at
        };
        assert!(
            run(Fairness::Strong) <= 1,
            "strong semaphore hands the victim the permit on the first v"
        );
        assert_eq!(
            run(Fairness::Weak),
            CYCLES,
            "weak semaphore starves the victim until the cycler stops"
        );
    }

    #[test]
    fn try_p_never_blocks() {
        let mut sim = Sim::new();
        let sem = Arc::new(Semaphore::strong("s", 1));
        let sem2 = Arc::clone(&sem);
        sim.spawn("t", move |_ctx| {
            assert!(sem2.try_p());
            assert!(!sem2.try_p());
            assert_eq!(sem2.value(), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn binary_semaphore_double_v_panics() {
        let mut sim = Sim::new();
        let b = Arc::new(BinarySemaphore::new("b", true));
        let b2 = Arc::clone(&b);
        sim.spawn("offender", move |ctx| b2.v(ctx));
        let err = sim.run().expect_err("double V must fail");
        assert!(err.to_string().contains("already-open"));
    }

    #[test]
    fn binary_semaphore_round_trip() {
        let mut sim = Sim::new();
        let b = Arc::new(BinarySemaphore::new("b", true));
        let b2 = Arc::clone(&b);
        sim.spawn("t", move |ctx| {
            assert!(b2.is_open());
            b2.p(ctx);
            assert!(!b2.is_open());
            b2.v(ctx);
            assert!(b2.is_open());
        });
        sim.run().unwrap();
    }

    #[test]
    fn lock_closure_sections_are_atomic() {
        let mut sim = Sim::new();
        let lock = Arc::new(Lock::new("l"));
        let inside = Arc::new(Mutex::new((0u32, 0u32)));
        for i in 0..4 {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..5 {
                    lock.with(ctx, || {
                        let mut o = inside.lock();
                        o.0 += 1;
                        o.1 = o.1.max(o.0);
                        o.0 -= 1;
                    });
                    ctx.yield_now();
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(inside.lock().1, 1);
    }

    #[test]
    fn counting_invariant_under_random_schedules() {
        for seed in 0..10 {
            let mut sim = Sim::new();
            sim.set_policy(RandomPolicy::new(seed));
            let sem = Arc::new(Semaphore::strong("s", 2));
            let occ = Arc::new(Mutex::new((0i64, 0i64)));
            for i in 0..6 {
                let sem = Arc::clone(&sem);
                let occ = Arc::clone(&occ);
                sim.spawn(&format!("w{i}"), move |ctx| {
                    for _ in 0..5 {
                        sem.p(ctx);
                        {
                            let mut o = occ.lock();
                            o.0 += 1;
                            o.1 = o.1.max(o.0);
                        }
                        ctx.yield_now();
                        occ.lock().0 -= 1;
                        sem.v(ctx);
                    }
                });
            }
            sim.run().unwrap();
            let (current, max) = *occ.lock();
            assert_eq!(current, 0);
            assert!(max <= 2, "seed {seed}: occupancy {max} exceeded permits");
        }
    }

    /// Withdrawal: a timed-out `p_by` leaves no residue — the holder
    /// still releases to an empty queue, a later retry succeeds, and the
    /// count balances. Exercised on both fairness disciplines.
    #[test]
    fn p_by_withdraws_cleanly_then_retries() {
        for fairness in [Fairness::Strong, Fairness::Weak] {
            let mut sim = Sim::new();
            let sem = Arc::new(Semaphore::new("s", 1, fairness));
            let outcome = Arc::new(Mutex::new(Vec::new()));

            let sem1 = Arc::clone(&sem);
            sim.spawn("holder", move |ctx| {
                sem1.p(ctx);
                ctx.sleep(10); // hold well past the requester's deadline
                sem1.v(ctx);
            });

            let sem2 = Arc::clone(&sem);
            let out2 = Arc::clone(&outcome);
            sim.spawn("requester", move |ctx| {
                let deadline = ctx.deadline_after(3);
                let first = sem2.p_by(ctx, deadline);
                out2.lock().push(first);
                // Expired deadline: degenerates to try_p, no parking.
                let again = sem2.p_by(ctx, deadline);
                out2.lock().push(again);
                assert_eq!(sem2.waiting(), 0, "withdrawal left no registration");
                // An untimed retry succeeds once the holder releases.
                sem2.p(ctx);
                sem2.v(ctx);
            });

            sim.run().expect("no deadlock");
            assert_eq!(
                *outcome.lock(),
                vec![TryResult::TimedOut, TryResult::TimedOut],
                "{fairness:?}"
            );
            assert_eq!(sem.value(), 1, "count balanced after timeout + retry");
        }
    }

    #[test]
    fn fifo_policy_keeps_weak_semaphore_live() {
        let mut sim = Sim::new();
        sim.set_policy(FifoPolicy);
        let sem = Arc::new(Semaphore::weak("s", 1));
        let done = Arc::new(Mutex::new(0));
        for i in 0..3 {
            let sem = Arc::clone(&sem);
            let done = Arc::clone(&done);
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..10 {
                    sem.p(ctx);
                    ctx.yield_now();
                    sem.v(ctx);
                }
                *done.lock() += 1;
            });
        }
        sim.run().unwrap();
        assert_eq!(*done.lock(), 3);
    }
}
