//! Crash-safety and timeout behavior of semaphores under fault injection:
//! kill-during-wait, permit containment via `with_permit`, `Lock` poisoning,
//! and the timeout-vs-wake race of `p_by`.

#![deny(deprecated)]

use bloom_semaphore::{Lock, Semaphore, TryResult};
use bloom_sim::{FaultPlan, LifoPolicy, Pid, Sim};
use parking_lot::Mutex;
use std::sync::Arc;

/// A process killed while blocked in `p` must be dequeued: the permit its
/// `v`-ing peer releases flows to a live waiter, never to the corpse.
#[test]
fn kill_while_blocked_in_p_does_not_swallow_the_permit() {
    let mut sim = Sim::new();
    // The victim's first scheduling point is its park inside `p`.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let sem = Arc::new(Semaphore::strong("s", 0));
    let got = Arc::new(Mutex::new(Vec::new()));
    let (s2, g2) = (Arc::clone(&sem), Arc::clone(&got));
    sim.spawn("victim", move |ctx| {
        s2.p(ctx);
        g2.lock().push("victim");
    });
    let (s3, g3) = (Arc::clone(&sem), Arc::clone(&got));
    sim.spawn("other", move |ctx| {
        s3.p(ctx);
        g3.lock().push("other");
    });
    let s4 = Arc::clone(&sem);
    sim.spawn("releaser", move |ctx| {
        for _ in 0..3 {
            ctx.yield_now();
        }
        s4.v(ctx);
    });
    let report = sim.run().expect("no deadlock: the dead waiter is dequeued");
    assert_eq!(*got.lock(), vec!["other"], "permit reaches the live waiter");
    assert_eq!(report.killed(), vec![Pid(0)]);
}

/// `with_permit` returns the permit when its body unwinds, so a crash in
/// the critical section does not wedge later acquirers.
#[test]
fn with_permit_releases_on_kill() {
    let mut sim = Sim::new();
    // Point 1 is the yield inside the victim's with_permit body.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let sem = Arc::new(Semaphore::strong("s", 1));
    let s2 = Arc::clone(&sem);
    sim.spawn("victim", move |ctx| {
        s2.with_permit(ctx, || {
            ctx.yield_now(); // killed mid-section
            ctx.emit("victim-finished", &[]);
        });
    });
    let s3 = Arc::clone(&sem);
    sim.spawn("other", move |ctx| {
        s3.with_permit(ctx, || ctx.emit("other-entered", &[]));
    });
    let report = sim.run().expect("permit returned on unwind: no wedge");
    assert_eq!(report.trace.count_user("victim-finished"), 0);
    assert_eq!(report.trace.count_user("other-entered"), 1);
    assert_eq!(sem.value(), 1, "permit count restored after the crash");
}

/// A bare `p`/`v` pair deliberately has no crash protection: a holder dying
/// between `p` and `v` wedges everyone behind it (the R1 baseline).
#[test]
fn bare_p_v_wedges_on_kill() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let sem = Arc::new(Semaphore::strong("s", 1));
    let s2 = Arc::clone(&sem);
    sim.spawn("victim", move |ctx| {
        s2.p(ctx);
        ctx.yield_now(); // killed holding the permit
        s2.v(ctx);
    });
    let s3 = Arc::clone(&sem);
    sim.spawn("other", move |ctx| {
        s3.p(ctx);
        s3.v(ctx);
    });
    let err = sim
        .run()
        .expect_err("the orphaned permit deadlocks `other`");
    assert!(err.is_deadlock());
}

/// A holder dying inside `Lock::try_with` poisons the lock; waiters wake
/// and observe `Poisoned` instead of blocking forever.
#[test]
fn lock_poison_propagates_to_waiters() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let lock = Arc::new(Lock::new("L"));
    let l2 = Arc::clone(&lock);
    sim.spawn("victim", move |ctx| {
        let r = l2.try_with(ctx, || {
            ctx.yield_now(); // killed mid-section
        });
        assert!(r.is_ok(), "unreachable: the victim never returns");
    });
    let l3 = Arc::clone(&lock);
    sim.spawn("waiter", move |ctx| {
        let r = l3.try_with(ctx, || ());
        let p = r.expect_err("the crashed holder poisoned the lock");
        assert_eq!(p.primitive, "L");
        assert_eq!(p.by, Pid(0));
        ctx.emit("poison-observed", &[]);
    });
    let report = sim.run().expect("poisoning contains the crash");
    assert!(lock.is_poisoned());
    assert_eq!(report.trace.count_user("poison:L"), 1);
    assert_eq!(report.trace.count_user("poison-seen:L"), 1);
    assert_eq!(report.trace.count_user("poison-observed"), 1);
}

/// Poisoning is sticky: every later `try_with` sees it, and the lock keeps
/// admitting (and immediately refusing) entrants without wedging.
#[test]
fn lock_poison_is_sticky_across_entrants() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let lock = Arc::new(Lock::new("L"));
    let l2 = Arc::clone(&lock);
    sim.spawn("victim", move |ctx| {
        let _ = l2.try_with(ctx, || ctx.yield_now());
    });
    for i in 0..3 {
        let lock = Arc::clone(&lock);
        sim.spawn(&format!("late{i}"), move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            assert!(lock.try_with(ctx, || ()).is_err());
            ctx.emit("refused", &[]);
        });
    }
    let report = sim.run().expect("no wedge");
    assert_eq!(report.trace.count_user("refused"), 3);
}

#[test]
fn p_by_fast_path_and_expiry() {
    let mut sim = Sim::new();
    let avail = Arc::new(Semaphore::strong("avail", 1));
    let empty = Arc::new(Semaphore::strong("empty", 0));
    let (a2, e2) = (Arc::clone(&avail), Arc::clone(&empty));
    sim.spawn("caller", move |ctx| {
        assert_eq!(a2.p_by(ctx, 10u64), TryResult::Acquired, "fast path");
        let before = ctx.now();
        assert_eq!(e2.p_by(ctx, 10u64), TryResult::TimedOut);
        assert!(
            ctx.now().0 >= before.0 + 10,
            "timeout waited the full budget in virtual time"
        );
        assert_eq!(e2.waiting(), 0, "the expired entry is gone");
    });
    sim.run().expect("clean run");
}

#[test]
fn p_by_woken_by_v_before_expiry() {
    let mut sim = Sim::new();
    let sem = Arc::new(Semaphore::strong("s", 0));
    let s2 = Arc::clone(&sem);
    sim.spawn("waiter", move |ctx| {
        assert_eq!(s2.p_by(ctx, 100u64), TryResult::Acquired);
        ctx.emit("acquired", &[ctx.now().0 as i64]);
    });
    let s3 = Arc::clone(&sem);
    sim.spawn("releaser", move |ctx| {
        ctx.sleep(5);
        s3.v(ctx);
    });
    let report = sim.run().expect("clean run");
    assert_eq!(report.trace.count_user("acquired"), 1);
    assert_eq!(sem.value(), 0, "the hand-off consumed the permit");
}

/// The timeout-vs-wake race: the releaser's `v` lands at the very instant
/// the waiter's timeout expires. Whatever order the scheduler picks, the
/// permit must be conserved — either the waiter acquired it (and holds
/// it), or it timed out and the permit is back on the counter.
#[test]
fn timeout_vs_wake_race_conserves_the_permit() {
    for fairness in ["strong", "weak"] {
        let mut sim = Sim::new();
        // LIFO runs the most-recently-readied process first, which at the
        // shared instant is the releaser: its wake_one pops the waiter's
        // stale entry, try_unpark fails, and v must fall back to count+=1.
        sim.set_policy(LifoPolicy);
        let sem = Arc::new(match fairness {
            "strong" => Semaphore::strong("s", 0),
            _ => Semaphore::weak("s", 0),
        });
        let s2 = Arc::clone(&sem);
        sim.spawn("waiter", move |ctx| {
            let outcome = s2.p_by(ctx, 10u64);
            match outcome {
                TryResult::Acquired => {
                    ctx.emit("got", &[]);
                    s2.v(ctx);
                }
                TryResult::TimedOut => ctx.emit("gave-up", &[]),
            }
        });
        let s3 = Arc::clone(&sem);
        sim.spawn("releaser", move |ctx| {
            ctx.sleep(10); // lands exactly at the waiter's deadline
            s3.v(ctx);
        });
        let report = sim.run().expect("clean run");
        let got = report.trace.count_user("got");
        let gave_up = report.trace.count_user("gave-up");
        assert_eq!(got + gave_up, 1, "{fairness}: exactly one outcome");
        assert_eq!(
            sem.value(),
            1,
            "{fairness}: the permit is never lost in the race"
        );
    }
}
