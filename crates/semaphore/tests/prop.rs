//! Property-based tests of semaphore invariants.

#![deny(deprecated)]

use bloom_semaphore::{Fairness, Semaphore};
use bloom_sim::{RandomPolicy, Sim, SimConfig};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The semaphore invariant: with `permits` initial permits, at most
    /// `permits` processes are ever inside the P…V section, for any
    /// fairness, workload shape and schedule — and all work completes.
    #[test]
    fn occupancy_never_exceeds_permits(
        permits in 1u64..4,
        procs in 1usize..7,
        ops in 1usize..6,
        weak in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::with_config(SimConfig {
            max_steps: 200_000,
            record_sched_events: false,
            ..SimConfig::default()
        });
        sim.set_policy(RandomPolicy::new(seed));
        let fairness = if weak { Fairness::Weak } else { Fairness::Strong };
        let sem = Arc::new(Semaphore::new("s", permits, fairness));
        let occ = Arc::new(Mutex::new((0i64, 0i64, 0usize))); // current, max, completed
        for i in 0..procs {
            let sem = Arc::clone(&sem);
            let occ = Arc::clone(&occ);
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..ops {
                    sem.p(ctx);
                    {
                        let mut o = occ.lock();
                        o.0 += 1;
                        o.1 = o.1.max(o.0);
                    }
                    ctx.yield_now();
                    {
                        let mut o = occ.lock();
                        o.0 -= 1;
                        o.2 += 1;
                    }
                    sem.v(ctx);
                }
            });
        }
        sim.run().expect("P/V loops cannot deadlock");
        let (current, max, completed) = *occ.lock();
        prop_assert_eq!(current, 0);
        prop_assert!(max as u64 <= permits, "occupancy {} > permits {}", max, permits);
        prop_assert_eq!(completed, procs * ops);
        prop_assert_eq!(sem.value(), permits, "all permits returned");
    }

    /// A strong semaphore serves blocked waiters in strict arrival order,
    /// whatever the scheduler does.
    #[test]
    fn strong_semaphores_are_fifo(
        procs in 2usize..7,
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(seed));
        let sem = Arc::new(Semaphore::strong("s", 0));
        let arrivals = Arc::new(Mutex::new(Vec::new()));
        let served = Arc::new(Mutex::new(Vec::new()));
        for i in 0..procs {
            let sem = Arc::clone(&sem);
            let arrivals = Arc::clone(&arrivals);
            let served = Arc::clone(&served);
            sim.spawn(&format!("w{i}"), move |ctx| {
                arrivals.lock().push(i);
                sem.p(ctx);
                served.lock().push(i);
            });
        }
        let sem2 = Arc::clone(&sem);
        let served2 = Arc::clone(&served);
        sim.spawn("releaser", move |ctx| {
            while sem2.waiting() < procs {
                ctx.yield_now(); // let everyone arrive and park
            }
            // Release one at a time, waiting for each grantee to record
            // itself, so the observed order is the hand-off order rather
            // than the (scheduler-dependent) resumption order.
            for k in 1..=procs {
                sem2.v(ctx);
                while served2.lock().len() < k {
                    ctx.yield_now();
                }
            }
        });
        sim.run().unwrap();
        prop_assert_eq!(arrivals.lock().clone(), served.lock().clone());
    }
}
