//! Plain-text table rendering for evaluation reports.
//!
//! The harness in `bloom-bench` regenerates the paper's qualitative
//! findings as matrices; this module renders them as aligned ASCII tables
//! so `EXPERIMENTS.md` and terminal output stay readable without extra
//! dependencies.

/// Renders an aligned table. `headers.len()` fixes the column count; every
/// row must have the same arity.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), headers.len(), "row {i} has wrong arity");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push(' ');
            line.push_str(cell);
            line.extend(std::iter::repeat_n(' ', w - cell.chars().count()));
            line.push_str(" |");
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut rule = String::from("|");
    for w in &widths {
        rule.push_str(&"-".repeat(w + 2));
        rule.push('|');
    }
    rule.push('\n');
    out.push_str(&rule);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Renders a section heading followed by a body.
pub fn section(title: &str, body: &str) -> String {
    format!("## {title}\n\n{body}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align_to_widest_cell() {
        let t = table(
            &["mech", "rating"],
            &[
                vec!["monitor".to_string(), "direct".to_string()],
                vec!["path-expr v1".to_string(), "workaround".to_string()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == width), "ragged table:\n{t}");
        assert!(lines[1].starts_with("|-"));
        assert!(t.contains("| path-expr v1 | workaround |"));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn ragged_rows_are_rejected() {
        table(&["a", "b"], &[vec!["only-one".to_string()]]);
    }

    #[test]
    fn section_formats_heading() {
        let s = section("Coverage", "body");
        assert!(s.starts_with("## Coverage\n\nbody"));
    }
}
