//! Coverage analysis and minimal test-set selection (paper §1, §4.1).
//!
//! The paper's goal is "a set of examples that includes all of these
//! properties with a minimum of redundancy; it will then be possible to
//! tell when an evaluation is complete". Treating each problem as the set
//! of `(constraint kind, info type)` features it exercises, that is a
//! set-cover problem: this module computes feature coverage, finds an
//! optimal minimum cover by exhaustive search (the catalog is small), and
//! provides the greedy approximation for larger catalogs.

use crate::taxonomy::{ConstraintKind, InfoType, ProblemSpec};
use std::collections::BTreeSet;

/// A `(kind, info)` pair a problem can exercise.
pub type Feature = (ConstraintKind, InfoType);

/// The features exercised by a set of problems.
pub fn coverage(problems: &[ProblemSpec]) -> BTreeSet<Feature> {
    problems.iter().flat_map(|p| p.features()).collect()
}

/// Features in `target` not exercised by `problems`.
pub fn gaps(problems: &[ProblemSpec], target: &BTreeSet<Feature>) -> BTreeSet<Feature> {
    let covered = coverage(problems);
    target.difference(&covered).copied().collect()
}

/// Whether `problems` exercise every feature in `target`.
pub fn is_complete(problems: &[ProblemSpec], target: &BTreeSet<Feature>) -> bool {
    gaps(problems, target).is_empty()
}

/// Finds a *minimum* subset of `catalog` covering `target`, by exhaustive
/// search over subsets (exponential, fine for the 8-problem catalog).
/// Returns indices into `catalog`, preferring smaller sets, then
/// lexicographically earlier ones. Returns `None` if even the full catalog
/// does not cover `target`.
pub fn minimal_cover(catalog: &[ProblemSpec], target: &BTreeSet<Feature>) -> Option<Vec<usize>> {
    assert!(
        catalog.len() <= 20,
        "exhaustive cover search needs a small catalog"
    );
    if !is_complete(catalog, target) {
        return None;
    }
    let feature_sets: Vec<BTreeSet<Feature>> = catalog.iter().map(|p| p.features()).collect();
    let mut best: Option<Vec<usize>> = None;
    for mask in 0u32..(1 << catalog.len()) {
        let chosen: Vec<usize> = (0..catalog.len())
            .filter(|i| mask & (1 << i) != 0)
            .collect();
        if let Some(b) = &best {
            if chosen.len() >= b.len() {
                continue;
            }
        }
        let mut covered: BTreeSet<Feature> = BTreeSet::new();
        for &i in &chosen {
            covered.extend(feature_sets[i].iter().copied());
        }
        if target.is_subset(&covered) {
            best = Some(chosen);
        }
    }
    best
}

/// Greedy set-cover: repeatedly picks the problem covering the most
/// still-uncovered features (ties broken by catalog order). Returns
/// indices into `catalog`; stops early (returning `None`) if no progress
/// is possible.
pub fn greedy_cover(catalog: &[ProblemSpec], target: &BTreeSet<Feature>) -> Option<Vec<usize>> {
    let feature_sets: Vec<BTreeSet<Feature>> = catalog.iter().map(|p| p.features()).collect();
    let mut uncovered: BTreeSet<Feature> = target.clone();
    let mut chosen = Vec::new();
    while !uncovered.is_empty() {
        let (best_i, best_gain) = (0..catalog.len())
            .filter(|i| !chosen.contains(i))
            .map(|i| (i, feature_sets[i].intersection(&uncovered).count()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?;
        if best_gain == 0 {
            return None;
        }
        for f in &feature_sets[best_i] {
            uncovered.remove(f);
        }
        chosen.push(best_i);
    }
    chosen.sort_unstable();
    Some(chosen)
}

/// The default evaluation target: every feature the full catalog exercises.
pub fn full_target(catalog: &[ProblemSpec]) -> BTreeSet<Feature> {
    coverage(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{catalog, ProblemId};

    #[test]
    fn full_catalog_is_complete_for_itself() {
        let cat = catalog();
        let target = full_target(&cat);
        assert!(is_complete(&cat, &target));
        assert!(gaps(&cat, &target).is_empty());
    }

    #[test]
    fn single_problem_leaves_gaps() {
        let cat = catalog();
        let target = full_target(&cat);
        let only_buffer: Vec<ProblemSpec> = cat
            .iter()
            .filter(|p| p.id == ProblemId::BoundedBuffer)
            .cloned()
            .collect();
        let g = gaps(&only_buffer, &target);
        assert!(!g.is_empty());
        assert!(g.contains(&(ConstraintKind::Priority, InfoType::RequestTime)));
    }

    #[test]
    fn minimal_cover_exists_and_is_minimal() {
        let cat = catalog();
        let target = full_target(&cat);
        let cover = minimal_cover(&cat, &target).expect("catalog covers itself");
        // The cover must actually cover.
        let chosen: Vec<ProblemSpec> = cover.iter().map(|&i| cat[i].clone()).collect();
        assert!(is_complete(&chosen, &target));
        // No single problem can be dropped.
        for skip in 0..cover.len() {
            let reduced: Vec<ProblemSpec> = cover
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != skip)
                .map(|(_, &i)| cat[i].clone())
                .collect();
            assert!(!is_complete(&reduced, &target), "cover was not minimal");
        }
        // The paper's observation: a handful of problems suffices.
        assert!(
            cover.len() <= 5,
            "expected a small cover, got {}",
            cover.len()
        );
    }

    #[test]
    fn greedy_cover_is_complete_if_not_necessarily_minimal() {
        let cat = catalog();
        let target = full_target(&cat);
        let exact = minimal_cover(&cat, &target).unwrap();
        let greedy = greedy_cover(&cat, &target).unwrap();
        let chosen: Vec<ProblemSpec> = greedy.iter().map(|&i| cat[i].clone()).collect();
        assert!(is_complete(&chosen, &target));
        assert!(greedy.len() >= exact.len());
    }

    #[test]
    fn uncoverable_target_returns_none() {
        let cat = catalog();
        let mut target = full_target(&cat);
        // Fabricate an impossible feature by removing every problem.
        let empty: Vec<ProblemSpec> = Vec::new();
        assert!(minimal_cover(&empty, &target).is_none() || target.is_empty());
        target.clear();
        assert_eq!(minimal_cover(&empty, &target), Some(vec![]));
    }

    #[test]
    fn greedy_fails_gracefully_on_uncoverable_target() {
        let cat = catalog();
        let target = full_target(&cat);
        let only_buffer: Vec<ProblemSpec> = cat
            .iter()
            .filter(|p| p.id == ProblemId::BoundedBuffer)
            .cloned()
            .collect();
        assert!(greedy_cover(&only_buffer, &target).is_none());
    }
}
