//! Constraint checkers over problem event streams.
//!
//! Each checker validates one kind of constraint from the paper's taxonomy
//! against a trace (as parsed by [`crate::events::extract`]). A checker
//! returns the list of [`Violation`]s it found — empty means the trace
//! satisfies the constraint. Because every mechanism's solution to a
//! problem emits the same event vocabulary, one checker validates all of
//! them, which is what makes cross-mechanism evaluation honest.

use crate::events::{instances, Phase, ProblemEvent};
use std::collections::HashMap;
use std::fmt;

/// One detected constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Trace sequence number at which the violation became evident.
    pub at_seq: u64,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[seq {}] {}", self.at_seq, self.message)
    }
}

/// Panics with a readable report if any violations were found. For tests.
pub fn expect_clean(violations: &[Violation], what: &str) {
    assert!(
        violations.is_empty(),
        "{what}: {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>()
    );
}

/// Checks an exclusion constraint given as a conflict relation: for every
/// pair `(a, b)` in `conflicts`, an execution of `a` may not overlap an
/// execution of `b`. Use `(x, x)` for self-exclusive operations.
pub fn check_exclusion(events: &[ProblemEvent], conflicts: &[(&str, &str)]) -> Vec<Violation> {
    let mut active: HashMap<&str, u32> = HashMap::new();
    let mut violations = Vec::new();
    let conflicts_with = |op: &str| -> Vec<&str> {
        conflicts
            .iter()
            .flat_map(|&(a, b)| {
                let mut v = Vec::new();
                if a == op {
                    v.push(b);
                }
                if b == op && a != op {
                    v.push(a);
                }
                v
            })
            .collect()
    };
    for e in events {
        match e.phase {
            Phase::Enter => {
                for other in conflicts_with(&e.op) {
                    let count = active.get(other).copied().unwrap_or(0);
                    if count > 0 {
                        violations.push(Violation {
                            at_seq: e.seq,
                            message: format!(
                                "{} entered {} while {} execution(s) of {} were active",
                                e.pid, e.op, count, other
                            ),
                        });
                    }
                }
                *active.entry(op_key(events, e)).or_insert(0) += 1;
            }
            Phase::Exit => {
                let count = active.entry(op_key(events, e)).or_insert(0);
                if *count == 0 {
                    violations.push(Violation {
                        at_seq: e.seq,
                        message: format!("{} exited {} which was not active", e.pid, e.op),
                    });
                } else {
                    *count -= 1;
                }
            }
            Phase::Request => {}
        }
    }
    violations
}

// Interns op names against the event slice to keep the `active` map borrow
// simple (all names outlive the scan).
fn op_key<'a>(_events: &'a [ProblemEvent], e: &'a ProblemEvent) -> &'a str {
    e.op.as_str()
}

/// Checks that at most `max` executions of `op` are ever concurrent.
pub fn check_max_concurrency(events: &[ProblemEvent], op: &str, max: u32) -> Vec<Violation> {
    let mut active = 0u32;
    let mut violations = Vec::new();
    for e in events.iter().filter(|e| e.op == op) {
        match e.phase {
            Phase::Enter => {
                active += 1;
                if active > max {
                    violations.push(Violation {
                        at_seq: e.seq,
                        message: format!("{active} concurrent executions of {op} (max {max})"),
                    });
                }
            }
            Phase::Exit => active = active.saturating_sub(1),
            Phase::Request => {}
        }
    }
    violations
}

/// Checks strict FCFS service: among the listed operations, enters happen
/// in exactly the order of the corresponding requests.
pub fn check_fifo(events: &[ProblemEvent], ops: &[&str]) -> Vec<Violation> {
    let relevant: Vec<&ProblemEvent> = events
        .iter()
        .filter(|e| ops.contains(&e.op.as_str()))
        .collect();
    let mut violations = Vec::new();
    // Instance matching on the filtered stream.
    let owned: Vec<ProblemEvent> = relevant.iter().map(|e| (*e).clone()).collect();
    let inst = instances(&owned);
    let mut by_request: Vec<&crate::events::Instance> = inst.iter().collect();
    by_request.sort_by_key(|i| owned[i.request].seq);
    let mut entered: Vec<(u64, u64)> = Vec::new(); // (request seq, enter seq)
    for i in &by_request {
        if let Some(enter) = i.enter {
            entered.push((owned[i.request].seq, owned[enter].seq));
        }
    }
    for w in entered.windows(2) {
        let ((req_a, ent_a), (req_b, ent_b)) = (w[0], w[1]);
        if ent_b < ent_a {
            violations.push(Violation {
                at_seq: ent_a,
                message: format!(
                    "FCFS violated: request at seq {req_b} entered (seq {ent_b}) before \
                     earlier request at seq {req_a} (entered seq {ent_a})"
                ),
            });
        }
    }
    violations
}

/// Checks a priority constraint: at a *grant decision*, a waiting
/// `preferred` request must beat a waiting `over` request.
///
/// A grant decision is made when the resource is released, i.e. at the
/// last `preferred`/`over` *exit* preceding an `over` entry. An `over`
/// entry is a violation if some `preferred` request was already pending at
/// that decision point and is still not served when `over` enters. (A
/// `preferred` request that arrives *after* the decision — during the
/// unavoidable hand-off window between the grant and the winner actually
/// starting — is not a violation: no mechanism can retract a grant.)
///
/// With `preferred = "read"`, `over = "write"` this is the
/// readers-priority condition of Courtois et al., and the checker that
/// exposes the footnote-3 anomaly in the paper's Figure-1 path-expression
/// solution: there the second writer is granted at the first writer's
/// exit although the reader had been waiting since before that exit. Swap
/// the arguments for writers priority.
pub fn check_priority_over(events: &[ProblemEvent], preferred: &str, over: &str) -> Vec<Violation> {
    let inst = instances(events);
    // Pending intervals for the preferred op: (request seq, enter seq).
    let pending: Vec<(u64, u64)> = inst
        .iter()
        .filter(|i| events[i.request].op == preferred)
        .map(|i| {
            let req = events[i.request].seq;
            let ent = i.enter.map_or(u64::MAX, |e| events[e].seq);
            (req, ent)
        })
        .collect();
    // Exit events that release the resource (decision points).
    let exits: Vec<u64> = events
        .iter()
        .filter(|e| e.phase == Phase::Exit && (e.op == preferred || e.op == over))
        .map(|e| e.seq)
        .collect();
    let mut violations = Vec::new();
    for e in events
        .iter()
        .filter(|e| e.op == over && e.phase == Phase::Enter)
    {
        // The grant decision for this entry: the last release before it.
        let Some(&decision) = exits.iter().rfind(|&&x| x < e.seq) else {
            continue; // entered an idle resource: no decision to contest
        };
        let waiting: Vec<u64> = pending
            .iter()
            .filter(|&&(req, ent)| req < decision && ent > e.seq)
            .map(|&(req, _)| req)
            .collect();
        if !waiting.is_empty() {
            violations.push(Violation {
                at_seq: e.seq,
                message: format!(
                    "{} entered {} although {} {} request(s) had been waiting since before \
                     the grant decision at seq {decision} (requested at seq {:?})",
                    e.pid,
                    over,
                    waiting.len(),
                    preferred,
                    waiting
                ),
            });
        }
    }
    violations
}

/// Checks that no `overtaking` request issued *after* a pending `waiting`
/// request enters before it.
///
/// This is the weaker, arrival-relative priority property: unlike
/// [`check_priority_over`] it permits requests already in flight when the
/// waiting request arrived to finish first. The paper's Figure-2
/// writers-priority path solution satisfies this (a reader that has passed
/// `requestread` completes), while still holding *new* readers back behind
/// a waiting writer.
pub fn check_no_later_overtake(
    events: &[ProblemEvent],
    waiting: &str,
    overtaking: &str,
) -> Vec<Violation> {
    let inst = instances(events);
    let waiting_inst: Vec<(u64, u64)> = inst
        .iter()
        .filter(|i| events[i.request].op == waiting)
        .map(|i| {
            (
                events[i.request].seq,
                i.enter.map_or(u64::MAX, |e| events[e].seq),
            )
        })
        .collect();
    let mut violations = Vec::new();
    for i in inst.iter().filter(|i| events[i.request].op == overtaking) {
        let (o_req, o_ent) = (
            events[i.request].seq,
            i.enter.map_or(u64::MAX, |e| events[e].seq),
        );
        for &(w_req, w_ent) in &waiting_inst {
            if o_req > w_req && o_ent < w_ent {
                violations.push(Violation {
                    at_seq: o_ent,
                    message: format!(
                        "{overtaking} requested at seq {o_req} entered (seq {o_ent}) ahead \
                         of {waiting} requested earlier at seq {w_req}"
                    ),
                });
            }
        }
    }
    violations
}

/// Checks that every request was eventually served (entered and exited).
pub fn check_all_served(events: &[ProblemEvent]) -> Vec<Violation> {
    let inst = instances(events);
    let mut violations = Vec::new();
    for i in &inst {
        let req = &events[i.request];
        if i.enter.is_none() {
            violations.push(Violation {
                at_seq: req.seq,
                message: format!("{} request for {} was never granted", req.pid, req.op),
            });
        } else if i.exit.is_none() {
            violations.push(Violation {
                at_seq: req.seq,
                message: format!("{} execution of {} never completed", req.pid, req.op),
            });
        }
    }
    violations
}

/// Checks bounded bypass for `op`: no request is overtaken by more than
/// `k` later-issued requests of the listed operations. `k = 0` is strict
/// FCFS for `op` relative to `ops`.
pub fn check_bounded_bypass(
    events: &[ProblemEvent],
    op: &str,
    ops: &[&str],
    k: usize,
) -> Vec<Violation> {
    let inst = instances(events);
    let mut violations = Vec::new();
    for i in inst.iter().filter(|i| events[i.request].op == op) {
        let req_seq = events[i.request].seq;
        let ent_seq = i.enter.map_or(u64::MAX, |e| events[e].seq);
        let overtakers = inst
            .iter()
            .filter(|j| ops.contains(&events[j.request].op.as_str()))
            .filter(|j| {
                let jr = events[j.request].seq;
                let je = j.enter.map_or(u64::MAX, |e| events[e].seq);
                jr > req_seq && je < ent_seq
            })
            .count();
        if overtakers > k {
            violations.push(Violation {
                at_seq: req_seq,
                message: format!(
                    "request for {op} at seq {req_seq} was bypassed {overtakers} times \
                     (bound {k})"
                ),
            });
        }
    }
    violations
}

/// Checks the one-slot-buffer constraint: `a` and `b` executions strictly
/// alternate, starting with `a`.
pub fn check_alternation(events: &[ProblemEvent], a: &str, b: &str) -> Vec<Violation> {
    let mut expect_a = true;
    let mut violations = Vec::new();
    for e in events
        .iter()
        .filter(|e| e.phase == Phase::Enter && (e.op == a || e.op == b))
    {
        let expected = if expect_a { a } else { b };
        if e.op != expected {
            violations.push(Violation {
                at_seq: e.seq,
                message: format!("expected {expected} next but {} entered {}", e.pid, e.op),
            });
            // Resynchronize on what actually happened to avoid cascades.
            expect_a = e.op == a;
        }
        expect_a = !expect_a;
    }
    violations
}

/// Checks N-slot buffer admission: at any moment the number of entered
/// deposits minus exited removes stays within `0..=capacity`, and a remove
/// enters only when a completed, unconsumed deposit exists.
pub fn check_buffer_bounds(
    events: &[ProblemEvent],
    deposit: &str,
    remove: &str,
    capacity: i64,
) -> Vec<Violation> {
    let mut dep_entered = 0i64;
    let mut dep_exited = 0i64;
    let mut rem_entered = 0i64;
    let mut rem_exited = 0i64;
    let mut violations = Vec::new();
    for e in events {
        match (e.op.as_str(), e.phase) {
            (op, Phase::Enter) if op == deposit => {
                dep_entered += 1;
                if dep_entered - rem_exited > capacity {
                    violations.push(Violation {
                        at_seq: e.seq,
                        message: format!(
                            "deposit admitted into a full buffer ({} in flight, capacity \
                             {capacity})",
                            dep_entered - rem_exited
                        ),
                    });
                }
            }
            (op, Phase::Exit) if op == deposit => dep_exited += 1,
            (op, Phase::Enter) if op == remove => {
                rem_entered += 1;
                if dep_exited - rem_entered < 0 {
                    violations.push(Violation {
                        at_seq: e.seq,
                        message: "remove admitted with no completed deposit available".to_string(),
                    });
                }
            }
            (op, Phase::Exit) if op == remove => rem_exited += 1,
            _ => {}
        }
    }
    violations
}

/// Checks elevator (SCAN) service order for `op`, whose first parameter is
/// the requested track.
///
/// The abstract policy every solution must realize: among requests pending
/// at the moment of service, continue in the current direction (tracks
/// `>= head` when sweeping up, `<= head` when sweeping down), nearest
/// first; when no pending request lies in the current direction, reverse.
/// Ties (equal track) are served in arrival order, which the track-only
/// check accepts automatically.
pub fn check_elevator(events: &[ProblemEvent], op: &str) -> Vec<Violation> {
    let inst = instances(events);
    #[derive(Clone, Copy)]
    struct Req {
        track: i64,
        req_seq: u64,
        ent_seq: u64, // u64::MAX if never entered
    }
    let reqs: Vec<Req> = inst
        .iter()
        .filter(|i| events[i.request].op == op)
        .map(|i| Req {
            track: events[i.request].params[0],
            req_seq: events[i.request].seq,
            ent_seq: i.enter.map_or(u64::MAX, |e| events[e].seq),
        })
        .collect();
    let mut entered: Vec<&Req> = reqs.iter().filter(|r| r.ent_seq != u64::MAX).collect();
    entered.sort_by_key(|r| r.ent_seq);

    let mut head = 0i64;
    let mut up = true;
    let mut violations = Vec::new();
    for serving in &entered {
        let pending: Vec<i64> = reqs
            .iter()
            .filter(|r| r.req_seq < serving.ent_seq && r.ent_seq >= serving.ent_seq)
            .map(|r| r.track)
            .collect();
        let ahead: Vec<i64> = if up {
            pending.iter().copied().filter(|&t| t >= head).collect()
        } else {
            pending.iter().copied().filter(|&t| t <= head).collect()
        };
        let expected = if !ahead.is_empty() {
            if up {
                *ahead.iter().min().expect("nonempty")
            } else {
                *ahead.iter().max().expect("nonempty")
            }
        } else {
            // Reverse direction.
            if up {
                pending.iter().copied().max().unwrap_or(serving.track)
            } else {
                pending.iter().copied().min().unwrap_or(serving.track)
            }
        };
        if serving.track != expected {
            violations.push(Violation {
                at_seq: serving.ent_seq,
                message: format!(
                    "elevator order violated: served track {} but expected {} \
                     (head {head}, sweeping {}, pending {pending:?})",
                    serving.track,
                    expected,
                    if up { "up" } else { "down" }
                ),
            });
        }
        // Update sweep state from what actually happened.
        if serving.track > head {
            up = true;
        } else if serving.track < head {
            up = false;
        } else if !ahead.contains(&serving.track) {
            up = !up;
        }
        head = serving.track;
    }
    violations
}

/// Checks alarm-clock wake-ups for `op`, whose parameters are
/// `[deadline, clock_at_wake]`: nobody wakes early, and nobody oversleeps
/// by more than `slack` clock units past its deadline.
pub fn check_alarm(events: &[ProblemEvent], op: &str, slack: i64) -> Vec<Violation> {
    let mut violations = Vec::new();
    for e in events
        .iter()
        .filter(|e| e.op == op && e.phase == Phase::Enter)
    {
        let (deadline, woke_at) = (e.params[0], e.params[1]);
        if woke_at < deadline {
            violations.push(Violation {
                at_seq: e.seq,
                message: format!(
                    "{} woke at clock {woke_at}, before deadline {deadline}",
                    e.pid
                ),
            });
        }
        if woke_at - deadline > slack {
            violations.push(Violation {
                at_seq: e.seq,
                message: format!(
                    "{} overslept: deadline {deadline}, woke at {woke_at} (slack {slack})",
                    e.pid
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::test_support::EventScript;
    use crate::events::Phase::{Enter, Exit, Request};

    #[test]
    fn exclusion_detects_overlap() {
        let events = EventScript::new()
            .ev(0, Request, "write", &[])
            .ev(0, Enter, "write", &[])
            .ev(1, Request, "read", &[])
            .ev(1, Enter, "read", &[]) // overlaps the write
            .ev(0, Exit, "write", &[])
            .ev(1, Exit, "read", &[])
            .build();
        let v = check_exclusion(&events, &[("read", "write"), ("write", "write")]);
        assert_eq!(v.len(), 1);
        assert!(v[0]
            .message
            .contains("entered read while 1 execution(s) of write"));
    }

    #[test]
    fn exclusion_allows_disjoint_and_self_concurrent_reads() {
        let events = EventScript::new()
            .re(0, "read")
            .re(1, "read") // reads overlap: fine
            .ev(0, Exit, "read", &[])
            .ev(1, Exit, "read", &[])
            .re(2, "write")
            .ev(2, Exit, "write", &[])
            .build();
        let v = check_exclusion(&events, &[("read", "write"), ("write", "write")]);
        expect_clean(&v, "disjoint rw");
    }

    #[test]
    fn self_exclusion_detects_double_entry() {
        let events = EventScript::new().re(0, "w").re(1, "w").build();
        let v = check_exclusion(&events, &[("w", "w")]);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn max_concurrency_counts_correctly() {
        let events = EventScript::new().re(0, "r").re(1, "r").re(2, "r").build();
        assert!(check_max_concurrency(&events, "r", 3).is_empty());
        assert_eq!(check_max_concurrency(&events, "r", 2).len(), 1);
    }

    #[test]
    fn fifo_detects_overtaking() {
        let events = EventScript::new()
            .ev(0, Request, "a", &[])
            .ev(1, Request, "a", &[])
            .ev(1, Enter, "a", &[]) // overtakes pid 0
            .ev(0, Enter, "a", &[])
            .build();
        let v = check_fifo(&events, &["a"]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("FCFS violated"));
    }

    #[test]
    fn fifo_accepts_in_order_service() {
        let events = EventScript::new()
            .ev(0, Request, "a", &[])
            .ev(1, Request, "a", &[])
            .ev(0, Enter, "a", &[])
            .ev(0, Exit, "a", &[])
            .ev(1, Enter, "a", &[])
            .build();
        expect_clean(&check_fifo(&events, &["a"]), "in order");
    }

    #[test]
    fn priority_over_detects_the_footnote3_shape() {
        // Writer 1 writes; the reader requests while it writes; at writer
        // 1's exit (the grant decision) writer 2 is chosen although the
        // reader had been waiting: Bloom's footnote-3 anomaly.
        let events = EventScript::new()
            .ev(1, Request, "write", &[])
            .ev(1, Enter, "write", &[])
            .ev(2, Request, "write", &[])
            .ev(7, Request, "read", &[])
            .ev(1, Exit, "write", &[]) // decision point
            .ev(2, Enter, "write", &[]) // writer 2 beats the waiting reader
            .ev(2, Exit, "write", &[])
            .ev(7, Enter, "read", &[])
            .build();
        let v = check_priority_over(&events, "read", "write");
        assert_eq!(v.len(), 1);
        assert!(v[0]
            .message
            .contains("had been waiting since before the grant decision"));
    }

    #[test]
    fn priority_over_excuses_the_handoff_window() {
        // The reader requests *after* the decision point (writer 1's exit)
        // but before writer 2 actually enters: no mechanism can retract
        // the grant, so this is not a violation.
        let events = EventScript::new()
            .ev(1, Request, "write", &[])
            .ev(1, Enter, "write", &[])
            .ev(2, Request, "write", &[])
            .ev(1, Exit, "write", &[]) // decision point: no reader waiting
            .ev(7, Request, "read", &[])
            .ev(2, Enter, "write", &[])
            .ev(2, Exit, "write", &[])
            .ev(7, Enter, "read", &[])
            .build();
        expect_clean(
            &check_priority_over(&events, "read", "write"),
            "hand-off window",
        );
    }

    #[test]
    fn priority_over_accepts_clean_readers_priority() {
        let events = EventScript::new()
            .re(0, "read")
            .ev(1, Request, "write", &[])
            .ev(0, Exit, "read", &[])
            .ev(1, Enter, "write", &[]) // nobody waiting: fine
            .ev(1, Exit, "write", &[])
            .build();
        expect_clean(
            &check_priority_over(&events, "read", "write"),
            "clean priority",
        );
    }

    #[test]
    fn no_later_overtake_permits_in_flight_but_rejects_newcomers() {
        // Reader in flight before the writer requested: allowed.
        let in_flight = EventScript::new()
            .ev(0, Request, "read", &[])
            .ev(1, Request, "write", &[])
            .ev(0, Enter, "read", &[])
            .ev(0, Exit, "read", &[])
            .ev(1, Enter, "write", &[])
            .build();
        expect_clean(
            &check_no_later_overtake(&in_flight, "write", "read"),
            "in flight",
        );
        // Reader requested after the writer but entered first: violation.
        let newcomer = EventScript::new()
            .ev(1, Request, "write", &[])
            .ev(0, Request, "read", &[])
            .ev(0, Enter, "read", &[])
            .ev(0, Exit, "read", &[])
            .ev(1, Enter, "write", &[])
            .build();
        assert_eq!(check_no_later_overtake(&newcomer, "write", "read").len(), 1);
    }

    #[test]
    fn all_served_flags_starvation() {
        let events = EventScript::new()
            .ev(0, Request, "a", &[])
            .re(1, "a")
            .ev(1, Exit, "a", &[])
            .build();
        let v = check_all_served(&events);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("never granted"));
    }

    #[test]
    fn bounded_bypass_counts_overtakers() {
        let events = EventScript::new()
            .ev(0, Request, "w", &[])
            .re(1, "r")
            .ev(1, Exit, "r", &[])
            .re(2, "r")
            .ev(2, Exit, "r", &[])
            .ev(0, Enter, "w", &[])
            .build();
        assert!(check_bounded_bypass(&events, "w", &["r"], 2).is_empty());
        assert_eq!(check_bounded_bypass(&events, "w", &["r"], 1).len(), 1);
    }

    #[test]
    fn alternation_checks_strict_interleaving() {
        let good = EventScript::new()
            .re(0, "deposit")
            .re(1, "remove")
            .re(0, "deposit")
            .re(1, "remove")
            .build();
        expect_clean(
            &check_alternation(&good, "deposit", "remove"),
            "alternation",
        );
        let bad = EventScript::new().re(0, "deposit").re(0, "deposit").build();
        assert_eq!(check_alternation(&bad, "deposit", "remove").len(), 1);
    }

    #[test]
    fn buffer_bounds_detect_overfill_and_underflow() {
        let overfill = EventScript::new()
            .re(0, "deposit")
            .ev(0, Exit, "deposit", &[])
            .re(0, "deposit")
            .ev(0, Exit, "deposit", &[])
            .re(0, "deposit") // third deposit into capacity-2 buffer
            .build();
        assert_eq!(
            check_buffer_bounds(&overfill, "deposit", "remove", 2).len(),
            1
        );
        let underflow = EventScript::new().re(1, "remove").build();
        assert_eq!(
            check_buffer_bounds(&underflow, "deposit", "remove", 2).len(),
            1
        );
    }

    #[test]
    fn elevator_accepts_scan_order() {
        // Requests at tracks 50, 10, 70 while head starts at 0 going up:
        // SCAN serves 10, 50, 70.
        let events = EventScript::new()
            .ev(0, Request, "seek", &[50])
            .ev(1, Request, "seek", &[10])
            .ev(2, Request, "seek", &[70])
            .ev(1, Enter, "seek", &[10])
            .ev(1, Exit, "seek", &[10])
            .ev(0, Enter, "seek", &[50])
            .ev(0, Exit, "seek", &[50])
            .ev(2, Enter, "seek", &[70])
            .ev(2, Exit, "seek", &[70])
            .build();
        expect_clean(&check_elevator(&events, "seek"), "scan order");
    }

    #[test]
    fn elevator_rejects_nearest_last() {
        let events = EventScript::new()
            .ev(0, Request, "seek", &[50])
            .ev(1, Request, "seek", &[10])
            .ev(0, Enter, "seek", &[50]) // skips 10 on the way up
            .ev(0, Exit, "seek", &[50])
            .ev(1, Enter, "seek", &[10])
            .ev(1, Exit, "seek", &[10])
            .build();
        let v = check_elevator(&events, "seek");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("expected 10"));
    }

    #[test]
    fn elevator_reverses_at_the_top() {
        // Head sweeps up to 80, then a request at 20 (below) is served on
        // the way down.
        let events = EventScript::new()
            .ev(0, Request, "seek", &[80])
            .ev(0, Enter, "seek", &[80])
            .ev(1, Request, "seek", &[20])
            .ev(0, Exit, "seek", &[80])
            .ev(1, Enter, "seek", &[20])
            .ev(1, Exit, "seek", &[20])
            .build();
        expect_clean(&check_elevator(&events, "seek"), "reversal");
    }

    #[test]
    fn alarm_checks_deadline_and_slack() {
        let events = EventScript::new()
            .ev(0, Request, "wake", &[10, 0])
            .ev(0, Enter, "wake", &[10, 10]) // exactly on time
            .ev(1, Request, "wake", &[10, 0])
            .ev(1, Enter, "wake", &[10, 9]) // early!
            .ev(2, Request, "wake", &[10, 0])
            .ev(2, Enter, "wake", &[10, 25]) // overslept with slack 5
            .build();
        let v = check_alarm(&events, "wake", 5);
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("before deadline"));
        assert!(v[1].message.contains("overslept"));
    }
}
