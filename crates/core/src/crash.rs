//! Crash-robustness checkers over whole simulation runs.
//!
//! The paper evaluates mechanisms on expressive power and modularity;
//! this module adds the robustness axis the fault-injection plane
//! (`bloom_sim::FaultPlan`) makes measurable: *what happens to everyone
//! else when a process dies at an arbitrary point?* Three verdicts are
//! possible, and the checkers here assign and validate them:
//!
//! * **Contained** — the run completes; surviving processes finish
//!   normally and no primitive was poisoned. The mechanism (or the
//!   solution's structure) absorbed the crash.
//! * **Poisoned** — the run completes because a crash-safe primitive
//!   converted the crash into an explicit, observable verdict
//!   (`poison:<primitive>` in the trace) that survivors saw instead of
//!   wedging behind the corpse.
//! * **Wedged** — the run fails. A *reported* deadlock is still a loud,
//!   diagnosable failure (the simulator names every blocked process);
//!   what [`check_crash_containment`] rejects is the silent kind —
//!   livelock (step-budget exhaustion) or a survivor panicking on
//!   corrupted state.
//!
//! Unlike the constraint checkers in [`crate::checks`], these consume the
//! whole [`SimReport`]/[`SimError`] (final process statuses matter, not
//! just the event stream).

use crate::checks::Violation;
use bloom_sim::{EventKind, Pid, SimError, SimErrorKind, SimReport, Trace};
use std::collections::HashMap;
use std::fmt;

/// The crash-robustness verdict for one (mechanism, scenario) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrashOutcome {
    /// The run completed and no primitive was poisoned: survivors never
    /// even saw the crash.
    Contained,
    /// The run completed because a primitive was poisoned: survivors
    /// observed an explicit verdict instead of wedging.
    Poisoned,
    /// The run failed (deadlock, livelock, or cascading panic): the crash
    /// took the rest of the system down with it.
    Wedged,
}

impl fmt::Display for CrashOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CrashOutcome::Contained => "contained",
            CrashOutcome::Poisoned => "poisoned",
            CrashOutcome::Wedged => "wedged",
        })
    }
}

/// Classifies a faulted run into its [`CrashOutcome`].
pub fn classify_crash(result: &Result<SimReport, SimError>) -> CrashOutcome {
    match result {
        Err(_) => CrashOutcome::Wedged,
        Ok(report) => {
            let poisoned = report
                .trace
                .user_events()
                .any(|(_, label, _)| label.starts_with("poison:"));
            if poisoned {
                CrashOutcome::Poisoned
            } else {
                CrashOutcome::Contained
            }
        }
    }
}

/// Checks that a crash was *contained*: killed processes died and stayed
/// dead, every surviving non-daemon process ran to completion, and the
/// failure mode — if any — was loud.
///
/// Accepted outcomes:
///
/// * `Ok` where every process in `victims` ended [`Killed`] and every
///   other non-daemon process ended [`Finished`];
/// * `Err` with a *reported deadlock* — the simulator names each blocked
///   process and its wait reason, so the operator can diagnose it. A
///   wedge is a robustness failure (see [`classify_crash`]), but it is
///   not a *containment* failure.
///
/// Rejected outcomes (violations):
///
/// * `Err(MaxStepsExceeded)` — the crash degenerated into a silent
///   livelock, the worst failure mode;
/// * `Err(ProcessPanicked)` — the crash cascaded: a survivor tripped
///   over state the victim left behind;
/// * `Ok` where a victim is not `Killed` (the fault plan never fired) or
///   a surviving non-daemon is not `Finished`.
///
/// [`Killed`]: bloom_sim::ProcessStatus::Killed
/// [`Finished`]: bloom_sim::ProcessStatus::Finished
pub fn check_crash_containment(
    result: &Result<SimReport, SimError>,
    victims: &[Pid],
) -> Vec<Violation> {
    use bloom_sim::ProcessStatus;
    let mut violations = Vec::new();
    match result {
        Err(e) => {
            let end = e.report.trace.len() as u64;
            match &e.kind {
                SimErrorKind::Deadlock { .. } => {} // loud: contained
                SimErrorKind::MaxStepsExceeded { limit } => violations.push(Violation {
                    at_seq: end,
                    message: format!(
                        "crash degenerated into a livelock (step budget {limit} exhausted)"
                    ),
                }),
                SimErrorKind::ProcessPanicked { pid, message } => violations.push(Violation {
                    at_seq: end,
                    message: format!("crash cascaded: surviving process {pid} panicked: {message}"),
                }),
            }
        }
        Ok(report) => {
            let end = report.trace.len() as u64;
            for p in &report.processes {
                if victims.contains(&p.pid) {
                    if p.status != ProcessStatus::Killed {
                        violations.push(Violation {
                            at_seq: end,
                            message: format!(
                                "victim {} \"{}\" was not killed (status {:?}): the fault \
                                 plan never fired",
                                p.pid, p.name, p.status
                            ),
                        });
                    }
                } else if !p.daemon && p.status != ProcessStatus::Finished {
                    violations.push(Violation {
                        at_seq: end,
                        message: format!(
                            "survivor {} \"{}\" did not finish (status {:?})",
                            p.pid, p.name, p.status
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Checks the poison protocol itself over a trace:
///
/// * a primitive is poisoned **at most once** — possession is exclusive,
///   so two `poison:<p>` events mean the guard fired for a process that
///   never held possession;
/// * every `poison:<p>` is preceded by a `Killed` **or** `Aborted` event
///   **for the same process** — poison may only originate from the unwind
///   of an injected kill or of a deadlock-recovery abort, never from
///   healthy code;
/// * every `poison-seen:<p>` observation comes **after** the poisoning —
///   nobody can observe a verdict that does not exist yet.
pub fn check_poison_propagation(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    // seq of each process's Killed/Aborted event (at most one per process:
    // either way the process never runs again).
    let killed_at: HashMap<Pid, u64> = trace
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Killed | EventKind::Aborted))
        .map(|e| (e.pid, e.seq))
        .collect();
    // First poison event per primitive.
    let mut poisoned_at: HashMap<&str, u64> = HashMap::new();
    for (event, label, _) in trace.user_events() {
        if let Some(primitive) = label.strip_prefix("poison:") {
            match poisoned_at.get(primitive) {
                Some(first) => violations.push(Violation {
                    at_seq: event.seq,
                    message: format!(
                        "primitive `{primitive}` poisoned twice (first at seq {first}): \
                         possession is exclusive, so a second poisoner cannot exist"
                    ),
                }),
                None => {
                    poisoned_at.insert(primitive, event.seq);
                    match killed_at.get(&event.pid) {
                        Some(&k) if k < event.seq => {}
                        _ => violations.push(Violation {
                            at_seq: event.seq,
                            message: format!(
                                "primitive `{primitive}` poisoned by {} without a preceding \
                                 kill or abort of that process: poison must originate from a \
                                 crash or a recovery abort",
                                event.pid
                            ),
                        }),
                    }
                }
            }
        } else if let Some(primitive) = label.strip_prefix("poison-seen:") {
            match poisoned_at.get(primitive) {
                Some(&p) if p < event.seq => {}
                _ => violations.push(Violation {
                    at_seq: event.seq,
                    message: format!(
                        "{} observed poison on `{primitive}` before any poisoning happened",
                        event.pid
                    ),
                }),
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_sim::{FaultPlan, Sim};

    /// Runs a healthy two-process sim with a kill, where the victim's
    /// unwind emits a poison event via a drop guard and the survivor
    /// observes it.
    fn poisoned_run() -> Result<SimReport, SimError> {
        let mut sim = Sim::new();
        sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
        sim.spawn("victim", |ctx| {
            let guard = scopeguard(ctx);
            ctx.yield_now(); // killed here
            std::mem::forget(guard);
        });
        sim.spawn("survivor", |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            ctx.emit("poison-seen:L", &[]);
        });
        sim.run()
    }

    /// A minimal drop guard emitting `poison:L`, standing in for the
    /// mechanism crates' real guards.
    fn scopeguard(ctx: &bloom_sim::Ctx) -> impl Drop + '_ {
        struct G<'a>(&'a bloom_sim::Ctx);
        impl Drop for G<'_> {
            fn drop(&mut self) {
                self.0.emit("poison:L", &[]);
            }
        }
        G(ctx)
    }

    #[test]
    fn classify_distinguishes_the_three_outcomes() {
        // Contained: clean run, no poison.
        let mut sim = Sim::new();
        sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
        sim.spawn("victim", |ctx| ctx.yield_now());
        sim.spawn("survivor", |_| {});
        let contained = sim.run();
        assert_eq!(classify_crash(&contained), CrashOutcome::Contained);

        // Poisoned: run completes with a poison event.
        let poisoned = poisoned_run();
        assert_eq!(classify_crash(&poisoned), CrashOutcome::Poisoned);

        // Wedged: survivor parks forever behind the corpse.
        let mut sim = Sim::new();
        sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
        sim.spawn("victim", |ctx| ctx.park("the-resource"));
        sim.spawn("stuck", |ctx| ctx.park("the-resource"));
        let wedged = sim.run();
        assert_eq!(classify_crash(&wedged), CrashOutcome::Wedged);
    }

    #[test]
    fn containment_accepts_clean_kill_and_reported_deadlock() {
        let r = poisoned_run();
        let victims = vec![Pid(0)];
        crate::checks::expect_clean(&check_crash_containment(&r, &victims), "poisoned run");

        // A reported deadlock is loud, hence contained.
        let mut sim = Sim::new();
        sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
        sim.spawn("victim", |ctx| ctx.park("lost"));
        sim.spawn("stuck", |ctx| ctx.park("lost"));
        let r = sim.run();
        assert!(r.is_err());
        crate::checks::expect_clean(&check_crash_containment(&r, &victims), "loud deadlock");
    }

    #[test]
    fn containment_rejects_unfired_plan_and_unfinished_survivor() {
        // The plan names a process that never reaches its kill point.
        let mut sim = Sim::new();
        sim.set_fault_plan(FaultPlan::new().kill("victim", 5));
        sim.spawn("victim", |ctx| ctx.yield_now());
        let r = sim.run();
        let v = check_crash_containment(&r, &[Pid(0)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("never fired"));
    }

    #[test]
    fn containment_rejects_cascading_panic() {
        let mut sim = Sim::new();
        sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
        sim.spawn("victim", |ctx| ctx.yield_now());
        sim.spawn("fragile", |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            panic!("tripped over the corpse's state");
        });
        let r = sim.run();
        let v = check_crash_containment(&r, &[Pid(0)]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("cascaded"));
    }

    #[test]
    fn poison_propagation_accepts_the_real_protocol() {
        let r = poisoned_run().expect("run completes");
        crate::checks::expect_clean(&check_poison_propagation(&r.trace), "protocol");
    }

    #[test]
    fn poison_propagation_rejects_spontaneous_and_premature_events() {
        // `poison:` from a healthy (never-killed) process.
        let mut sim = Sim::new();
        sim.spawn("liar", |ctx| ctx.emit("poison:L", &[]));
        let r = sim.run().unwrap();
        let v = check_poison_propagation(&r.trace);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("without a preceding kill"));

        // `poison-seen:` before any poisoning.
        let mut sim = Sim::new();
        sim.spawn("eager", |ctx| ctx.emit("poison-seen:L", &[]));
        let r = sim.run().unwrap();
        let v = check_poison_propagation(&r.trace);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("before any poisoning"));
    }

    #[test]
    fn poison_propagation_rejects_double_poisoning() {
        let mut sim = Sim::new();
        sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
        sim.spawn("victim", |ctx| {
            let g1 = scopeguard(ctx);
            let g2 = scopeguard(ctx);
            ctx.yield_now(); // killed: both guards fire
            std::mem::forget(g1);
            std::mem::forget(g2);
        });
        let r = sim.run().unwrap();
        let v = check_poison_propagation(&r.trace);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("poisoned twice"));
    }
}
