#![forbid(unsafe_code)]
#![deny(deprecated)]
//! Bloom's methodology for evaluating synchronization mechanisms.
//!
//! This crate is the primary contribution of the reproduced paper
//! ("Evaluating Synchronization Mechanisms", SOSP 1979): a *systematic*
//! way to assess synchronization constructs instead of ad-hoc example
//! chasing. It has four parts, mirroring the paper's sections:
//!
//! * [`taxonomy`] (§3) — synchronization schemes decompose into
//!   *exclusion* and *priority* constraints whose conditions reference six
//!   categories of information ([`InfoType`]); the canonical problem
//!   [`catalog`] encodes which problems exercise which categories
//!   (footnote 2's test suite plus the readers/writers variants of
//!   §5.1.2).
//! * [`cover`] (§1, §4.1) — coverage analysis and minimal test-set
//!   selection: "a set of examples that includes all of these properties
//!   with a minimum of redundancy".
//! * [`events`] / [`checks`] (§4.1) — a uniform event vocabulary that
//!   every mechanism's solution emits, plus machine checkers for each
//!   constraint class: exclusion, FCFS, readers/writers priority (the
//!   checker that exposes the paper's footnote-3 anomaly), buffer bounds,
//!   alternation, elevator order, alarm deadlines, bounded bypass.
//! * [`crash`] — the robustness axis the paper did not evaluate but its
//!   methodology supports: crash-containment and poison-protocol checkers
//!   over whole faulted runs (see `bloom_sim::FaultPlan`), classifying
//!   each (mechanism, scenario) cell as contained, poisoned, or wedged.
//! * [`liveness`] — the second robustness axis (R2): recovery-containment
//!   and starvation checkers over runs with deadlines, deadlock recovery,
//!   and the kernel starvation watchdog, classifying each (mechanism,
//!   scenario) cell as recovers, degrades, or wedges.
//! * [`laws`] — the third robustness axis (R3): invariant-first checking
//!   for schedule trees too big to enumerate. Declared laws (safety and
//!   starvation-freedom predicates over the event vocabulary) are
//!   searched for counterexamples by seeded sampling
//!   ([`bloom_sim::Sampler`]), and violating-run fractions are bucketed
//!   by [`classify_rate`] for the R3 report tables.
//! * [`profile`] / [`independence`](mod@independence) (§4.1, §4.2, §5) — expressive-power
//!   ratings per (mechanism, info type), the paper's own findings encoded
//!   as [`paper_profiles`], and the constraint-independence metrics used
//!   to reproduce §5.1.2's modifiability analysis.
//!
//! Mechanisms themselves live in sibling crates (`bloom-semaphore`,
//! `bloom-monitor`, `bloom-serializer`, `bloom-pathexpr`); the solutions
//! that wire everything together live in `bloom-problems`.

pub mod checks;
pub mod cover;
pub mod crash;
pub mod events;
pub mod independence;
pub mod laws;
pub mod liveness;
pub mod profile;
pub mod report;
pub mod taxonomy;

pub use checks::{expect_clean, Violation};
pub use cover::{coverage, full_target, gaps, greedy_cover, is_complete, minimal_cover, Feature};
pub use crash::{check_crash_containment, check_poison_propagation, classify_crash, CrashOutcome};
pub use events::{extract, instances, Instance, Phase, ProblemEvent};
pub use independence::{
    independence, modification_cost, ImplUnit, IndependenceReport, ModificationCost, SolutionDesc,
};
pub use laws::{
    classify_rate, eventual_service, exclusion, no_failure, starvation_free, Law, LawSet,
    LawViolation, RateClass, RunView,
};
pub use liveness::{
    check_recovery_containment, check_starvation_free, classify_liveness, LivenessOutcome,
};
pub use profile::{
    paper_profile, paper_profiles, Directness, MechanismId, MechanismProfile, Modularity, Support,
};
pub use taxonomy::{
    catalog, spec, ConstraintKind, ConstraintSpec, InfoType, ProblemId, ProblemSpec,
};
