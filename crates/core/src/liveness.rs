//! Liveness-robustness checkers over whole simulation runs (axis R2).
//!
//! [`crate::crash`] asks *what happens to everyone else when a process
//! dies*; this module asks the paper's other failure question — §5's
//! weak-semaphore starvation, nested-monitor deadlock, and priority
//! anomaly are all about requests that **never complete**. The liveness
//! layer in `bloom-sim` (deadlines and timed waits, the kernel starvation
//! watchdog, deadlock recovery by victim abort) makes that measurable, and
//! the checkers here assign one of three verdicts, mirroring R1's
//! contained/poisoned/wedged:
//!
//! * **Recovers** — the run completes, every surviving requester finishes,
//!   no primitive is poisoned, nobody is flagged as starved, and nobody
//!   permanently gave up — and nobody ever had to withdraw: every request
//!   was served within its first patience window.
//! * **RecoversAfterRetry** — same clean ending, but the trace shows the
//!   price of getting there: at least one `timed-out:`/`retry:` marker,
//!   i.e. a waiter withdrew a timed request and only a later attempt
//!   succeeded. Separating this from *degrades* is the point of the
//!   retry-with-backoff helper (`bloom_sim::retry_with_backoff`): a
//!   bounded retry loop that wins is a recovery, not a degradation — but
//!   it is not free either, so the matrix should show it.
//! * **Degrades** — the run completes, but only by paying a visible
//!   price: a primitive was poisoned by an aborted victim's unwind, the
//!   watchdog flagged a starved waiter, a requester gave up for good
//!   (`gave-up:` in the trace), or recovery consumed every requester so
//!   no useful work finished.
//! * **Wedges** — the run fails outright: unrecovered deadlock, livelock
//!   (step-budget exhaustion), or a cascading panic.

use crate::checks::Violation;
use bloom_sim::{EventKind, ProcessStatus, SimError, SimErrorKind, SimReport};
use std::fmt;

/// The liveness-robustness verdict for one (mechanism, scenario) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LivenessOutcome {
    /// Every requester was served within its first patience window: no
    /// withdrawal, no poison, no flag.
    Recovers,
    /// Every requester was eventually served, but only after at least one
    /// clean withdrawal (`timed-out:`/`retry:` in the trace) — recovery
    /// with a visible retry cost, kept distinct from [`Degrades`].
    RecoversAfterRetry,
    /// The system kept going, but visibly worse off: poison, a starvation
    /// flag, a permanent give-up, or no survivor progress.
    Degrades,
    /// The run failed (deadlock, livelock, or cascading panic).
    Wedges,
}

impl fmt::Display for LivenessOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LivenessOutcome::Recovers => "recovers",
            LivenessOutcome::RecoversAfterRetry => "recovers-after-retry",
            LivenessOutcome::Degrades => "degrades",
            LivenessOutcome::Wedges => "wedges",
        })
    }
}

/// Classifies a run of a liveness scenario into its [`LivenessOutcome`].
pub fn classify_liveness(result: &Result<SimReport, SimError>) -> LivenessOutcome {
    match result {
        Err(_) => LivenessOutcome::Wedges,
        Ok(report) => {
            let poisoned = report
                .trace
                .user_events()
                .any(|(_, label, _)| label.starts_with("poison:"));
            let gave_up = report
                .trace
                .user_events()
                .any(|(_, label, _)| label.starts_with("gave-up:"));
            let starved = !report.starvation.is_empty();
            let mut non_daemons = 0usize;
            let mut finished = 0usize;
            let mut stranded = false;
            for p in &report.processes {
                if p.daemon {
                    continue;
                }
                non_daemons += 1;
                match &p.status {
                    ProcessStatus::Finished => finished += 1,
                    ProcessStatus::Cancelled if report.recovered.contains(&p.pid) => {}
                    _ => stranded = true,
                }
            }
            let no_progress = non_daemons > 0 && finished == 0;
            if poisoned || gave_up || starved || stranded || no_progress {
                LivenessOutcome::Degrades
            } else if report
                .trace
                .user_events()
                .any(|(_, label, _)| label.starts_with("timed-out:") || label.starts_with("retry:"))
            {
                LivenessOutcome::RecoversAfterRetry
            } else {
                LivenessOutcome::Recovers
            }
        }
    }
}

/// Checks that deadlock recovery was *contained*: victims died cleanly and
/// loudly, and the failure mode — if any — was loud too.
///
/// Accepted outcomes:
///
/// * `Ok` where every pid in [`SimReport::recovered`] ended
///   [`Cancelled`] with an `Aborted` trace event, and every other
///   non-daemon ended [`Finished`] or was itself a later recovery victim;
/// * `Err` with a *reported deadlock* — recovery was off, and the
///   simulator named every blocked process.
///
/// Rejected outcomes (violations): silent livelock
/// (`Err(MaxStepsExceeded)`), a cascading panic
/// (`Err(ProcessPanicked)`), a victim that is not `Cancelled`, or a
/// non-victim survivor that never finished.
///
/// [`Cancelled`]: bloom_sim::ProcessStatus::Cancelled
/// [`Finished`]: bloom_sim::ProcessStatus::Finished
pub fn check_recovery_containment(result: &Result<SimReport, SimError>) -> Vec<Violation> {
    let mut violations = Vec::new();
    match result {
        Err(e) => {
            let end = e.report.trace.len() as u64;
            match &e.kind {
                SimErrorKind::Deadlock { .. } => {} // loud: diagnosable
                SimErrorKind::MaxStepsExceeded { limit } => violations.push(Violation {
                    at_seq: end,
                    message: format!(
                        "liveness failure degenerated into a livelock (step budget {limit} \
                         exhausted)"
                    ),
                }),
                SimErrorKind::ProcessPanicked { pid, message } => violations.push(Violation {
                    at_seq: end,
                    message: format!(
                        "recovery cascaded: surviving process {pid} panicked: {message}"
                    ),
                }),
            }
        }
        Ok(report) => {
            let end = report.trace.len() as u64;
            for p in &report.processes {
                if report.recovered.contains(&p.pid) {
                    if p.status != ProcessStatus::Cancelled {
                        violations.push(Violation {
                            at_seq: end,
                            message: format!(
                                "recovery victim {} \"{}\" is {:?}, expected Cancelled",
                                p.pid, p.name, p.status
                            ),
                        });
                    }
                    if !report
                        .trace
                        .events_for(p.pid)
                        .any(|e| e.kind == EventKind::Aborted)
                    {
                        violations.push(Violation {
                            at_seq: end,
                            message: format!(
                                "recovery victim {} \"{}\" has no Aborted trace event",
                                p.pid, p.name
                            ),
                        });
                    }
                } else if !p.daemon && p.status != ProcessStatus::Finished {
                    violations.push(Violation {
                        at_seq: end,
                        message: format!(
                            "survivor {} \"{}\" did not finish (status {:?})",
                            p.pid, p.name, p.status
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Checks that no wait episode was flagged by the kernel starvation
/// watchdog: one violation per [`bloom_sim::StarvationFlag`] in the
/// report. (The bound itself is configured on the simulation via
/// [`bloom_sim::SimConfig::starvation_bound`].)
pub fn check_starvation_free(report: &SimReport) -> Vec<Violation> {
    report
        .starvation
        .iter()
        .map(|flag| Violation {
            at_seq: report.trace.len() as u64,
            message: format!(
                "{} \"{}\" starved on {} for {} quanta (since {}, flagged at {}) while \
                 others progressed",
                flag.pid, flag.name, flag.reason, flag.age, flag.since, flag.flagged_at
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_sim::{Sim, SimConfig, WaitQueue};
    use std::sync::Arc;

    fn deadlocked_pair(recovery: bool) -> Result<SimReport, SimError> {
        let mut sim = Sim::new();
        if recovery {
            sim.enable_deadlock_recovery();
        }
        let q = Arc::new(WaitQueue::new("q"));
        for name in ["a", "b"] {
            let q = Arc::clone(&q);
            sim.spawn(name, move |ctx| q.wait(ctx));
        }
        sim.run()
    }

    #[test]
    fn classify_distinguishes_the_three_outcomes() {
        // Recovers: a clean run where everybody finishes.
        let mut sim = Sim::new();
        sim.set_starvation_bound(50);
        sim.spawn("worker", |ctx| ctx.yield_now());
        assert_eq!(classify_liveness(&sim.run()), LivenessOutcome::Recovers);

        // Recovers-after-retry: completes cleanly, but the trace shows a
        // withdrawal on the way — distinct from both ends.
        let mut sim = Sim::new();
        sim.spawn("patient", |ctx| {
            ctx.emit("timed-out:sem", &[0]);
            ctx.emit("retry:sem", &[1]);
        });
        assert_eq!(
            classify_liveness(&sim.run()),
            LivenessOutcome::RecoversAfterRetry
        );
        assert!(LivenessOutcome::Recovers < LivenessOutcome::RecoversAfterRetry);
        assert!(LivenessOutcome::RecoversAfterRetry < LivenessOutcome::Degrades);

        // Degrades: completes, but a requester permanently gave up.
        let mut sim = Sim::new();
        sim.spawn("quitter", |ctx| ctx.emit("gave-up:sem", &[]));
        sim.spawn("worker", |ctx| ctx.yield_now());
        assert_eq!(classify_liveness(&sim.run()), LivenessOutcome::Degrades);

        // Degrades: recovery consumed every requester (no progress).
        let recovered = deadlocked_pair(true);
        assert_eq!(classify_liveness(&recovered), LivenessOutcome::Degrades);

        // Wedges: unrecovered deadlock.
        let wedged = deadlocked_pair(false);
        assert_eq!(classify_liveness(&wedged), LivenessOutcome::Wedges);
    }

    #[test]
    fn classify_degrades_on_starvation_flag() {
        let mut sim = Sim::new();
        sim.set_starvation_bound(3);
        let q = Arc::new(WaitQueue::new("slow"));
        let q2 = Arc::clone(&q);
        sim.spawn("victim", move |ctx| q2.wait(ctx));
        let q3 = Arc::clone(&q);
        sim.spawn("cycler", move |ctx| {
            for _ in 0..10 {
                ctx.yield_now();
            }
            q3.wake_one(ctx);
        });
        let result = sim.run();
        assert_eq!(classify_liveness(&result), LivenessOutcome::Degrades);
        let report = result.unwrap();
        let v = check_starvation_free(&report);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("starved on slow"));
    }

    #[test]
    fn recovery_containment_accepts_clean_abort_and_loud_deadlock() {
        crate::checks::expect_clean(
            &check_recovery_containment(&deadlocked_pair(true)),
            "clean recovery",
        );
        crate::checks::expect_clean(
            &check_recovery_containment(&deadlocked_pair(false)),
            "loud deadlock",
        );
    }

    #[test]
    fn recovery_containment_rejects_livelock() {
        let mut sim = Sim::with_config(SimConfig {
            max_steps: 10,
            ..SimConfig::default()
        });
        sim.spawn("spinner", |ctx| loop {
            ctx.yield_now();
        });
        let v = check_recovery_containment(&sim.run());
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("livelock"));
    }

    #[test]
    fn poison_from_an_abort_satisfies_the_protocol() {
        // A victim whose unwind emits poison (standing in for the
        // mechanism crates' real guards) after a deadlock-recovery abort.
        let mut sim = Sim::new();
        sim.enable_deadlock_recovery();
        let held = Arc::new(WaitQueue::new("held"));
        let obs_q = Arc::new(WaitQueue::new("obs"));
        // The observer parks first, so the victim — blocked most recently —
        // is the one recovery aborts.
        let obs_q2 = Arc::clone(&obs_q);
        sim.spawn("observer", move |ctx| {
            obs_q2.wait(ctx);
            ctx.emit("poison-seen:L", &[]);
        });
        let obs_q3 = Arc::clone(&obs_q);
        sim.spawn("victim", move |ctx| {
            struct G<'a> {
                ctx: &'a bloom_sim::Ctx,
                waiters: Arc<WaitQueue>,
            }
            impl Drop for G<'_> {
                fn drop(&mut self) {
                    if !self.ctx.cancelling() {
                        self.ctx.emit("poison:L", &[]);
                        self.waiters.wake_one(self.ctx);
                    }
                }
            }
            let guard = G {
                ctx,
                waiters: obs_q3,
            };
            held.wait(ctx); // aborted here; the guard poisons and wakes
            std::mem::forget(guard);
        });
        let report = sim.run().expect("recovery completes the run");
        crate::checks::expect_clean(
            &crate::crash::check_poison_propagation(&report.trace),
            "abort-originated poison",
        );
        assert_eq!(classify_liveness(&Ok(report)), LivenessOutcome::Degrades);
    }
}
