//! Expressive-power profiles of mechanisms (paper §4.1, §5).
//!
//! A mechanism is rated, per information type, on how *directly* it lets a
//! constraint condition use that information. The paper's own findings
//! (Sections 5.1–5.2) are encoded in [`paper_profiles`]; the evaluation
//! harness independently *derives* a profile from the solution metadata in
//! `bloom-problems` and the workspace tests assert the two agree — that is
//! the reproduction of the paper's qualitative conclusions.

use crate::taxonomy::InfoType;
use std::collections::BTreeMap;
use std::fmt;

/// The mechanisms under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MechanismId {
    /// Dijkstra semaphores (baseline).
    Semaphore,
    /// Hoare monitors.
    Monitor,
    /// Atkinson–Hewitt serializers.
    Serializer,
    /// Campbell–Habermann path expressions, 1974 version.
    PathV1,
    /// Path expressions with the numeric operator (Flon–Habermann).
    PathV2,
    /// Path expressions with predicates and state variables (Andler).
    PathV3,
    /// CSP-style message passing: server processes, rendezvous channels,
    /// guarded selective receive (the paper's §6 future work).
    Csp,
}

impl MechanismId {
    /// All mechanisms, in presentation order.
    pub const ALL: [MechanismId; 7] = [
        MechanismId::Semaphore,
        MechanismId::Monitor,
        MechanismId::Serializer,
        MechanismId::PathV1,
        MechanismId::PathV2,
        MechanismId::PathV3,
        MechanismId::Csp,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            MechanismId::Semaphore => "semaphore",
            MechanismId::Monitor => "monitor",
            MechanismId::Serializer => "serializer",
            MechanismId::PathV1 => "path-expr v1",
            MechanismId::PathV2 => "path-expr v2",
            MechanismId::PathV3 => "path-expr v3",
            MechanismId::Csp => "csp channels",
        }
    }
}

impl fmt::Display for MechanismId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How directly a mechanism expresses constraints using one info type.
///
/// The ordering is from best to worst; "worse" ratings compare greater.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Directness {
    /// A dedicated construct handles it (monitor queues for request time,
    /// serializer crowds for sync state, path alphabets for request type).
    Direct,
    /// Expressible, but the user maintains the information by hand
    /// (explicit counts as monitor local data).
    Indirect,
    /// Only expressible by escaping the mechanism's intended style — the
    /// paper's "synchronization procedures" for path expressions.
    Workaround,
    /// Not expressible within the mechanism.
    Inaccessible,
}

impl Directness {
    /// Short symbol used in matrix cells.
    pub fn symbol(self) -> &'static str {
        match self {
            Directness::Direct => "direct",
            Directness::Indirect => "indirect",
            Directness::Workaround => "workaround",
            Directness::Inaccessible => "—",
        }
    }
}

impl fmt::Display for Directness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// How a mechanism supports the §2 modularity requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// The mechanism provides the structure itself.
    Automatic,
    /// Achievable, but only by implementor discipline.
    ByConvention,
    /// Not supported.
    No,
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Support::Automatic => "automatic",
            Support::ByConvention => "by convention",
            Support::No => "no",
        })
    }
}

/// The §2 modularity assessment of one mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Modularity {
    /// Requirement 1: synchronization is encapsulated with the resource
    /// (no synchronization code at points of access).
    pub encapsulated: Support,
    /// Requirement 2: the unsynchronized resource and the synchronizer are
    /// separable abstractions.
    pub separable: Support,
}

/// A mechanism's expressive-power and modularity profile.
#[derive(Debug, Clone)]
pub struct MechanismProfile {
    /// Which mechanism.
    pub mechanism: MechanismId,
    /// Rating per information type.
    pub ratings: BTreeMap<InfoType, Directness>,
    /// Modularity assessment.
    pub modularity: Modularity,
    /// Free-form findings attached to the profile.
    pub notes: Vec<String>,
}

impl MechanismProfile {
    /// Rating for one info type (`Inaccessible` if absent).
    pub fn rating(&self, info: InfoType) -> Directness {
        self.ratings
            .get(&info)
            .copied()
            .unwrap_or(Directness::Inaccessible)
    }
}

fn ratings(pairs: &[(InfoType, Directness)]) -> BTreeMap<InfoType, Directness> {
    pairs.iter().copied().collect()
}

/// The paper's §5 findings, encoded.
///
/// * Path expressions v1 (§5.1): request type is what paths natively talk
///   about; request order is accessible given the longest-waiting selection
///   assumption (sometimes via extra request operations, hence Indirect);
///   exclusion via automatic mutual exclusion of named operations, but no
///   direct access to sync state; parameters and local state are only
///   reachable through synchronization procedures; completed-operation
///   history is what path position natively encodes (the one-slot buffer
///   is the paper's example), hence Direct.
/// * Monitors (§5.2): everything is accessible; conditions/queues make
///   request type and time direct, priority queues make parameters direct,
///   but sync state must be kept as explicit counts (Indirect), local
///   state and history are ordinary monitor data (Direct as monitor local
///   data, which *is* the mechanism's intended style).
/// * Serializers (§5.2): like monitors, plus crowds make sync state
///   direct.
/// * Semaphores (baseline): everything must be simulated with counters and
///   split binary semaphores — indirect at best. General request-time and
///   parameter-dependent policies need hand-built queues of private gate
///   semaphores (workaround), though pure FCFS rides a strong semaphore's
///   own queue.
/// * Path expressions v2: the numeric operator makes counting state
///   (local state / sync state) expressible in paths; parameters remain a
///   workaround (predicates arrived only in Andler's later version).
/// * CSP channels (§6 future work, our extension): resources are server
///   processes; channels carry request type (one per operation) and time
///   (FIFO sender queues) directly; guarded selective receive expresses
///   exclusion/priority over server-local state (Direct for local state
///   and history-as-control-flow, Indirect for counts the server keeps by
///   hand); parameters ride in messages but ordering by them needs a
///   hand-kept pending set (Indirect).
/// * Path expressions v3 (Andler, per §5.1 "this version comes closest to
///   satisfying our requirements"): predicates over active/blocked/
///   completed counts make synchronization state direct — enough to state
///   readers priority correctly and fix the footnote-3 anomaly — and
///   state variables make local state expressible (kept by hand:
///   Indirect). Parameters still require synchronization procedures
///   ("synchronization procedures are still needed in some examples").
pub fn paper_profiles() -> Vec<MechanismProfile> {
    use Directness::*;
    use InfoType::*;
    vec![
        MechanismProfile {
            mechanism: MechanismId::Semaphore,
            ratings: ratings(&[
                (RequestType, Indirect),
                (RequestTime, Workaround),
                (RequestParameters, Workaround),
                (SyncState, Indirect),
                (LocalState, Indirect),
                (History, Indirect),
            ]),
            modularity: Modularity {
                encapsulated: Support::No,
                separable: Support::No,
            },
            notes: vec![
                "the baseline the paper says higher-level mechanisms must improve on".into(),
            ],
        },
        MechanismProfile {
            mechanism: MechanismId::Monitor,
            ratings: ratings(&[
                (RequestType, Direct),
                (RequestTime, Direct),
                (RequestParameters, Direct),
                (SyncState, Indirect),
                (LocalState, Direct),
                (History, Direct),
            ]),
            modularity: Modularity {
                encapsulated: Support::ByConvention,
                separable: Support::ByConvention,
            },
            notes: vec![
                "request type and request time conflict: both need queues; resolved by \
                 two-stage queuing"
                    .into(),
                "explicit signalling forces a total wake order: exclusion cannot be \
                 implemented without priority"
                    .into(),
                "nested monitor calls deadlock unless the shared-resource structure is used".into(),
            ],
        },
        MechanismProfile {
            mechanism: MechanismId::Serializer,
            ratings: ratings(&[
                (RequestType, Direct),
                (RequestTime, Direct),
                (RequestParameters, Direct),
                (SyncState, Direct),
                (LocalState, Direct),
                (History, Direct),
            ]),
            modularity: Modularity {
                encapsulated: Support::Automatic,
                separable: Support::Automatic,
            },
            notes: vec![
                "crowds maintain synchronization state automatically".into(),
                "automatic signalling separates request time from request type".into(),
                "the extra mechanism costs efficiency relative to monitors".into(),
            ],
        },
        MechanismProfile {
            mechanism: MechanismId::PathV1,
            ratings: ratings(&[
                (RequestType, Direct),
                (RequestTime, Indirect),
                (RequestParameters, Workaround),
                (SyncState, Workaround),
                (LocalState, Workaround),
                (History, Direct),
            ]),
            modularity: Modularity {
                encapsulated: Support::Automatic,
                separable: Support::No,
            },
            notes: vec![
                "no direct means of expressing priority constraints".into(),
                "synchronization procedures blur resource and synchronization".into(),
                "Figure 1's readers-priority solution is not equivalent to Courtois et al. \
                 (footnote 3)"
                    .into(),
            ],
        },
        MechanismProfile {
            mechanism: MechanismId::PathV2,
            ratings: ratings(&[
                (RequestType, Direct),
                (RequestTime, Indirect),
                (RequestParameters, Workaround),
                (SyncState, Indirect),
                (LocalState, Indirect),
                (History, Direct),
            ]),
            modularity: Modularity {
                encapsulated: Support::Automatic,
                separable: Support::No,
            },
            notes: vec![
                "the numeric operator improves explicit use of synchronization state and \
                 history (paper §5.1, citing [10])"
                    .into(),
            ],
        },
        MechanismProfile {
            mechanism: MechanismId::PathV3,
            ratings: ratings(&[
                (RequestType, Direct),
                (RequestTime, Indirect),
                (RequestParameters, Workaround),
                (SyncState, Direct),
                (LocalState, Indirect),
                (History, Direct),
            ]),
            modularity: Modularity {
                encapsulated: Support::Automatic,
                separable: Support::No,
            },
            notes: vec![
                "predicates state readers priority correctly: the footnote-3 anomaly is fixed"
                    .into(),
                "synchronization procedures are still needed in some examples (paper §5.1)".into(),
            ],
        },
        MechanismProfile {
            mechanism: MechanismId::Csp,
            ratings: ratings(&[
                (RequestType, Direct),
                (RequestTime, Direct),
                (RequestParameters, Indirect),
                (SyncState, Indirect),
                (LocalState, Direct),
                (History, Direct),
            ]),
            modularity: Modularity {
                encapsulated: Support::Automatic,
                separable: Support::No,
            },
            notes: vec![
                "§6 future work evaluated with the same methodology: the resource is a \
                 server process, clients hold no synchronization code"
                    .into(),
            ],
        },
    ]
}

/// Looks up the paper profile for one mechanism.
pub fn paper_profile(mechanism: MechanismId) -> MechanismProfile {
    paper_profiles()
        .into_iter()
        .find(|p| p.mechanism == mechanism)
        .expect("profiles cover every mechanism")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_all_mechanisms_and_info_types() {
        let profiles = paper_profiles();
        assert_eq!(profiles.len(), MechanismId::ALL.len());
        for p in &profiles {
            for info in InfoType::ALL {
                assert!(
                    p.ratings.contains_key(&info),
                    "{} profile missing rating for {info}",
                    p.mechanism
                );
            }
        }
    }

    #[test]
    fn directness_orders_best_to_worst() {
        assert!(Directness::Direct < Directness::Indirect);
        assert!(Directness::Indirect < Directness::Workaround);
        assert!(Directness::Workaround < Directness::Inaccessible);
    }

    #[test]
    fn serializer_dominates_monitor_on_sync_state() {
        // The paper's headline §5.2 delta: crowds make sync state direct.
        let m = paper_profile(MechanismId::Monitor);
        let s = paper_profile(MechanismId::Serializer);
        assert!(s.rating(InfoType::SyncState) < m.rating(InfoType::SyncState));
    }

    #[test]
    fn path_v2_improves_on_v1_where_the_paper_says() {
        let v1 = paper_profile(MechanismId::PathV1);
        let v2 = paper_profile(MechanismId::PathV2);
        assert!(v2.rating(InfoType::SyncState) < v1.rating(InfoType::SyncState));
        assert!(v2.rating(InfoType::LocalState) < v1.rating(InfoType::LocalState));
        assert_eq!(v2.rating(InfoType::RequestType), Directness::Direct);
    }

    #[test]
    fn paths_have_no_direct_priority_information() {
        let v1 = paper_profile(MechanismId::PathV1);
        assert!(v1.rating(InfoType::RequestTime) > Directness::Direct);
        assert_eq!(
            v1.rating(InfoType::RequestParameters),
            Directness::Workaround
        );
    }
}
