//! Bloom's categorization of synchronization problems (paper §3).
//!
//! Synchronization schemes are sets of *constraints*, each either an
//! exclusion constraint (correctness: keep interfering processes out) or a
//! priority constraint (efficiency/policy: who gets in first). Constraints
//! differ in the *information* their conditions reference; the paper
//! identifies six categories. This module encodes the taxonomy, the
//! constraint/problem specification types, and the canonical catalog of
//! test problems (the set used in the paper's footnote 2).

use std::collections::BTreeSet;
use std::fmt;

/// The six categories of information a constraint's condition may use (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InfoType {
    /// Which access operation was requested ("readers have priority over
    /// writers" distinguishes requests by type).
    RequestType,
    /// When the request was made relative to other events (FCFS ordering).
    RequestTime,
    /// Arguments passed with the request (the disk scheduler orders by
    /// requested track; the alarm clock by wake-up time).
    RequestParameters,
    /// State that exists only because the resource is shared: who is
    /// currently inside, how many readers are active, and so on.
    SyncState,
    /// State meaningful to the unsynchronized resource itself, such as
    /// whether a buffer is full.
    LocalState,
    /// Whether some operation has *completed* in the past (the one-slot
    /// buffer admits a remove only after a deposit has happened).
    History,
}

impl InfoType {
    /// All six categories, in the paper's order.
    pub const ALL: [InfoType; 6] = [
        InfoType::RequestType,
        InfoType::RequestTime,
        InfoType::RequestParameters,
        InfoType::SyncState,
        InfoType::LocalState,
        InfoType::History,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            InfoType::RequestType => "request type",
            InfoType::RequestTime => "request time",
            InfoType::RequestParameters => "parameters",
            InfoType::SyncState => "sync state",
            InfoType::LocalState => "local state",
            InfoType::History => "history",
        }
    }
}

impl fmt::Display for InfoType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The two major constraint classes (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConstraintKind {
    /// "if *condition* then exclude process A" — consistency.
    Exclusion,
    /// "if *condition* then A has priority over B" — scheduling policy.
    Priority,
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConstraintKind::Exclusion => "exclusion",
            ConstraintKind::Priority => "priority",
        })
    }
}

/// One synchronization constraint of a problem specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintSpec {
    /// Stable identifier, shared across problems that share the constraint
    /// (e.g. the readers/writers exclusion constraint appears by the same
    /// name in all three readers/writers variants, which is what the
    /// independence analysis of §4.2 compares).
    pub name: String,
    /// Exclusion or priority.
    pub kind: ConstraintKind,
    /// Information categories the constraint's condition references.
    pub info: BTreeSet<InfoType>,
    /// Prose statement of the constraint.
    pub description: String,
}

impl ConstraintSpec {
    /// Convenience constructor.
    pub fn new(name: &str, kind: ConstraintKind, info: &[InfoType], description: &str) -> Self {
        ConstraintSpec {
            name: name.to_string(),
            kind,
            info: info.iter().copied().collect(),
            description: description.to_string(),
        }
    }

    /// The `(kind, info)` pairs this constraint exercises.
    pub fn features(&self) -> BTreeSet<(ConstraintKind, InfoType)> {
        self.info.iter().map(|&i| (self.kind, i)).collect()
    }
}

/// Identifier of a canonical problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProblemId {
    /// Producer/consumer over an N-slot buffer (local state).
    BoundedBuffer,
    /// First-come-first-served resource allocation (request time).
    FcfsResource,
    /// Courtois/Heymans/Parnas readers-priority database (request type +
    /// sync state).
    ReadersPriorityDb,
    /// The writers-priority variant (same exclusion, flipped priority).
    WritersPriorityDb,
    /// FCFS readers/writers (same exclusion, request-time priority).
    FcfsReadersWriters,
    /// Hoare's disk-head (elevator) scheduler (request parameters).
    DiskScheduler,
    /// Hoare's alarm clock (request parameters + time).
    AlarmClock,
    /// Campbell/Habermann one-slot buffer (history).
    OneSlotBuffer,
}

impl ProblemId {
    /// All catalog problems, in presentation order.
    pub const ALL: [ProblemId; 8] = [
        ProblemId::BoundedBuffer,
        ProblemId::FcfsResource,
        ProblemId::ReadersPriorityDb,
        ProblemId::WritersPriorityDb,
        ProblemId::FcfsReadersWriters,
        ProblemId::DiskScheduler,
        ProblemId::AlarmClock,
        ProblemId::OneSlotBuffer,
    ];

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            ProblemId::BoundedBuffer => "bounded buffer",
            ProblemId::FcfsResource => "FCFS resource",
            ProblemId::ReadersPriorityDb => "readers-priority DB",
            ProblemId::WritersPriorityDb => "writers-priority DB",
            ProblemId::FcfsReadersWriters => "FCFS readers/writers",
            ProblemId::DiskScheduler => "disk scheduler",
            ProblemId::AlarmClock => "alarm clock",
            ProblemId::OneSlotBuffer => "one-slot buffer",
        }
    }
}

impl fmt::Display for ProblemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A canonical problem: its constraints and what they exercise.
#[derive(Debug, Clone)]
pub struct ProblemSpec {
    /// Which problem this is.
    pub id: ProblemId,
    /// The constraints composing its synchronization scheme.
    pub constraints: Vec<ConstraintSpec>,
    /// Prose statement of the problem.
    pub description: String,
}

impl ProblemSpec {
    /// Every `(kind, info)` feature exercised by this problem.
    pub fn features(&self) -> BTreeSet<(ConstraintKind, InfoType)> {
        self.constraints.iter().flat_map(|c| c.features()).collect()
    }

    /// Looks up a constraint by name.
    pub fn constraint(&self, name: &str) -> Option<&ConstraintSpec> {
        self.constraints.iter().find(|c| c.name == name)
    }
}

/// The canonical problem catalog: footnote 2's six test cases plus the two
/// readers/writers variants §5.1.2 uses for the independence analysis.
pub fn catalog() -> Vec<ProblemSpec> {
    use ConstraintKind::{Exclusion, Priority};
    use InfoType::*;
    vec![
        ProblemSpec {
            id: ProblemId::BoundedBuffer,
            description: "Producers deposit into and consumers remove from an N-slot buffer; \
                          deposits block when full, removes when empty."
                .to_string(),
            constraints: vec![
                ConstraintSpec::new(
                    "buffer-mutex",
                    Exclusion,
                    &[SyncState],
                    "deposit and remove exclude each other while manipulating the buffer",
                ),
                ConstraintSpec::new(
                    "not-full",
                    Exclusion,
                    &[LocalState],
                    "exclude deposit while the buffer is full",
                ),
                ConstraintSpec::new(
                    "not-empty",
                    Exclusion,
                    &[LocalState],
                    "exclude remove while the buffer is empty",
                ),
            ],
        },
        ProblemSpec {
            id: ProblemId::FcfsResource,
            description: "A single resource granted in strict request order.".to_string(),
            constraints: vec![
                ConstraintSpec::new(
                    "resource-mutex",
                    Exclusion,
                    &[SyncState],
                    "one holder at a time",
                ),
                ConstraintSpec::new(
                    "fcfs-order",
                    Priority,
                    &[RequestTime],
                    "requests are served first-come-first-served",
                ),
            ],
        },
        ProblemSpec {
            id: ProblemId::ReadersPriorityDb,
            description: "Readers share, writers exclude; waiting readers beat waiting writers \
                          (writers may starve) — Courtois et al. problem 1."
                .to_string(),
            constraints: vec![
                ConstraintSpec::new(
                    "rw-exclusion",
                    Exclusion,
                    &[RequestType, SyncState],
                    "a writer excludes everyone; readers exclude only writers",
                ),
                ConstraintSpec::new(
                    "readers-priority",
                    Priority,
                    &[RequestType],
                    "no reader waits unless a writer has already been granted access",
                ),
            ],
        },
        ProblemSpec {
            id: ProblemId::WritersPriorityDb,
            description: "Same exclusion; a waiting writer beats waiting readers (readers may \
                          starve) — Courtois et al. problem 2."
                .to_string(),
            constraints: vec![
                ConstraintSpec::new(
                    "rw-exclusion",
                    Exclusion,
                    &[RequestType, SyncState],
                    "a writer excludes everyone; readers exclude only writers",
                ),
                ConstraintSpec::new(
                    "writers-priority",
                    Priority,
                    &[RequestType],
                    "no writer waits longer than necessary: new readers are held while a \
                     writer waits",
                ),
            ],
        },
        ProblemSpec {
            id: ProblemId::FcfsReadersWriters,
            description: "Same exclusion; requests (of both types) are honored in arrival \
                          order — the variant Bloom uses to test constraint independence \
                          against a different priority information type."
                .to_string(),
            constraints: vec![
                ConstraintSpec::new(
                    "rw-exclusion",
                    Exclusion,
                    &[RequestType, SyncState],
                    "a writer excludes everyone; readers exclude only writers",
                ),
                ConstraintSpec::new(
                    "fcfs-order",
                    Priority,
                    &[RequestTime],
                    "access is granted in request order (readers may still share)",
                ),
            ],
        },
        ProblemSpec {
            id: ProblemId::DiskScheduler,
            description: "Hoare's disk-head scheduler: pending seeks are served in elevator \
                          (SCAN) order by requested track."
                .to_string(),
            constraints: vec![
                ConstraintSpec::new(
                    "head-mutex",
                    Exclusion,
                    &[SyncState],
                    "one seek is serviced at a time",
                ),
                ConstraintSpec::new(
                    "elevator-order",
                    Priority,
                    &[RequestParameters],
                    "among pending requests, continue in the current direction of head \
                     movement, nearest track first",
                ),
            ],
        },
        ProblemSpec {
            id: ProblemId::AlarmClock,
            description: "Hoare's alarm clock: processes sleep until a requested wake-up time; \
                          ticks advance the clock."
                .to_string(),
            constraints: vec![
                ConstraintSpec::new(
                    "alarm-wakeup",
                    Exclusion,
                    &[RequestParameters],
                    "exclude a sleeper from proceeding until the clock reaches its requested \
                     wake-up time",
                ),
                ConstraintSpec::new(
                    "earliest-first",
                    Priority,
                    &[RequestParameters],
                    "wake the earliest deadline first",
                ),
            ],
        },
        ProblemSpec {
            id: ProblemId::OneSlotBuffer,
            description: "Campbell/Habermann one-slot buffer: deposit and remove strictly \
                          alternate, starting with deposit."
                .to_string(),
            constraints: vec![ConstraintSpec::new(
                "alternation",
                Exclusion,
                &[History],
                "a remove is admitted only after an unconsumed deposit has completed, and \
                 vice versa",
            )],
        },
    ]
}

/// Looks up one problem's spec in the catalog.
pub fn spec(id: ProblemId) -> ProblemSpec {
    catalog()
        .into_iter()
        .find(|p| p.id == id)
        .expect("catalog covers every ProblemId")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_id() {
        let cat = catalog();
        assert_eq!(cat.len(), ProblemId::ALL.len());
        for id in ProblemId::ALL {
            assert!(cat.iter().any(|p| p.id == id), "missing {id}");
        }
    }

    #[test]
    fn catalog_covers_all_info_types() {
        let mut covered = BTreeSet::new();
        for p in catalog() {
            for c in &p.constraints {
                covered.extend(c.info.iter().copied());
            }
        }
        for info in InfoType::ALL {
            assert!(covered.contains(&info), "no problem exercises {info}");
        }
    }

    #[test]
    fn footnote2_mapping_matches_paper() {
        // "the bounded buffer problem to represent use of local state
        // information" …
        assert!(spec(ProblemId::BoundedBuffer)
            .features()
            .contains(&(ConstraintKind::Exclusion, InfoType::LocalState)));
        // "… a first come first serve scheme for request time …"
        assert!(spec(ProblemId::FcfsResource)
            .features()
            .contains(&(ConstraintKind::Priority, InfoType::RequestTime)));
        // "… a readers_priority database for request type and
        // synchronization state …"
        let rp = spec(ProblemId::ReadersPriorityDb).features();
        assert!(rp.contains(&(ConstraintKind::Exclusion, InfoType::RequestType)));
        assert!(rp.contains(&(ConstraintKind::Exclusion, InfoType::SyncState)));
        // "… the disk scheduler problem and alarmclock problem to make use
        // of parameters passed …"
        assert!(spec(ProblemId::DiskScheduler)
            .features()
            .contains(&(ConstraintKind::Priority, InfoType::RequestParameters)));
        assert!(spec(ProblemId::AlarmClock)
            .features()
            .contains(&(ConstraintKind::Exclusion, InfoType::RequestParameters)));
        // "… and the one-slot buffer for history information."
        assert!(spec(ProblemId::OneSlotBuffer)
            .features()
            .contains(&(ConstraintKind::Exclusion, InfoType::History)));
    }

    #[test]
    fn rw_variants_share_the_exclusion_constraint() {
        let a = spec(ProblemId::ReadersPriorityDb);
        let b = spec(ProblemId::WritersPriorityDb);
        let c = spec(ProblemId::FcfsReadersWriters);
        assert_eq!(
            a.constraint("rw-exclusion").unwrap(),
            b.constraint("rw-exclusion").unwrap()
        );
        assert_eq!(
            a.constraint("rw-exclusion").unwrap(),
            c.constraint("rw-exclusion").unwrap()
        );
        assert_ne!(
            a.constraint("readers-priority").map(|c| &c.name),
            b.constraint("writers-priority").map(|c| &c.name)
        );
    }

    #[test]
    fn priority_variants_use_expected_info() {
        let rp = spec(ProblemId::ReadersPriorityDb);
        let fc = spec(ProblemId::FcfsReadersWriters);
        assert!(rp
            .constraint("readers-priority")
            .unwrap()
            .info
            .contains(&InfoType::RequestType));
        assert!(fc
            .constraint("fcfs-order")
            .unwrap()
            .info
            .contains(&InfoType::RequestTime));
    }
}
