//! Constraint-independence (additivity) analysis (paper §4.2, §5.1.2).
//!
//! The paper's ease-of-use criterion: complex schemes are easy to build
//! and modify only if each constraint can be implemented without regard to
//! the others. Its test: compare solutions to *similar* problems — ones
//! sharing some constraints and differing in others — and check that the
//! shared constraints are implemented identically, and that changing one
//! constraint does not force rewriting the rest.
//!
//! A solution is described as a set of [`ImplUnit`]s — named implementation
//! components (a path declaration, a guard closure, a condition variable
//! protocol) each attributed to the constraint it realizes. Two solutions'
//! shared constraint is *independently implemented* when both attribute
//! exactly the same components to it.

use crate::profile::{Directness, MechanismId};
use crate::taxonomy::{InfoType, ProblemId};
use std::collections::{BTreeMap, BTreeSet};

/// One implementation component of a solution, attributed to a constraint.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ImplUnit {
    /// The constraint (by catalog name) this component realizes.
    pub constraint: String,
    /// Identifier of the component, stable across solutions when the code
    /// artifact is literally the same (e.g. `path:{requestread},requestwrite`
    /// or `guard:writers-crowd-empty`).
    pub component: String,
}

impl ImplUnit {
    /// Convenience constructor.
    pub fn new(constraint: &str, component: &str) -> Self {
        ImplUnit {
            constraint: constraint.to_string(),
            component: component.to_string(),
        }
    }
}

/// Metadata describing one (problem, mechanism) solution.
#[derive(Debug, Clone)]
pub struct SolutionDesc {
    /// Which problem is solved.
    pub problem: ProblemId,
    /// With which mechanism.
    pub mechanism: MechanismId,
    /// The solution's implementation components, attributed to constraints.
    pub units: Vec<ImplUnit>,
    /// How the solution accesses each info type it needs.
    pub info_handling: BTreeMap<InfoType, Directness>,
    /// Names of workarounds employed (e.g. the synchronization procedures
    /// of the paper's Figure 1).
    pub workarounds: Vec<String>,
}

impl SolutionDesc {
    /// Components attributed to `constraint`.
    pub fn components_of(&self, constraint: &str) -> BTreeSet<&str> {
        self.units
            .iter()
            .filter(|u| u.constraint == constraint)
            .map(|u| u.component.as_str())
            .collect()
    }

    /// Constraint names this solution implements.
    pub fn constraints(&self) -> BTreeSet<&str> {
        self.units.iter().map(|u| u.constraint.as_str()).collect()
    }
}

/// Result of comparing two solutions that share constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct IndependenceReport {
    /// Constraints present in both solutions.
    pub shared: Vec<String>,
    /// Shared constraints implemented by identical component sets.
    pub preserved: Vec<String>,
    /// Shared constraints whose implementation differs between the two.
    pub disturbed: Vec<String>,
    /// `preserved / shared`, in `[0, 1]`; `None` when nothing is shared.
    pub score: Option<f64>,
}

/// Compares how the constraints shared by two solutions are implemented.
pub fn independence(a: &SolutionDesc, b: &SolutionDesc) -> IndependenceReport {
    let shared: Vec<String> = a
        .constraints()
        .intersection(&b.constraints())
        .map(|s| s.to_string())
        .collect();
    let mut preserved = Vec::new();
    let mut disturbed = Vec::new();
    for c in &shared {
        if a.components_of(c) == b.components_of(c) {
            preserved.push(c.clone());
        } else {
            disturbed.push(c.clone());
        }
    }
    let score = if shared.is_empty() {
        None
    } else {
        Some(preserved.len() as f64 / shared.len() as f64)
    };
    IndependenceReport {
        shared,
        preserved,
        disturbed,
        score,
    }
}

/// The cost of modifying solution `a` into solution `b`: the fraction of
/// the union of components that must be added, removed, or re-attributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModificationCost {
    /// Components only in `a` (to remove) plus only in `b` (to add).
    pub changed: usize,
    /// Size of the union of both component sets.
    pub total: usize,
}

impl ModificationCost {
    /// `changed / total` in `[0, 1]`; 0 when both solutions are empty.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.changed as f64 / self.total as f64
        }
    }
}

/// Computes the modification cost between two solutions.
pub fn modification_cost(a: &SolutionDesc, b: &SolutionDesc) -> ModificationCost {
    let ua: BTreeSet<&ImplUnit> = a.units.iter().collect();
    let ub: BTreeSet<&ImplUnit> = b.units.iter().collect();
    let changed = ua.symmetric_difference(&ub).count();
    let total = ua.union(&ub).count();
    ModificationCost { changed, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(problem: ProblemId, units: &[(&str, &str)]) -> SolutionDesc {
        SolutionDesc {
            problem,
            mechanism: MechanismId::Monitor,
            units: units.iter().map(|(c, k)| ImplUnit::new(c, k)).collect(),
            info_handling: BTreeMap::new(),
            workarounds: Vec::new(),
        }
    }

    #[test]
    fn identical_shared_constraints_score_one() {
        let a = desc(
            ProblemId::ReadersPriorityDb,
            &[
                ("rw-exclusion", "cond-protocol"),
                ("readers-priority", "reader-check"),
            ],
        );
        let b = desc(
            ProblemId::WritersPriorityDb,
            &[
                ("rw-exclusion", "cond-protocol"),
                ("writers-priority", "writer-check"),
            ],
        );
        let r = independence(&a, &b);
        assert_eq!(r.shared, vec!["rw-exclusion".to_string()]);
        assert_eq!(r.preserved, vec!["rw-exclusion".to_string()]);
        assert!(r.disturbed.is_empty());
        assert_eq!(r.score, Some(1.0));
    }

    #[test]
    fn differing_shared_constraint_scores_zero() {
        // The paper's path-expression finding: the exclusion path differs
        // between the readers-priority and writers-priority solutions.
        let a = desc(
            ProblemId::ReadersPriorityDb,
            &[("rw-exclusion", "path:{read},(openwrite;write)")],
        );
        let b = desc(
            ProblemId::WritersPriorityDb,
            &[("rw-exclusion", "path:{openread;read},write")],
        );
        let r = independence(&a, &b);
        assert_eq!(r.score, Some(0.0));
        assert_eq!(r.disturbed, vec!["rw-exclusion".to_string()]);
    }

    #[test]
    fn no_shared_constraints_scores_none() {
        let a = desc(ProblemId::BoundedBuffer, &[("not-full", "x")]);
        let b = desc(ProblemId::AlarmClock, &[("alarm-wakeup", "y")]);
        assert_eq!(independence(&a, &b).score, None);
    }

    #[test]
    fn constraint_with_multiple_components_compares_as_a_set() {
        let a = desc(
            ProblemId::FcfsResource,
            &[("fcfs-order", "q1"), ("fcfs-order", "q2")],
        );
        let b = desc(
            ProblemId::FcfsResource,
            &[("fcfs-order", "q2"), ("fcfs-order", "q1")],
        );
        assert_eq!(independence(&a, &b).score, Some(1.0));
        let c = desc(ProblemId::FcfsResource, &[("fcfs-order", "q1")]);
        assert_eq!(independence(&a, &c).score, Some(0.0));
    }

    #[test]
    fn modification_cost_counts_symmetric_difference() {
        let a = desc(
            ProblemId::ReadersPriorityDb,
            &[("x", "shared"), ("p", "a-only")],
        );
        let b = desc(
            ProblemId::WritersPriorityDb,
            &[("x", "shared"), ("q", "b-only")],
        );
        let m = modification_cost(&a, &b);
        assert_eq!(m.changed, 2);
        assert_eq!(m.total, 3);
        assert!((m.fraction() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn modification_cost_of_identical_solutions_is_zero() {
        let a = desc(ProblemId::BoundedBuffer, &[("not-full", "cond")]);
        let m = modification_cost(&a, &a.clone());
        assert_eq!(m.changed, 0);
        assert_eq!(m.fraction(), 0.0);
    }
}
