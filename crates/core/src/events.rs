//! The uniform event vocabulary solutions emit and checkers consume.
//!
//! Every problem solution, regardless of mechanism, narrates its execution
//! into the simulator trace with three phases per operation instance:
//!
//! * `req:<op>` — the process is about to ask the mechanism for access;
//! * `enter:<op>` — access was granted, the operation body is starting;
//! * `exit:<op>` — the operation body finished.
//!
//! Parameters (track numbers, deadlines, buffer values) ride along as the
//! event's `i64` parameters. [`extract`] parses a [`Trace`] back into
//! typed [`ProblemEvent`]s, which the checkers in [`crate::checks`]
//! validate against the problem's constraints. Keeping the vocabulary in
//! one place is what lets a single checker validate all four mechanisms'
//! solutions to the same problem.

use bloom_sim::{Ctx, Pid, Time, Trace};

/// The lifecycle phase of an operation instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The process is about to request access.
    Request,
    /// Access granted; the body is starting.
    Enter,
    /// The body completed.
    Exit,
}

impl Phase {
    fn prefix(self) -> &'static str {
        match self {
            Phase::Request => "req",
            Phase::Enter => "enter",
            Phase::Exit => "exit",
        }
    }
}

/// One parsed problem event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProblemEvent {
    /// Virtual time of the event.
    pub time: Time,
    /// Trace sequence number: a strict total order.
    pub seq: u64,
    /// The process performing the operation.
    pub pid: Pid,
    /// Operation name (e.g. `read`).
    pub op: String,
    /// Request/Enter/Exit.
    pub phase: Phase,
    /// Operation parameters (track number, deadline, value, …).
    pub params: Vec<i64>,
}

/// Emits the given phase for `op`.
pub fn emit_phase(ctx: &Ctx, phase: Phase, op: &str, params: &[i64]) {
    ctx.emit(&format!("{}:{op}", phase.prefix()), params);
}

/// Emits the `Request` phase for `op`.
pub fn request(ctx: &Ctx, op: &str, params: &[i64]) {
    emit_phase(ctx, Phase::Request, op, params);
}

/// Emits the `Enter` phase for `op`.
pub fn enter(ctx: &Ctx, op: &str, params: &[i64]) {
    emit_phase(ctx, Phase::Enter, op, params);
}

/// Emits the `Enter` phase for `op` on behalf of `target` — used by
/// mechanisms whose releaser grants access to a still-parked process, so
/// the trace records the grant at decision time (see
/// [`Ctx::emit_for`]).
pub fn enter_for(ctx: &Ctx, target: Pid, op: &str, params: &[i64]) {
    ctx.emit_for(target, &format!("{}:{op}", Phase::Enter.prefix()), params);
}

/// Emits the `Exit` phase for `op`.
pub fn exit(ctx: &Ctx, op: &str, params: &[i64]) {
    emit_phase(ctx, Phase::Exit, op, params);
}

/// Emits the `Exit` phase for `op` on behalf of `target` (for mechanisms
/// where a server performs the operation for a client).
pub fn exit_for(ctx: &Ctx, target: Pid, op: &str, params: &[i64]) {
    ctx.emit_for(target, &format!("{}:{op}", Phase::Exit.prefix()), params);
}

/// Parses the problem events out of a trace, in trace order. Non-problem
/// user events and scheduler events are ignored.
pub fn extract(trace: &Trace) -> Vec<ProblemEvent> {
    trace
        .user_events()
        .filter_map(|(event, label, params)| {
            let (prefix, op) = label.split_once(':')?;
            let phase = match prefix {
                "req" => Phase::Request,
                "enter" => Phase::Enter,
                "exit" => Phase::Exit,
                _ => return None,
            };
            Some(ProblemEvent {
                time: event.time,
                seq: event.seq,
                pid: event.pid,
                op: op.to_string(),
                phase,
                params: params.to_vec(),
            })
        })
        .collect()
}

/// Pairs each `Request` with its matching `Enter` and `Exit`.
///
/// A process performs the instances of a given operation sequentially, so
/// within one `(pid, op)` stream the k-th request matches the k-th enter
/// and k-th exit. Instances missing an enter or exit (e.g. still blocked
/// at the end of the run) have `None` in those positions.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The request event index into the event slice.
    pub request: usize,
    /// The matching enter event index, if any.
    pub enter: Option<usize>,
    /// The matching exit event index, if any.
    pub exit: Option<usize>,
}

/// Matches request/enter/exit triples (see [`Instance`]).
pub fn instances(events: &[ProblemEvent]) -> Vec<Instance> {
    use std::collections::HashMap;
    let mut out: Vec<Instance> = Vec::new();
    // Per (pid, op): indices of instances awaiting enter / exit.
    let mut awaiting_enter: HashMap<(Pid, &str), Vec<usize>> = HashMap::new();
    let mut awaiting_exit: HashMap<(Pid, &str), Vec<usize>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let key = (e.pid, e.op.as_str());
        match e.phase {
            Phase::Request => {
                out.push(Instance {
                    request: i,
                    enter: None,
                    exit: None,
                });
                awaiting_enter.entry(key).or_default().push(out.len() - 1);
            }
            Phase::Enter => {
                let queue = awaiting_enter.entry(key).or_default();
                assert!(
                    !queue.is_empty(),
                    "enter without request for {} by {} (seq {})",
                    e.op,
                    e.pid,
                    e.seq
                );
                let inst = queue.remove(0);
                out[inst].enter = Some(i);
                awaiting_exit.entry(key).or_default().push(inst);
            }
            Phase::Exit => {
                let queue = awaiting_exit.entry(key).or_default();
                assert!(
                    !queue.is_empty(),
                    "exit without enter for {} by {} (seq {})",
                    e.op,
                    e.pid,
                    e.seq
                );
                let inst = queue.remove(0);
                out[inst].exit = Some(i);
            }
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A tiny builder for synthetic event streams used by checker tests.

    use super::*;

    pub(crate) struct EventScript {
        events: Vec<ProblemEvent>,
    }

    impl EventScript {
        pub(crate) fn new() -> Self {
            EventScript { events: Vec::new() }
        }

        pub(crate) fn ev(mut self, pid: u32, phase: Phase, op: &str, params: &[i64]) -> Self {
            let seq = self.events.len() as u64;
            self.events.push(ProblemEvent {
                time: Time(seq),
                seq,
                pid: Pid(pid),
                op: op.to_string(),
                phase,
                params: params.to_vec(),
            });
            self
        }

        /// Shorthand: request immediately followed by enter.
        pub(crate) fn re(self, pid: u32, op: &str) -> Self {
            self.ev(pid, Phase::Request, op, &[])
                .ev(pid, Phase::Enter, op, &[])
        }

        pub(crate) fn build(self) -> Vec<ProblemEvent> {
            self.events
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_sim::Sim;

    #[test]
    fn emit_and_extract_round_trip() {
        let mut sim = Sim::new();
        sim.spawn("p", |ctx| {
            request(ctx, "read", &[]);
            enter(ctx, "read", &[7]);
            exit(ctx, "read", &[7]);
        });
        let report = sim.run().unwrap();
        let events = extract(&report.trace);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].phase, Phase::Request);
        assert_eq!(events[1].phase, Phase::Enter);
        assert_eq!(events[1].params, vec![7]);
        assert_eq!(events[2].phase, Phase::Exit);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn extract_ignores_foreign_events() {
        let mut sim = Sim::new();
        sim.spawn("p", |ctx| {
            ctx.emit("debug-note", &[1]);
            request(ctx, "op", &[]);
            ctx.emit("weird:unknown", &[]);
        });
        let report = sim.run().unwrap();
        let events = extract(&report.trace);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].op, "op");
    }

    #[test]
    fn instances_match_in_fifo_order_per_pid() {
        use test_support::EventScript;
        let events = EventScript::new()
            .ev(0, Phase::Request, "a", &[])
            .ev(0, Phase::Request, "a", &[]) // same pid, second instance
            .ev(0, Phase::Enter, "a", &[])
            .ev(0, Phase::Exit, "a", &[])
            .ev(0, Phase::Enter, "a", &[])
            .build();
        let inst = instances(&events);
        assert_eq!(inst.len(), 2);
        assert_eq!(inst[0].enter, Some(2));
        assert_eq!(inst[0].exit, Some(3));
        assert_eq!(inst[1].enter, Some(4));
        assert_eq!(inst[1].exit, None, "second instance still running");
    }

    #[test]
    #[should_panic(expected = "enter without request")]
    fn orphan_enter_is_rejected() {
        use test_support::EventScript;
        let events = EventScript::new().ev(0, Phase::Enter, "a", &[]).build();
        instances(&events);
    }
}
