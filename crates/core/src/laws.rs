//! Invariant-first checking: declared laws and a violation-rate
//! vocabulary for sampled exploration (axis R3).
//!
//! The checkers in [`crate::checks`] answer "did *this* trace satisfy
//! *this* constraint?". Exhaustive exploration turns that into proof; at
//! hundreds of processes the schedule tree cannot be enumerated, and the
//! honest framing flips to the *nomercy* style: declare **laws** — pure
//! predicates over a whole run that must never be false — and let a
//! sampler ([`bloom_sim::Sampler`]) search for counterexamples. A law
//! with no counterexample after N sampled schedules means exactly "not
//! yet found" — nothing more; a law *with* a counterexample means a
//! concrete, replayable, shrinkable decision vector that exhibits the
//! bug.
//!
//! A [`Law`] sees a [`RunView`]: the run's outcome plus the problem
//! events ([`crate::events`] vocabulary, extracted once per run and
//! shared by every law in the set). [`LawSet::violated`] produces the
//! stable law-name keys the sampler folds into its statistics, and
//! [`classify_rate`] buckets the resulting violating-run fractions into
//! the rate vocabulary the R3 report tables use.

use crate::checks::Violation;
use crate::events::{extract, ProblemEvent};
use bloom_sim::{SimError, SimReport};
use std::fmt;

/// Everything a law may examine about one run: the outcome and the
/// problem events, extracted once (deadlocked runs still carry their
/// partial trace via [`SimError`]'s embedded report).
pub struct RunView<'a> {
    /// The run's outcome as the simulator returned it.
    pub result: &'a Result<SimReport, SimError>,
    /// Problem events of the run's trace, in trace order.
    pub events: Vec<ProblemEvent>,
}

impl<'a> RunView<'a> {
    /// Builds the view, extracting the problem events from whichever
    /// trace the outcome carries.
    pub fn new(result: &'a Result<SimReport, SimError>) -> Self {
        let report = match result {
            Ok(report) => report,
            Err(err) => &err.report,
        };
        RunView {
            result,
            events: extract(&report.trace),
        }
    }

    /// The run's report — the final one on success, the partial one
    /// embedded in the error on failure.
    pub fn report(&self) -> &SimReport {
        match self.result {
            Ok(report) => report,
            Err(err) => &err.report,
        }
    }

    /// The failure, if the run failed.
    pub fn error(&self) -> Option<&SimError> {
        self.result.as_ref().err()
    }

    /// Sequence number just past the trace: where "the run as a whole
    /// violated X" violations anchor.
    pub fn end_seq(&self) -> u64 {
        self.report().trace.len() as u64
    }
}

/// One declared invariant: a name (the stable key violation statistics
/// are folded under) and a predicate producing the violations a run
/// exhibits.
pub struct Law {
    name: String,
    #[allow(clippy::type_complexity)]
    check: Box<dyn Fn(&RunView<'_>) -> Vec<Violation> + Send + Sync>,
}

impl Law {
    /// Declares a law. `name` should be short, kebab-case, and stable —
    /// it keys violation counts, first-hit tables, and report rows.
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&RunView<'_>) -> Vec<Violation> + Send + Sync + 'static,
    ) -> Self {
        Law {
            name: name.into(),
            check: Box::new(check),
        }
    }

    /// The law's key.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the law against one run view.
    pub fn check(&self, view: &RunView<'_>) -> Vec<Violation> {
        (self.check)(view)
    }
}

impl fmt::Debug for Law {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Law").field("name", &self.name).finish()
    }
}

/// A named violation: which law, and what it saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LawViolation {
    /// The violated law's name.
    pub law: String,
    /// The violation itself.
    pub violation: Violation,
}

impl fmt::Display for LawViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.law, self.violation)
    }
}

/// An ordered set of laws checked together against each sampled run.
#[derive(Debug, Default)]
pub struct LawSet {
    laws: Vec<Law>,
}

impl LawSet {
    /// An empty set.
    pub fn new() -> Self {
        LawSet::default()
    }

    /// Adds a law (builder style).
    pub fn law(
        mut self,
        name: impl Into<String>,
        check: impl Fn(&RunView<'_>) -> Vec<Violation> + Send + Sync + 'static,
    ) -> Self {
        self.laws.push(Law::new(name, check));
        self
    }

    /// Adds an already-built law (builder style).
    pub fn with(mut self, law: Law) -> Self {
        self.laws.push(law);
        self
    }

    /// The declared law names, in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.laws.iter().map(|l| l.name()).collect()
    }

    /// Checks every law against the run, returning all violations found
    /// (declaration order, then each law's own order).
    pub fn check(&self, result: &Result<SimReport, SimError>) -> Vec<LawViolation> {
        let view = RunView::new(result);
        self.laws
            .iter()
            .flat_map(|law| {
                law.check(&view).into_iter().map(|violation| LawViolation {
                    law: law.name().to_string(),
                    violation,
                })
            })
            .collect()
    }

    /// The names of the laws this run violated — the key list a
    /// [`bloom_sim::Sampler`] map closure returns per iteration. Each
    /// violated law appears once, in declaration order.
    pub fn violated(&self, result: &Result<SimReport, SimError>) -> Vec<String> {
        let view = RunView::new(result);
        self.laws
            .iter()
            .filter(|law| !law.check(&view).is_empty())
            .map(|law| law.name().to_string())
            .collect()
    }
}

/// Law: the run must not fail — no deadlock, no livelock (step-budget
/// exhaustion), no cascading panic. The violation message carries the
/// simulator's own diagnosis.
pub fn no_failure() -> Law {
    Law::new("no-deadlock", |view| match view.error() {
        None => Vec::new(),
        Some(err) => vec![Violation {
            at_seq: view.end_seq(),
            message: format!("run failed: {err}"),
        }],
    })
}

/// Law: starvation-freedom. Violated when the kernel starvation watchdog
/// flagged a waiter ([`SimReport::starvation`]) or a requester
/// permanently gave up (`gave-up:` in the trace) — the two signals the R2
/// classifier treats as visible starvation. Checked on the partial
/// report of failed runs too (a run can starve a reader *and* deadlock).
pub fn starvation_free() -> Law {
    Law::new("starvation-free", |view| {
        let report = view.report();
        let mut violations = crate::liveness::check_starvation_free(report);
        violations.extend(
            report
                .trace
                .user_events()
                .filter(|(_, label, _)| label.starts_with("gave-up:"))
                .map(|(event, label, _)| Violation {
                    at_seq: event.seq,
                    message: format!("{} permanently gave up ({label})", event.pid),
                }),
        );
        violations
    })
}

/// Law: mutual exclusion over the given conflict relation (see
/// [`crate::checks::check_exclusion`]), evaluated over the run's problem
/// events — partial trace included on failed runs.
pub fn exclusion(conflicts: &'static [(&'static str, &'static str)]) -> Law {
    Law::new("exclusion", move |view| {
        crate::checks::check_exclusion(&view.events, conflicts)
    })
}

/// Law: eventual service — every `req:<op>` is matched by an `enter:<op>`
/// from the same process before the trace ends. On a *successful* run an
/// unserved request is a stranded waiter; on failed runs the law is
/// vacuous (the failure itself is [`no_failure`]'s department, and a
/// deadlocked trace legitimately truncates mid-request).
pub fn eventual_service() -> Law {
    Law::new("eventual-service", |view| {
        if view.error().is_some() {
            return Vec::new();
        }
        let mut violations = Vec::new();
        for instance in crate::events::instances(&view.events) {
            if instance.enter.is_none() {
                let request = &view.events[instance.request];
                violations.push(Violation {
                    at_seq: request.seq,
                    message: format!(
                        "{} requested {} and was never admitted",
                        request.pid, request.op
                    ),
                });
            }
        }
        violations
    })
}

/// Violation-rate bucket for one (law, scenario) cell of a sampling
/// campaign: the fraction of sampled runs that violated the law,
/// discretised for the R3 report tables.
///
/// `Unobserved` carries the sampling caveat verbatim: *no counterexample
/// was found in this campaign* — it is not a proof of absence, and the
/// reports print it as `0 found`, never as `impossible`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RateClass {
    /// No violating run in the campaign ("not yet found" — nothing more).
    Unobserved,
    /// Violating-run fraction below 1%.
    Rare,
    /// Violating-run fraction in [1%, 25%).
    Occasional,
    /// Violating-run fraction of 25% or more.
    Frequent,
}

impl fmt::Display for RateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RateClass::Unobserved => "unobserved",
            RateClass::Rare => "rare",
            RateClass::Occasional => "occasional",
            RateClass::Frequent => "frequent",
        })
    }
}

/// Buckets `hits` violating runs out of `runs` sampled into a
/// [`RateClass`] (integer arithmetic; no violating run is `Unobserved`
/// regardless of `runs`).
pub fn classify_rate(hits: u64, runs: usize) -> RateClass {
    let runs = runs as u64;
    if hits == 0 {
        RateClass::Unobserved
    } else if hits * 100 < runs {
        RateClass::Rare
    } else if hits * 4 < runs {
        RateClass::Occasional
    } else {
        RateClass::Frequent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_sim::{Sim, WaitQueue};
    use std::sync::Arc;

    fn clean_run() -> Result<SimReport, SimError> {
        let mut sim = Sim::new();
        sim.spawn("p", |ctx| {
            crate::events::request(ctx, "work", &[]);
            crate::events::enter(ctx, "work", &[]);
            crate::events::exit(ctx, "work", &[]);
        });
        sim.run()
    }

    fn deadlocked_run() -> Result<SimReport, SimError> {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("q"));
        let q2 = Arc::clone(&q);
        sim.spawn("stuck", move |ctx| {
            crate::events::request(ctx, "work", &[]);
            q2.wait(ctx);
        });
        sim.run()
    }

    #[test]
    fn no_failure_law_flags_exactly_failed_runs() {
        let set = LawSet::new().with(no_failure());
        assert!(set.violated(&clean_run()).is_empty());
        assert_eq!(set.violated(&deadlocked_run()), vec!["no-deadlock"]);
    }

    #[test]
    fn eventual_service_flags_stranded_requests_on_ok_runs_only() {
        let set = LawSet::new().with(eventual_service());
        assert!(set.violated(&clean_run()).is_empty());
        // The deadlocked run has an unmatched request, but it failed: the
        // law is vacuous there by design.
        assert!(set.violated(&deadlocked_run()).is_empty());

        // A run that finishes with a request nobody admitted.
        let mut sim = Sim::new();
        sim.spawn("asker", |ctx| {
            crate::events::request(ctx, "work", &[]);
        });
        let result = sim.run();
        let violations = set.check(&result);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].law, "eventual-service");
        assert!(violations[0].violation.message.contains("never admitted"));
    }

    #[test]
    fn starvation_free_law_sees_gave_up_events() {
        let mut sim = Sim::new();
        sim.spawn("quitter", |ctx| ctx.emit("gave-up:work", &[]));
        let result = sim.run();
        let set = LawSet::new().with(starvation_free());
        assert_eq!(set.violated(&result), vec!["starvation-free"]);
    }

    #[test]
    fn exclusion_law_reads_events_of_failed_runs_too() {
        // Two overlapping enters, then a deadlock: the partial trace must
        // still convict the exclusion law.
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("q"));
        let q2 = Arc::clone(&q);
        sim.spawn("bad", move |ctx| {
            crate::events::enter(ctx, "crit", &[]);
            crate::events::enter(ctx, "crit", &[]);
            q2.wait(ctx);
        });
        let result = sim.run();
        assert!(result.is_err());
        let set = LawSet::new()
            .with(exclusion(&[("crit", "crit")]))
            .with(no_failure());
        assert_eq!(set.violated(&result), vec!["exclusion", "no-deadlock"]);
    }

    #[test]
    fn law_set_keys_are_distinct_and_ordered() {
        let set = LawSet::new()
            .with(no_failure())
            .with(starvation_free())
            .with(eventual_service());
        assert_eq!(
            set.names(),
            vec!["no-deadlock", "starvation-free", "eventual-service"]
        );
    }

    #[test]
    fn rate_classifier_buckets_are_stable() {
        assert_eq!(classify_rate(0, 0), RateClass::Unobserved);
        assert_eq!(classify_rate(0, 1000), RateClass::Unobserved);
        assert_eq!(classify_rate(1, 1000), RateClass::Rare);
        assert_eq!(classify_rate(9, 1000), RateClass::Rare);
        assert_eq!(classify_rate(10, 1000), RateClass::Occasional);
        assert_eq!(classify_rate(249, 1000), RateClass::Occasional);
        assert_eq!(classify_rate(250, 1000), RateClass::Frequent);
        assert_eq!(classify_rate(5, 5), RateClass::Frequent);
        assert_eq!(format!("{}", RateClass::Unobserved), "unobserved");
    }
}
