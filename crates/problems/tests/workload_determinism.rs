//! Property suite for the workload DSL's load-bearing invariant: a
//! [`WorkloadSpec`] is a *pure function* from its fields to its
//! [`ClientPlan`]s.
//!
//! The R3 experiments and the sampled law checker both lean on this —
//! a sampled counterexample is replayable only if rebuilding the spec
//! reproduces the exact population the failing schedule ran against. So
//! the properties here sweep every arrival × think-time combination the
//! DSL offers and demand *byte identity* (via the full `Debug`
//! serialization, not just `PartialEq`) across repeated expansions and
//! across expansions performed concurrently on different numbers of
//! worker threads. Wall-clock time, global RNG state, or iteration-order
//! dependence anywhere in the expansion path would fail these within a
//! few proptest cases.

#![deny(deprecated)]

use bloom_problems::workload::{Arrival, ClientPlan, Role, Think, WorkloadSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// Every arrival pattern the DSL can express, with parameter ranges wide
/// enough to hit the degenerate corners (zero gaps, burst size 1,
/// `mean_gap` 0 — the documented degeneration to `Together`).
fn arrival_strategy() -> BoxedStrategy<Arrival> {
    prop_oneof![
        Just(Arrival::Together),
        (0u64..500).prop_map(|gap| Arrival::Staggered { gap }),
        (1usize..32, 0u64..500).prop_map(|(size, gap)| Arrival::Bursts { size, gap }),
        (0u64..64, 0u64..256).prop_map(|(mean_gap, cap)| Arrival::Poisson { mean_gap, cap }),
    ]
    .boxed()
}

/// Every think-time distribution, including the heavy-tailed Zipf corner
/// that draws 128-bit randomness.
fn think_strategy() -> BoxedStrategy<Think> {
    prop_oneof![
        Just(Think::None),
        (0u64..64).prop_map(Think::Fixed),
        (0u64..32, 0u64..32).prop_map(|(a, b)| Think::Uniform {
            lo: a.min(b),
            hi: a.max(b),
        }),
        (1u64..64, 1u32..4).prop_map(|(max, exponent)| Think::Zipf { max, exponent }),
    ]
    .boxed()
}

/// Role mixes from none (every client is `"client"`) through skewed to
/// zero-weight corner cases.
fn mix_strategy() -> BoxedStrategy<Vec<Role>> {
    prop_oneof![
        Just(Vec::<Role>::new()),
        (0u32..10, 0u32..10).prop_map(|(r, w)| vec![
            Role {
                name: "reader",
                weight: r,
            },
            Role {
                name: "writer",
                weight: w,
            },
        ]),
    ]
    .boxed()
}

fn spec_strategy() -> BoxedStrategy<WorkloadSpec> {
    (
        (any::<u64>(), 0usize..120, 0usize..6),
        (arrival_strategy(), think_strategy(), mix_strategy()),
    )
        .prop_map(|((seed, clients, ops), (arrival, think, mix))| {
            WorkloadSpec::new(seed)
                .clients(clients)
                .ops(ops)
                .arrival(arrival)
                .think(think)
                .mix(&mix)
        })
        .boxed()
}

/// The byte-identity yardstick: the complete `Debug` rendering of every
/// plan field. Comparing strings (not just `Vec<ClientPlan>` equality)
/// means a future non-`Eq` field cannot silently weaken the check.
fn serialize(plans: &[ClientPlan]) -> String {
    format!("{plans:#?}")
}

proptest! {
    /// Same spec, same bytes — expansion after expansion, for every
    /// arrival/think/mix combination.
    #[test]
    fn expansion_is_a_pure_function_of_the_spec(spec in spec_strategy()) {
        let first = serialize(&spec.plans());
        for _ in 0..3 {
            prop_assert_eq!(&first, &serialize(&spec.plans()));
        }
        // Rebuilding the spec from scratch (a fresh clone) changes
        // nothing either: no hidden state survives outside the fields.
        prop_assert_eq!(&first, &serialize(&spec.clone().plans()));
    }

    /// Expanding the same spec concurrently from 1, 2, 4, or 8 worker
    /// threads yields the same bytes as the serial expansion — the
    /// generator owns all of its state, so parallel R3 workers can each
    /// rebuild the population locally without coordination.
    #[test]
    fn expansion_is_identical_across_worker_counts(spec in spec_strategy()) {
        let reference = serialize(&spec.plans());
        let spec = Arc::new(spec);
        for workers in [1usize, 2, 4, 8] {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let spec = Arc::clone(&spec);
                    std::thread::spawn(move || serialize(&spec.plans()))
                })
                .collect();
            for h in handles {
                let got = h.join().expect("expansion never panics");
                prop_assert_eq!(&reference, &got, "diverged at {} workers", workers);
            }
        }
    }

    /// The structural facts the experiments rely on hold for every
    /// combination: one plan per client, indexed in order, `ops` think
    /// entries each, and every role drawn from the mix (or the default).
    #[test]
    fn expansion_shape_matches_the_spec(spec in spec_strategy()) {
        let plans = spec.plans();
        prop_assert_eq!(plans.len(), spec.client_count());
        for (i, plan) in plans.iter().enumerate() {
            prop_assert_eq!(plan.index, i);
            prop_assert_eq!(plan.thinks.len(), spec.ops_count());
        }
    }
}
