//! Exhaustive (schedule × kill-point) exploration of the experiment-R1
//! crash scenarios.
//!
//! The per-kill-point sweeps in `faults` run one canonical schedule; this
//! suite drives [`Explorer::run_kill_points`] over *every* schedule of the
//! three-process readers/writers scenario for each mechanism, checking
//! that crash containment and the poison protocol hold on all of them —
//! and that the whole exploration is deterministic, decision vectors
//! included. The CSP server's request loop makes its schedule tree too
//! large to exhaust (≈465k schedules), so that mechanism gets a budgeted
//! sample instead; the shared-memory mechanisms are proved over their full
//! trees (~13k–17k schedules each).

#![deny(deprecated)]

use bloom_core::{check_crash_containment, check_poison_propagation, classify_crash, CrashOutcome};
use bloom_problems::faults::{crash_sim, CrashMechanism, CrashProblem, VICTIM};
use bloom_sim::{Engine, ExploreConfig};

const KILL_POINTS: u64 = 6;
const BUDGET: usize = 20_000;

/// Explores all schedules × kill points of `mech`'s readers/writers crash
/// scenario, asserting crash containment and the poison protocol on every
/// run. Returns one journal line per run — kill point, decision vector,
/// outcome — plus whether the whole tree was covered within `budget`.
fn explore_journal(mech: CrashMechanism, budget: usize) -> (Vec<String>, bool) {
    let problem = CrashProblem::ReadersWriters;
    let (records, stats) = ExploreConfig::new(budget)
        .engine(Engine::Parallel)
        .run_kill_points(
            VICTIM,
            KILL_POINTS,
            || crash_sim(mech, problem),
            |point, decisions, result| {
                let victims = match result {
                    Ok(report) => report.killed(),
                    Err(err) => err.report.killed(),
                };
                let violations = check_crash_containment(result, &victims);
                assert!(
                    violations.is_empty(),
                    "{mech}/{problem} kill point {point}: {violations:?}"
                );
                let trace = match result {
                    Ok(report) => &report.trace,
                    Err(err) => &err.report.trace,
                };
                let protocol = check_poison_propagation(trace);
                assert!(
                    protocol.is_empty(),
                    "{mech}/{problem} kill point {point}: {protocol:?}"
                );
                let choices: Vec<u32> = decisions.iter().map(|d| d.chosen).collect();
                format!("k{point} {choices:?} {}", classify_crash(result))
            },
        );
    let journal = records.into_iter().map(|(_, r)| r.value).collect();
    (journal, stats.complete)
}

fn outcomes(journal: &[String]) -> Vec<CrashOutcome> {
    journal
        .iter()
        .map(|line| match line.rsplit(' ').next().unwrap() {
            "contained" => CrashOutcome::Contained,
            "poisoned" => CrashOutcome::Poisoned,
            other => {
                assert_eq!(other, "wedged");
                CrashOutcome::Wedged
            }
        })
        .collect()
}

/// Every schedule of every shared-memory readers/writers crash scenario,
/// at every kill point, is contained and protocol-clean — not just the
/// canonical FIFO schedule the `outcome_sweep` matrix uses. And across
/// the full trees the mechanisms keep their R1 character: bare P/V wedges
/// somewhere, the poisoning mechanisms never wedge, and serializer crowds
/// contain every crash.
#[test]
fn all_rw_schedules_contain_crashes_at_every_kill_point() {
    for mech in [
        CrashMechanism::SemaphoreBare,
        CrashMechanism::SemaphoreLock,
        CrashMechanism::Monitor,
        CrashMechanism::Serializer,
        CrashMechanism::PathExpr,
    ] {
        let (journal, complete) = explore_journal(mech, BUDGET);
        assert!(
            complete,
            "{mech}: budget of {BUDGET} per kill point too small"
        );
        let seen = outcomes(&journal);
        match mech {
            CrashMechanism::SemaphoreBare => assert!(
                seen.contains(&CrashOutcome::Wedged),
                "some schedule must wedge bare P/V"
            ),
            CrashMechanism::Serializer => assert!(
                seen.iter().all(|&o| o == CrashOutcome::Contained),
                "serializer crowds contain every schedule's crash"
            ),
            _ => {
                assert!(
                    !seen.contains(&CrashOutcome::Wedged),
                    "{mech}: no schedule may wedge"
                );
                assert!(
                    seen.contains(&CrashOutcome::Poisoned),
                    "{mech}: some schedule must poison"
                );
            }
        }
    }
}

/// The CSP server's request loop makes exhaustive exploration infeasible;
/// a budgeted sample still proves containment and protocol cleanliness on
/// thousands of schedules per kill point (wedges show up as loud
/// deadlocks, which the containment checker accepts).
#[test]
fn csp_rw_exploration_sample_is_contained() {
    let (journal, _) = explore_journal(CrashMechanism::Csp, 2_000);
    let seen = outcomes(&journal);
    assert!(
        !seen.contains(&CrashOutcome::Poisoned),
        "channels are never poisoned"
    );
    assert!(
        seen.contains(&CrashOutcome::Wedged),
        "a writer dying mid-grant wedges the CSP server in some schedule"
    );
}

/// The exploration itself is deterministic: same scenario, same schedule
/// tree, same decision vectors, same outcomes — run to run. (One
/// representative mechanism; the tree shape is mechanism-independent
/// machinery, and `faults::sweeps_are_deterministic` covers the rest at
/// the single-schedule level.)
#[test]
fn rw_kill_point_exploration_is_deterministic() {
    let first = explore_journal(CrashMechanism::Monitor, BUDGET);
    let second = explore_journal(CrashMechanism::Monitor, BUDGET);
    assert_eq!(first, second, "exploration diverged between runs");
}
