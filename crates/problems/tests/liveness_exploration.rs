//! Exhaustive schedule exploration of the experiment-R2 liveness
//! scenarios.
//!
//! The R2 matrix in `liveness` runs one canonical FIFO schedule per cell;
//! this suite drives [`Explorer`] over *every* interleaving of the
//! recovery scenarios, proving the verdicts are schedule-independent for
//! the shared-memory mechanisms: dining philosophers recover from every
//! deadlock the scheduler can produce (and from the schedules that never
//! deadlock at all), the nested-monitor recovery never does worse than a
//! poisoned monitor, and every recovery is contained — victims die
//! cancelled and loud, survivors finish.

#![deny(deprecated)]

use bloom_core::liveness::{check_recovery_containment, classify_liveness, LivenessOutcome};
use bloom_problems::liveness::{deadlock_recovery_sim, LiveMechanism};
use bloom_sim::{Engine, ExploreConfig};

const BUDGET: usize = 50_000;

/// Explores every schedule of `mech`'s deadlock-recovery scenario,
/// asserting recovery containment on each run and returning one journal
/// line per schedule (decision vector, victim count, verdict) plus
/// whether the tree was exhausted within the budget.
fn explore_journal(mech: LiveMechanism, budget: usize) -> (Vec<String>, bool) {
    let (records, stats) = ExploreConfig::new(budget).engine(Engine::Parallel).run(
        || deadlock_recovery_sim(mech),
        |decisions, result| {
            let violations = check_recovery_containment(result);
            assert!(violations.is_empty(), "{mech}: {violations:?}");
            let recovered = match result {
                Ok(report) => report.recovered.len(),
                Err(err) => err.report.recovered.len(),
            };
            let choices: Vec<u32> = decisions.iter().map(|d| d.chosen).collect();
            format!("{choices:?} v{recovered} {}", classify_liveness(result))
        },
    );
    let journal = records.into_iter().map(|r| r.value).collect();
    (journal, stats.complete)
}

fn verdicts(journal: &[String]) -> Vec<LivenessOutcome> {
    journal
        .iter()
        .map(|line| match line.rsplit(' ').next().unwrap() {
            "recovers" => LivenessOutcome::Recovers,
            "recovers-after-retry" => LivenessOutcome::RecoversAfterRetry,
            "degrades" => LivenessOutcome::Degrades,
            other => {
                assert_eq!(other, "wedges");
                LivenessOutcome::Wedges
            }
        })
        .collect()
}

/// The R2 headline, proved over the whole schedule tree: *every*
/// interleaving of the dining philosophers — those that deadlock and shed
/// a victim, and those that dodge the cycle entirely — ends with the
/// table recovered. No schedule wedges, no schedule degrades, and at
/// least one schedule actually exercises the victim-abort path.
#[test]
fn dining_philosophers_recovers_after_victim_abort() {
    for mech in [LiveMechanism::SemaphoreStrong, LiveMechanism::SemaphoreWeak] {
        let (journal, complete) = explore_journal(mech, BUDGET);
        assert!(complete, "{mech}: budget of {BUDGET} schedules too small");
        assert!(
            verdicts(&journal)
                .iter()
                .all(|&v| v == LivenessOutcome::Recovers),
            "{mech}: every schedule must recover"
        );
        let aborted = journal.iter().filter(|l| !l.contains(" v0 ")).count();
        assert!(
            aborted > 0,
            "{mech}: some schedule must deadlock and abort a victim"
        );
        assert!(
            journal.iter().any(|l| l.contains(" v0 ")),
            "{mech}: some schedule must dodge the deadlock without a victim"
        );
    }
}

/// Nested-monitor recovery over every schedule: the poison price is the
/// worst case — no interleaving wedges, panics a survivor, or strands a
/// non-victim (the containment check inside the journal), under either
/// signalling discipline.
#[test]
fn nested_monitor_recovery_never_exceeds_poison() {
    for mech in [LiveMechanism::MonitorHoare, LiveMechanism::MonitorMesa] {
        let (journal, complete) = explore_journal(mech, BUDGET);
        assert!(complete, "{mech}: budget of {BUDGET} schedules too small");
        assert!(
            !verdicts(&journal).contains(&LivenessOutcome::Wedges),
            "{mech}: no schedule may wedge once recovery is on"
        );
    }
}

/// The serializer's crowd rollback works from every interleaving: each
/// schedule either avoids the cross-crowd cycle or sheds one victim whose
/// membership cleanup frees the survivor.
#[test]
fn serializer_crowd_rollback_recovers_every_schedule() {
    let (journal, complete) = explore_journal(LiveMechanism::Serializer, BUDGET);
    assert!(complete, "budget of {BUDGET} schedules too small");
    assert!(
        verdicts(&journal)
            .iter()
            .all(|&v| v == LivenessOutcome::Recovers),
        "every schedule must recover"
    );
}

/// The exploration itself is deterministic, decision vectors and verdicts
/// included.
#[test]
fn recovery_exploration_is_deterministic() {
    let first = explore_journal(LiveMechanism::SemaphoreStrong, BUDGET);
    let second = explore_journal(LiveMechanism::SemaphoreStrong, BUDGET);
    assert_eq!(first, second, "exploration diverged between runs");
}
