//! Hoare's alarm clock (footnote 2: *request parameters*, with time).
//!
//! Processes call `wake_me(delay)` to sleep until a logical clock — driven
//! by a ticker process calling `tick` — reaches `now + delay`. The
//! priority constraint ("earliest deadline first") conditions on a request
//! argument, and the exclusion constraint ("stay excluded until the clock
//! reaches your deadline") mixes the argument with resource-local state.
//!
//! Mechanism notes:
//!
//! * monitors — Hoare's published solution: a priority-wait condition
//!   keyed by alarm time, with a cascading signal so all due sleepers wake
//!   on one tick;
//! * serializers — an `enqueue` whose *guarantee* is `now >= deadline`:
//!   automatic signalling means `tick` contains no wake-up code at all;
//! * semaphores — an explicit deadline map with a private gate per
//!   sleeper, drained by the ticker;
//! * path expressions — the paper cites the alarm clock (reference \[11\]) as a case
//!   where synchronization procedures are unavoidable: the path contributes
//!   only `path tick end`, the deadline bookkeeping lives outside.

use crate::events::WAKE;
use bloom_core::events::{enter, exit, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, ProblemId, SolutionDesc};
use bloom_monitor::{Cond, Monitor};
use bloom_pathexpr::PathResource;
use bloom_semaphore::Semaphore;
use bloom_serializer::{QueueId, Serializer};
use bloom_sim::{Ctx, Pid, WaitQueue};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A logical alarm clock.
pub trait AlarmClock: Send + Sync {
    /// Blocks the caller until `delay` ticks from now have elapsed.
    fn wake_me(&self, ctx: &Ctx, delay: i64);
    /// Advances the logical clock by one.
    fn tick(&self, ctx: &Ctx);
    /// Evaluation metadata for this solution.
    fn desc(&self) -> SolutionDesc;
}

fn base_desc(
    mechanism: MechanismId,
    units: Vec<ImplUnit>,
    params: Directness,
    local_rating: Directness,
    workarounds: Vec<String>,
) -> SolutionDesc {
    SolutionDesc {
        problem: ProblemId::AlarmClock,
        mechanism,
        units,
        info_handling: [
            (InfoType::RequestParameters, params),
            (InfoType::LocalState, local_rating),
        ]
        .into_iter()
        .collect::<BTreeMap<_, _>>(),
        workarounds,
    }
}

// ---------------------------------------------------------------------------
// Monitor (Hoare 1974 §6)
// ---------------------------------------------------------------------------

/// Hoare's alarm-clock monitor.
pub struct MonitorAlarm {
    monitor: Monitor<i64>,
    wakeup: Cond,
}

impl MonitorAlarm {
    /// Creates the clock at time zero.
    pub fn new() -> Self {
        MonitorAlarm {
            monitor: Monitor::hoare("alarm", 0),
            wakeup: Cond::new("alarm.wakeup"),
        }
    }
}

impl Default for MonitorAlarm {
    fn default() -> Self {
        Self::new()
    }
}

impl AlarmClock for MonitorAlarm {
    fn wake_me(&self, ctx: &Ctx, delay: i64) {
        self.monitor.enter(ctx, |mc| {
            let deadline = mc.state(|now| *now) + delay;
            request(ctx, WAKE, &[deadline]);
            while mc.state(|now| *now) < deadline {
                // Earliest deadline at the front of the condition queue.
                mc.wait_priority(&self.wakeup, deadline);
            }
            let woke_at = mc.state(|now| *now);
            enter(ctx, WAKE, &[deadline, woke_at]);
            // Cascade: the next sleeper may be due on the same tick.
            mc.signal(&self.wakeup);
        });
        exit(ctx, WAKE, &[]);
    }

    fn tick(&self, ctx: &Ctx) {
        self.monitor.enter(ctx, |mc| {
            mc.state(|now| *now += 1);
            mc.signal(&self.wakeup);
        });
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Monitor,
            vec![
                ImplUnit::new("alarm-wakeup", "monitor:now-counter+deadline-recheck"),
                ImplUnit::new("earliest-first", "monitor:priority-wait+cascade-signal"),
            ],
            Directness::Direct,
            Directness::Direct,
            vec![],
        )
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemAlarmEntry {
    gate: Arc<Semaphore>,
    /// Written by the ticker at grant time so the sleeper can report when
    /// its alarm actually fired.
    fired_at: Arc<Mutex<i64>>,
}

struct SemAlarmState {
    now: i64,
    pending: BTreeMap<(i64, u64), SemAlarmEntry>,
}

/// Explicit deadline map with a private gate per sleeper.
pub struct SemaphoreAlarm {
    state: Mutex<SemAlarmState>,
}

impl SemaphoreAlarm {
    /// Creates the clock at time zero.
    pub fn new() -> Self {
        SemaphoreAlarm {
            state: Mutex::new(SemAlarmState {
                now: 0,
                pending: BTreeMap::new(),
            }),
        }
    }
}

impl Default for SemaphoreAlarm {
    fn default() -> Self {
        Self::new()
    }
}

impl AlarmClock for SemaphoreAlarm {
    fn wake_me(&self, ctx: &Ctx, delay: i64) {
        let (gate, fired_at, deadline) = {
            let mut s = self.state.lock();
            let deadline = s.now + delay;
            request(ctx, WAKE, &[deadline]);
            if s.now >= deadline {
                enter(ctx, WAKE, &[deadline, s.now]);
                exit(ctx, WAKE, &[]);
                return;
            }
            let entry = SemAlarmEntry {
                gate: Arc::new(Semaphore::strong("alarm.gate", 0)),
                fired_at: Arc::new(Mutex::new(0)),
            };
            let handles = (Arc::clone(&entry.gate), Arc::clone(&entry.fired_at));
            s.pending.insert((deadline, ctx.fresh_ticket()), entry);
            (handles.0, handles.1, deadline)
        };
        gate.p(ctx);
        let woke_at = *fired_at.lock();
        enter(ctx, WAKE, &[deadline, woke_at]);
        exit(ctx, WAKE, &[]);
    }

    fn tick(&self, ctx: &Ctx) {
        let due: Vec<Arc<Semaphore>> = {
            let mut s = self.state.lock();
            s.now += 1;
            let now = s.now;
            let mut due = Vec::new();
            while let Some(entry) = s.pending.first_entry() {
                if entry.key().0 > now {
                    break;
                }
                let entry = entry.remove();
                *entry.fired_at.lock() = now;
                due.push(entry.gate);
            }
            due
        };
        for gate in due {
            gate.v(ctx);
        }
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Semaphore,
            vec![
                ImplUnit::new("alarm-wakeup", "sem:deadline-map+ticker-drain"),
                ImplUnit::new("earliest-first", "sem:btreemap-order"),
            ],
            Directness::Workaround,
            Directness::Indirect,
            vec!["per-sleeper private semaphores granted by the ticker".into()],
        )
    }
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

/// Serializer alarm clock: the guarantee *is* the wake condition
/// (`now >= deadline`), so `tick` contains no wake-up logic whatsoever —
/// the paper's automatic-signalling benefit at its clearest.
pub struct SerializerAlarm {
    ser: Arc<Serializer<i64>>,
    alarms: QueueId,
}

impl SerializerAlarm {
    /// Creates the clock at time zero.
    pub fn new() -> Self {
        let ser = Arc::new(Serializer::new("alarm", 0));
        let alarms = ser.queue("alarms");
        SerializerAlarm { ser, alarms }
    }
}

impl Default for SerializerAlarm {
    fn default() -> Self {
        Self::new()
    }
}

impl AlarmClock for SerializerAlarm {
    fn wake_me(&self, ctx: &Ctx, delay: i64) {
        self.ser.enter(ctx, |sc| {
            let deadline = sc.state(|now| *now) + delay;
            request(ctx, WAKE, &[deadline]);
            sc.enqueue_priority(self.alarms, deadline, move |v| *v.state() >= deadline);
            let woke_at = sc.state(|now| *now);
            enter(ctx, WAKE, &[deadline, woke_at]);
        });
        exit(ctx, WAKE, &[]);
    }

    fn tick(&self, ctx: &Ctx) {
        self.ser.enter(ctx, |sc| {
            sc.state(|now| *now += 1);
            // No signalling: releasing possession re-evaluates the
            // guarantees of due sleepers automatically.
        });
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Serializer,
            vec![
                ImplUnit::new("alarm-wakeup", "guard:now>=deadline"),
                ImplUnit::new("earliest-first", "serializer:priority-queue-by-deadline"),
            ],
            Directness::Direct,
            Directness::Direct,
            vec![],
        )
    }
}

// ---------------------------------------------------------------------------
// Path expressions (workaround)
// ---------------------------------------------------------------------------

struct PathAlarmState {
    now: i64,
    pending: BTreeMap<(i64, u64), Pid>,
    granted: HashMap<Pid, i64>,
}

/// Path-expression "solution": `path tick end` serializes clock updates
/// (all the paths can express); the deadline bookkeeping and wake-ups are
/// synchronization procedures outside the mechanism — the paper cites the
/// alarm clock as exactly such a case.
pub struct PathAlarm {
    paths: PathResource,
    state: Mutex<PathAlarmState>,
    gate: WaitQueue,
}

impl PathAlarm {
    /// Creates the clock at time zero.
    pub fn new() -> Self {
        PathAlarm {
            paths: PathResource::parse("alarm", "path tick end").expect("static path source"),
            state: Mutex::new(PathAlarmState {
                now: 0,
                pending: BTreeMap::new(),
                granted: HashMap::new(),
            }),
            gate: WaitQueue::new("alarm.sleepers"),
        }
    }
}

impl Default for PathAlarm {
    fn default() -> Self {
        Self::new()
    }
}

impl AlarmClock for PathAlarm {
    fn wake_me(&self, ctx: &Ctx, delay: i64) {
        let deadline = {
            let mut s = self.state.lock();
            let deadline = s.now + delay;
            request(ctx, WAKE, &[deadline]);
            if s.now >= deadline {
                let now = s.now;
                enter(ctx, WAKE, &[deadline, now]);
                exit(ctx, WAKE, &[]);
                return;
            }
            s.pending.insert((deadline, ctx.fresh_ticket()), ctx.pid());
            deadline
        };
        self.gate.wait(ctx);
        let woke_at = self
            .state
            .lock()
            .granted
            .remove(&ctx.pid())
            .expect("ticker recorded our grant");
        enter(ctx, WAKE, &[deadline, woke_at]);
        exit(ctx, WAKE, &[]);
    }

    fn tick(&self, ctx: &Ctx) {
        self.paths.perform(ctx, "tick", || {
            let due: Vec<Pid> = {
                let mut s = self.state.lock();
                s.now += 1;
                let now = s.now;
                let mut due = Vec::new();
                while let Some(entry) = s.pending.first_entry() {
                    if entry.key().0 > now {
                        break;
                    }
                    let pid = entry.remove();
                    s.granted.insert(pid, now);
                    due.push(pid);
                }
                due
            };
            for pid in due {
                self.gate.wake_pid(ctx, pid);
            }
        });
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::PathV1,
            vec![
                ImplUnit::new("alarm-wakeup", "syncproc:deadline-map-outside-paths"),
                ImplUnit::new("earliest-first", "syncproc:btreemap-order"),
            ],
            Directness::Workaround,
            Directness::Workaround,
            vec!["wake-up policy implemented entirely outside the path mechanism".into()],
        )
    }
}

/// Fresh instance of the solution for `mechanism`.
///
/// # Panics
///
/// Panics for [`MechanismId::PathV2`] (the numeric operator does not give
/// paths access to request parameters).
pub fn make(mechanism: MechanismId) -> Arc<dyn AlarmClock> {
    match mechanism {
        MechanismId::Semaphore => Arc::new(SemaphoreAlarm::new()),
        MechanismId::Monitor => Arc::new(MonitorAlarm::new()),
        MechanismId::Serializer => Arc::new(SerializerAlarm::new()),
        MechanismId::PathV1 => Arc::new(PathAlarm::new()),
        MechanismId::Csp => Arc::new(crate::csp::CspAlarm::new()),
        MechanismId::PathV2 | MechanismId::PathV3 => {
            panic!("alarm clock has no distinct path-v2/v3 solution")
        }
    }
}

/// The mechanisms with an alarm-clock solution.
pub const MECHANISMS: [MechanismId; 5] = [
    MechanismId::Semaphore,
    MechanismId::Monitor,
    MechanismId::Serializer,
    MechanismId::PathV1,
    MechanismId::Csp,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::alarm_scenario;
    use bloom_core::checks::{check_alarm, check_all_served, expect_clean};
    use bloom_core::events::extract;

    #[test]
    fn nobody_wakes_early_or_oversleeps() {
        for mech in MECHANISMS {
            for (workload, sched) in [(1u64, None), (2, None), (3, Some(101)), (4, Some(102))] {
                let report = alarm_scenario(mech, 5, workload, sched);
                let events = extract(&report.trace);
                expect_clean(
                    &check_alarm(&events, WAKE, 1),
                    &format!("{mech} alarm timing (workload {workload}, sched {sched:?})"),
                );
                expect_clean(&check_all_served(&events), &format!("{mech} liveness"));
            }
        }
    }

    /// Scripted: three sleepers with deadlines 3, 1, 2 wake in deadline
    /// order regardless of registration order.
    #[test]
    fn sleepers_wake_in_deadline_order() {
        for mech in MECHANISMS {
            let mut sim = bloom_sim::Sim::new();
            let clock = make(mech);
            let order = Arc::new(Mutex::new(Vec::new()));
            for (i, delay) in [3i64, 1, 2].into_iter().enumerate() {
                let c = Arc::clone(&clock);
                let o = Arc::clone(&order);
                sim.spawn(&format!("sleeper{i}"), move |ctx| {
                    c.wake_me(ctx, delay);
                    o.lock().push(delay);
                });
            }
            let c = Arc::clone(&clock);
            sim.spawn_daemon("ticker", move |ctx| loop {
                ctx.sleep(1);
                c.tick(ctx);
            });
            sim.run().unwrap();
            assert_eq!(*order.lock(), vec![1, 2, 3], "{mech} deadline order");
        }
    }

    #[test]
    fn zero_or_negative_delay_wakes_immediately_where_supported() {
        // Semaphore and path solutions short-circuit a due deadline; the
        // monitor and serializer re-check `now` and fall straight through.
        for mech in MECHANISMS {
            let mut sim = bloom_sim::Sim::new();
            let clock = make(mech);
            let c = Arc::clone(&clock);
            sim.spawn("eager", move |ctx| {
                c.wake_me(ctx, 0);
                ctx.emit("awake", &[]);
            });
            let report = sim.run().unwrap();
            assert_eq!(report.trace.count_user("awake"), 1, "{mech}");
        }
    }

    #[test]
    fn descriptions_attribute_both_constraints() {
        for mech in MECHANISMS {
            let d = make(mech).desc();
            assert!(d.constraints().contains("alarm-wakeup"), "{mech}");
            assert!(d.constraints().contains("earliest-first"), "{mech}");
        }
        assert_eq!(
            make(MechanismId::Serializer).desc().info_handling[&InfoType::RequestParameters],
            Directness::Direct
        );
        assert_eq!(
            make(MechanismId::PathV1).desc().info_handling[&InfoType::RequestParameters],
            Directness::Workaround
        );
    }
}
