//! The readers/writers family — the paper's analytic centerpiece.
//!
//! Three variants share the `rw-exclusion` constraint (a writer excludes
//! everyone, readers exclude only writers) and differ in the priority
//! constraint:
//!
//! * [`RwVariant::ReadersPriority`] — waiting readers beat waiting writers
//!   (Courtois et al. problem 1, the subject of the paper's Figure 1 and
//!   footnote 3);
//! * [`RwVariant::WritersPriority`] — waiting writers beat new readers
//!   (Courtois problem 2, the paper's Figure 2);
//! * [`RwVariant::Fcfs`] — access granted in arrival order, with
//!   consecutive readers still sharing (the variant §5.1.2 uses to test
//!   constraint independence against *request time* information).
//!
//! §4.2's independence methodology is reproduced over exactly this family:
//! the per-mechanism modules attribute their implementation components to
//! the catalog constraints, and the workspace analysis compares how the
//! shared exclusion constraint fares when the priority constraint changes.
//!
//! # Priority semantics and checkers
//!
//! Two formalizations of "X has priority" appear:
//!
//! * **strict**: an opposing operation never *enters* while an X request
//!   is pending (`check_priority_over`) — what the monitor, serializer and
//!   semaphore solutions guarantee;
//! * **arrival-relative**: no opposing request issued *after* a pending X
//!   request overtakes it (`check_no_later_overtake`) — the guarantee the
//!   Figure-2 path solution provides (readers already past `requestread`
//!   when the writer arrives may finish).
//!
//! The Figure-1 path solution satisfies *neither* for readers — that is
//! the paper's footnote-3 anomaly, proved by exhaustive schedule
//! exploration in the workspace tests.

mod monitor;
mod path;
mod semaphore;
mod serializer;

pub use monitor::MonitorRw;
pub use path::{
    PathFcfsRw, PathFig1ReadersPriority, PathFig2WritersPriority, PathV3ReadersPriority,
};
pub use semaphore::SemaphoreRw;
pub use serializer::SerializerRw;

use bloom_core::{MechanismId, ProblemId, SolutionDesc};
use bloom_sim::Ctx;
use std::sync::Arc;

/// Which readers/writers problem variant a solution implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RwVariant {
    /// Waiting readers beat waiting writers.
    ReadersPriority,
    /// Waiting writers beat new readers.
    WritersPriority,
    /// Arrival order, consecutive readers share.
    Fcfs,
}

impl RwVariant {
    /// All variants.
    pub const ALL: [RwVariant; 3] = [
        RwVariant::ReadersPriority,
        RwVariant::WritersPriority,
        RwVariant::Fcfs,
    ];

    /// The catalog problem this variant corresponds to.
    pub fn problem(self) -> ProblemId {
        match self {
            RwVariant::ReadersPriority => ProblemId::ReadersPriorityDb,
            RwVariant::WritersPriority => ProblemId::WritersPriorityDb,
            RwVariant::Fcfs => ProblemId::FcfsReadersWriters,
        }
    }

    /// The catalog name of this variant's priority constraint.
    pub fn priority_constraint(self) -> &'static str {
        match self {
            RwVariant::ReadersPriority => "readers-priority",
            RwVariant::WritersPriority => "writers-priority",
            RwVariant::Fcfs => "fcfs-order",
        }
    }
}

/// A readers/writers database.
pub trait ReadersWriters: Send + Sync {
    /// Performs a read; `body` runs while read access is held.
    fn read(&self, ctx: &Ctx, body: &mut dyn FnMut());
    /// Performs a write; `body` runs while exclusive access is held.
    fn write(&self, ctx: &Ctx, body: &mut dyn FnMut());
    /// Evaluation metadata for this solution.
    fn desc(&self) -> SolutionDesc;
}

/// Fresh instance of the solution for `mechanism` and `variant`.
///
/// # Panics
///
/// Panics for [`MechanismId::PathV2`]: the readers/writers variants do not
/// use the numeric operator, so v2 adds nothing over the v1 solutions.
pub fn make(mechanism: MechanismId, variant: RwVariant) -> Arc<dyn ReadersWriters> {
    match mechanism {
        MechanismId::Semaphore => Arc::new(SemaphoreRw::new(variant)),
        MechanismId::Monitor => Arc::new(MonitorRw::new(variant)),
        MechanismId::Serializer => Arc::new(SerializerRw::new(variant)),
        MechanismId::PathV1 => match variant {
            RwVariant::ReadersPriority => Arc::new(PathFig1ReadersPriority::new()),
            RwVariant::WritersPriority => Arc::new(PathFig2WritersPriority::new()),
            RwVariant::Fcfs => Arc::new(PathFcfsRw::new()),
        },
        MechanismId::Csp => Arc::new(crate::csp::CspRw::new(variant)),
        MechanismId::PathV2 => panic!("readers/writers has no distinct path-v2 solution"),
        MechanismId::PathV3 => match variant {
            RwVariant::ReadersPriority => Arc::new(PathV3ReadersPriority::new()),
            _ => panic!(
                "path-v3 is provided only for readers priority (the anomaly fix); \
                 the other variants gain nothing over v1"
            ),
        },
    }
}

/// The mechanisms with readers/writers solutions.
pub const MECHANISMS: [MechanismId; 5] = [
    MechanismId::Semaphore,
    MechanismId::Monitor,
    MechanismId::Serializer,
    MechanismId::PathV1,
    MechanismId::Csp,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::rw_scenario;
    use crate::events::{READ, WRITE};
    use bloom_core::checks::{
        check_all_served, check_exclusion, check_fifo, check_no_later_overtake,
        check_priority_over, expect_clean,
    };
    use bloom_core::events::extract;

    fn exclusion_conflicts() -> Vec<(&'static str, &'static str)> {
        vec![(READ, WRITE), (WRITE, WRITE)]
    }

    /// The shared exclusion constraint holds for every mechanism, every
    /// variant, every tested schedule — including the Figure-1 solution
    /// whose *priority* is broken.
    #[test]
    fn exclusion_holds_for_all_solutions() {
        for mech in MECHANISMS {
            for variant in RwVariant::ALL {
                for seed in [None, Some(31), Some(32), Some(33)] {
                    let report = rw_scenario(mech, variant, 3, 2, 3, seed);
                    let events = extract(&report.trace);
                    expect_clean(
                        &check_exclusion(&events, &exclusion_conflicts()),
                        &format!("{mech}/{variant:?} exclusion (seed {seed:?})"),
                    );
                    expect_clean(
                        &check_all_served(&events),
                        &format!("{mech}/{variant:?} liveness (seed {seed:?})"),
                    );
                }
            }
        }
    }

    /// Strict readers priority for the mechanisms that guarantee it.
    #[test]
    fn readers_priority_is_strict_except_for_figure1() {
        for mech in [
            MechanismId::Semaphore,
            MechanismId::Monitor,
            MechanismId::Serializer,
        ] {
            for seed in std::iter::once(None).chain((40..60).map(Some)) {
                let report = rw_scenario(mech, RwVariant::ReadersPriority, 3, 2, 3, seed);
                let events = extract(&report.trace);
                expect_clean(
                    &check_priority_over(&events, READ, WRITE),
                    &format!("{mech} strict readers priority (seed {seed:?})"),
                );
            }
        }
    }

    /// Writers priority: strict for monitor/serializer/semaphore,
    /// arrival-relative for the Figure-2 path solution.
    #[test]
    fn writers_priority_holds_per_solution_guarantee() {
        for mech in [
            MechanismId::Semaphore,
            MechanismId::Monitor,
            MechanismId::Serializer,
        ] {
            for seed in std::iter::once(None).chain((50..70).map(Some)) {
                let report = rw_scenario(mech, RwVariant::WritersPriority, 3, 2, 3, seed);
                let events = extract(&report.trace);
                expect_clean(
                    &check_priority_over(&events, WRITE, READ),
                    &format!("{mech} strict writers priority (seed {seed:?})"),
                );
            }
        }
        for seed in [None, Some(51), Some(52), Some(53), Some(54), Some(55)] {
            let report = rw_scenario(
                MechanismId::PathV1,
                RwVariant::WritersPriority,
                3,
                2,
                3,
                seed,
            );
            let events = extract(&report.trace);
            expect_clean(
                &check_no_later_overtake(&events, WRITE, READ),
                &format!("figure-2 arrival-relative writers priority (seed {seed:?})"),
            );
        }
    }

    /// FCFS variant: admissions happen in request order for every
    /// mechanism (readers still share, but their *enters* stay ordered).
    #[test]
    fn fcfs_variant_admits_in_arrival_order() {
        for mech in MECHANISMS {
            for seed in std::iter::once(None).chain((60..80).map(Some)) {
                let report = rw_scenario(mech, RwVariant::Fcfs, 3, 2, 3, seed);
                let events = extract(&report.trace);
                expect_clean(
                    &check_fifo(&events, &[READ, WRITE]),
                    &format!("{mech} FCFS admission (seed {seed:?})"),
                );
            }
        }
    }

    /// Readers actually share: some schedule exhibits two concurrent reads
    /// (otherwise the "exclusion" could be a degenerate global lock).
    #[test]
    fn readers_overlap_under_some_schedule() {
        for mech in MECHANISMS {
            let mut overlapped = false;
            for seed in [None, Some(71), Some(72), Some(73), Some(74)] {
                let report = rw_scenario(mech, RwVariant::ReadersPriority, 4, 1, 3, seed);
                let events = extract(&report.trace);
                let mut active = 0i32;
                for e in &events {
                    match (e.op.as_str(), e.phase) {
                        (op, bloom_core::Phase::Enter) if op == READ => {
                            active += 1;
                            if active > 1 {
                                overlapped = true;
                            }
                        }
                        (op, bloom_core::Phase::Exit) if op == READ => active -= 1,
                        _ => {}
                    }
                }
            }
            assert!(
                overlapped,
                "{mech}: readers never overlapped in any tested schedule"
            );
        }
    }

    #[test]
    fn descriptions_share_the_exclusion_constraint_name() {
        for mech in MECHANISMS {
            for variant in RwVariant::ALL {
                let d = make(mech, variant).desc();
                assert_eq!(d.problem, variant.problem(), "{mech}/{variant:?}");
                assert!(
                    d.constraints().contains("rw-exclusion"),
                    "{mech}/{variant:?} must attribute rw-exclusion"
                );
                assert!(
                    d.constraints().contains(variant.priority_constraint()),
                    "{mech}/{variant:?} must attribute {}",
                    variant.priority_constraint()
                );
            }
        }
    }
}
