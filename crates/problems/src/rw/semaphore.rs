//! Semaphore readers/writers solutions ("pass the baton").
//!
//! The state (active/waiting sets) lives behind one lock; blocked
//! processes wait on gate semaphores and are granted by whoever changes
//! the state — the releaser applies the grant *before* waking, so woken
//! processes never re-check (no barging window), and emits the grantee's
//! `enter` event at the decision point (see [`bloom_sim::Ctx::emit_for`])
//! so the trace reflects grant order exactly.
//!
//! The grant logic encodes exclusion and priority **together**, which is
//! exactly the monolithic structure Bloom's ease-of-use criterion
//! penalizes: changing the priority policy rewrites the grant logic
//! wholesale, and the [`SolutionDesc`] component attribution reflects that.

use super::{ReadersWriters, RwVariant};
use crate::events::{READ, WRITE};
use bloom_core::events::{enter, enter_for, exit, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, SolutionDesc};
use bloom_semaphore::Semaphore;
use bloom_sim::{Ctx, Pid};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
}

#[derive(Default)]
struct RwState {
    active_readers: u32,
    writer_active: bool,
    waiting_readers: VecDeque<Pid>,
    waiting_writers: VecDeque<Pid>,
    /// FCFS variant only: explicit arrival queue with per-request gates.
    fcfs_queue: VecDeque<(Kind, Pid, Arc<Semaphore>)>,
}

/// Pass-the-baton readers/writers over semaphores.
pub struct SemaphoreRw {
    variant: RwVariant,
    state: Mutex<RwState>,
    read_gate: Semaphore,
    write_gate: Semaphore,
}

impl SemaphoreRw {
    /// Creates the database for the given variant.
    pub fn new(variant: RwVariant) -> Self {
        SemaphoreRw {
            variant,
            state: Mutex::new(RwState::default()),
            read_gate: Semaphore::strong("rw.read_gate", 0),
            write_gate: Semaphore::strong("rw.write_gate", 0),
        }
    }

    /// Grants every waiting reader (in FIFO order), emitting their enters
    /// at the decision point. Returns how many `v` operations to perform.
    fn grant_all_readers(s: &mut RwState, ctx: &Ctx) -> usize {
        let n = s.waiting_readers.len();
        s.active_readers += n as u32;
        for pid in s.waiting_readers.drain(..) {
            enter_for(ctx, pid, READ, &[]);
        }
        n
    }

    /// Grants the longest-waiting writer, if any.
    fn grant_one_writer(s: &mut RwState, ctx: &Ctx) -> bool {
        match s.waiting_writers.pop_front() {
            Some(pid) => {
                s.writer_active = true;
                enter_for(ctx, pid, WRITE, &[]);
                true
            }
            None => false,
        }
    }

    fn end_read(&self, ctx: &Ctx) {
        let grants = {
            let mut s = self.state.lock();
            s.active_readers -= 1;
            match self.variant {
                RwVariant::ReadersPriority | RwVariant::WritersPriority => {
                    // Readers never wait while no writer is active, so the
                    // only hand-off at read-exit is to a writer when we
                    // were last out.
                    if s.active_readers == 0 && Self::grant_one_writer(&mut s, ctx) {
                        Grants::Writer
                    } else {
                        Grants::None
                    }
                }
                RwVariant::Fcfs => Grants::Fcfs(Self::drain_fcfs(&mut s, ctx)),
            }
        };
        grants.release(self, ctx);
    }

    fn start_write(&self, ctx: &Ctx) {
        let gate = {
            let mut s = self.state.lock();
            let admit = match self.variant {
                RwVariant::ReadersPriority | RwVariant::WritersPriority => {
                    !s.writer_active && s.active_readers == 0
                }
                RwVariant::Fcfs => {
                    s.fcfs_queue.is_empty() && !s.writer_active && s.active_readers == 0
                }
            };
            if admit {
                s.writer_active = true;
                enter(ctx, WRITE, &[]);
                None
            } else {
                match self.variant {
                    RwVariant::Fcfs => {
                        let gate = Arc::new(Semaphore::strong("rw.fcfs.private", 0));
                        s.fcfs_queue
                            .push_back((Kind::Write, ctx.pid(), Arc::clone(&gate)));
                        Some(WaitOn::Private(gate))
                    }
                    _ => {
                        s.waiting_writers.push_back(ctx.pid());
                        Some(WaitOn::WriteGate)
                    }
                }
            }
        };
        match gate {
            None => {}
            Some(WaitOn::WriteGate) => self.write_gate.p(ctx),
            Some(WaitOn::Private(gate)) => gate.p(ctx),
            Some(WaitOn::ReadGate) => unreachable!("writers never wait on the read gate"),
        }
    }

    fn end_write(&self, ctx: &Ctx) {
        let grants = {
            let mut s = self.state.lock();
            s.writer_active = false;
            match self.variant {
                RwVariant::ReadersPriority => {
                    if !s.waiting_readers.is_empty() {
                        Grants::Readers(Self::grant_all_readers(&mut s, ctx))
                    } else if Self::grant_one_writer(&mut s, ctx) {
                        Grants::Writer
                    } else {
                        Grants::None
                    }
                }
                RwVariant::WritersPriority => {
                    if Self::grant_one_writer(&mut s, ctx) {
                        Grants::Writer
                    } else if !s.waiting_readers.is_empty() {
                        Grants::Readers(Self::grant_all_readers(&mut s, ctx))
                    } else {
                        Grants::None
                    }
                }
                RwVariant::Fcfs => Grants::Fcfs(Self::drain_fcfs(&mut s, ctx)),
            }
        };
        grants.release(self, ctx);
    }

    /// FCFS baton: grant queue heads while they are compatible — a run of
    /// readers shares, a writer needs the database empty and blocks the
    /// queue behind it. Enters are emitted here, in queue order.
    fn drain_fcfs(s: &mut RwState, ctx: &Ctx) -> Vec<Arc<Semaphore>> {
        let mut grants = Vec::new();
        while let Some((kind, pid, _)) = s.fcfs_queue.front() {
            match kind {
                Kind::Read if !s.writer_active => {
                    enter_for(ctx, *pid, READ, &[]);
                    let (_, _, gate) = s.fcfs_queue.pop_front().expect("front exists");
                    s.active_readers += 1;
                    grants.push(gate);
                }
                Kind::Write if !s.writer_active && s.active_readers == 0 => {
                    enter_for(ctx, *pid, WRITE, &[]);
                    let (_, _, gate) = s.fcfs_queue.pop_front().expect("front exists");
                    s.writer_active = true;
                    grants.push(gate);
                    break;
                }
                _ => break,
            }
        }
        grants
    }
}

enum WaitOn {
    ReadGate,
    WriteGate,
    Private(Arc<Semaphore>),
}

/// Grants decided under the state lock, released (gate `v`s) outside it.
enum Grants {
    None,
    Writer,
    Readers(usize),
    Fcfs(Vec<Arc<Semaphore>>),
}

impl Grants {
    fn release(self, rw: &SemaphoreRw, ctx: &Ctx) {
        match self {
            Grants::None => {}
            Grants::Writer => rw.write_gate.v(ctx),
            Grants::Readers(n) => {
                for _ in 0..n {
                    rw.read_gate.v(ctx);
                }
            }
            Grants::Fcfs(gates) => {
                for gate in gates {
                    gate.v(ctx);
                }
            }
        }
    }
}

impl ReadersWriters for SemaphoreRw {
    fn read(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, READ, &[]);
        // Admission: either immediate (enter emitted here) or granted
        // later by a releaser (enter emitted at the grant).
        let wait = {
            let mut s = self.state.lock();
            let admit = match self.variant {
                RwVariant::ReadersPriority => !s.writer_active,
                RwVariant::WritersPriority => !s.writer_active && s.waiting_writers.is_empty(),
                RwVariant::Fcfs => s.fcfs_queue.is_empty() && !s.writer_active,
            };
            if admit {
                s.active_readers += 1;
                enter(ctx, READ, &[]);
                None
            } else if self.variant == RwVariant::Fcfs {
                let gate = Arc::new(Semaphore::strong("rw.fcfs.private", 0));
                s.fcfs_queue
                    .push_back((Kind::Read, ctx.pid(), Arc::clone(&gate)));
                Some(WaitOn::Private(gate))
            } else {
                s.waiting_readers.push_back(ctx.pid());
                Some(WaitOn::ReadGate)
            }
        };
        match wait {
            None => {}
            Some(WaitOn::ReadGate) => self.read_gate.p(ctx),
            Some(WaitOn::Private(gate)) => gate.p(ctx),
            Some(WaitOn::WriteGate) => unreachable!("readers never wait on the write gate"),
        }
        body();
        exit(ctx, READ, &[]);
        self.end_read(ctx);
    }

    fn write(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, WRITE, &[]);
        self.start_write(ctx);
        body();
        exit(ctx, WRITE, &[]);
        self.end_write(ctx);
    }

    fn desc(&self) -> SolutionDesc {
        let variant_tag = match self.variant {
            RwVariant::ReadersPriority => "rp",
            RwVariant::WritersPriority => "wp",
            RwVariant::Fcfs => "fcfs",
        };
        // Honest attribution: in a baton solution the admission test and
        // the release policy realize exclusion *and* priority together, so
        // both constraints point at variant-specific components — low
        // constraint independence, as the paper expects of semaphores.
        SolutionDesc {
            problem: self.variant.problem(),
            mechanism: MechanismId::Semaphore,
            units: vec![
                ImplUnit::new(
                    "rw-exclusion",
                    &format!("baton:admission-test-{variant_tag}"),
                ),
                ImplUnit::new(
                    self.variant.priority_constraint(),
                    &format!("baton:release-policy-{variant_tag}"),
                ),
            ],
            info_handling: [
                (InfoType::RequestType, Directness::Indirect),
                (InfoType::SyncState, Directness::Indirect),
                match self.variant {
                    RwVariant::Fcfs => (InfoType::RequestTime, Directness::Workaround),
                    _ => (InfoType::RequestType, Directness::Indirect),
                },
            ]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
            workarounds: match self.variant {
                RwVariant::Fcfs => vec!["explicit arrival queue with private gates".into()],
                _ => vec!["hand-maintained reader/writer counts".into()],
            },
        }
    }
}
