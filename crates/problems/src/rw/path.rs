//! Path-expression readers/writers solutions — the paper's Figures 1 and 2
//! reproduced verbatim, plus the FCFS variant via the gate idiom.
//!
//! The figures use *synchronization procedures* (`requestread`,
//! `writeattempt`, `openwrite`, …): extra operations that appear in paths
//! purely to steer the scheduler, invoked from each other's bodies exactly
//! as the paper's `where` clauses prescribe. They are the workaround
//! Bloom's §5.1 identifies — and the reason the solutions score
//! `Workaround` on priority information and fail the modularity
//! requirement (resource and synchronization are inseparable).
//!
//! [`PathFig1ReadersPriority`] carries the paper's own footnote 3: it does
//! **not** implement true readers priority. A second writer that has
//! claimed `requestwrite` while the first writes will beat a reader that
//! arrived earlier. The workspace tests prove this mechanically with the
//! schedule explorer.

use super::{ReadersWriters, RwVariant};
use crate::events::{READ, WRITE};
use bloom_core::events::{enter, exit, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, SolutionDesc};
use bloom_pathexpr::PathResource;
use bloom_sim::Ctx;
use std::collections::BTreeMap;

/// Figure 1: the readers-priority solution of Campbell & Habermann as
/// reproduced in the paper.
///
/// ```text
/// path writeattempt end
/// path { requestread } , requestwrite end
/// path { read } , (openwrite ; write) end
/// where
///   requestwrite = begin openwrite end
///   writeattempt = begin requestwrite end
///   requestread  = begin read end
///   READ  = begin requestread end
///   WRITE = begin writeattempt ; write end
/// ```
pub struct PathFig1ReadersPriority {
    paths: PathResource,
}

/// The paths of Figure 1, verbatim.
pub const FIG1_PATHS: &str = "\
    path writeattempt end \
    path { requestread } , requestwrite end \
    path { read } , (openwrite ; write) end";

impl PathFig1ReadersPriority {
    /// Creates the database.
    pub fn new() -> Self {
        PathFig1ReadersPriority {
            paths: PathResource::parse("rw-fig1", FIG1_PATHS).expect("static path source"),
        }
    }
}

impl Default for PathFig1ReadersPriority {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadersWriters for PathFig1ReadersPriority {
    fn read(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, READ, &[]);
        // READ = begin requestread end; requestread = begin read end.
        self.paths.perform(ctx, "requestread", || {
            self.paths.perform(ctx, "read", || {
                enter(ctx, READ, &[]);
                body();
                exit(ctx, READ, &[]);
            });
        });
    }

    fn write(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, WRITE, &[]);
        // WRITE = begin writeattempt ; write end, with
        // writeattempt = begin requestwrite end and
        // requestwrite = begin openwrite end.
        self.paths.perform(ctx, "writeattempt", || {
            self.paths.perform(ctx, "requestwrite", || {
                self.paths.perform(ctx, "openwrite", || {});
            });
        });
        self.paths.perform(ctx, "write", || {
            enter(ctx, WRITE, &[]);
            body();
            exit(ctx, WRITE, &[]);
        });
    }

    fn desc(&self) -> SolutionDesc {
        SolutionDesc {
            problem: RwVariant::ReadersPriority.problem(),
            mechanism: MechanismId::PathV1,
            units: vec![
                // The exclusion constraint is *not* the isolated
                // `path {read},write end`: it had to be rewritten to
                // coordinate with the priority gates.
                ImplUnit::new("rw-exclusion", "path:{read},(openwrite;write)"),
                ImplUnit::new("readers-priority", "path:writeattempt-serializer"),
                ImplUnit::new("readers-priority", "path:{requestread},requestwrite"),
                ImplUnit::new(
                    "readers-priority",
                    "syncproc:requestread/requestwrite/openwrite",
                ),
            ],
            info_handling: [
                (InfoType::RequestType, Directness::Direct),
                (InfoType::SyncState, Directness::Workaround),
            ]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
            workarounds: vec![
                "synchronization procedures as gates (paper §5.1.1)".into(),
                "KNOWN ANOMALY (paper footnote 3): a second writer overtakes a waiting reader"
                    .into(),
            ],
        }
    }
}

/// Figure 2: the writers-priority solution.
///
/// ```text
/// path readattempt end
/// path requestread , { requestwrite } end
/// path { openread ; read } , write end
/// where
///   readattempt  = begin requestread end
///   requestread  = begin openread end
///   requestwrite = begin write end
///   READ  = begin readattempt ; read end
///   WRITE = begin requestwrite end
/// ```
pub struct PathFig2WritersPriority {
    paths: PathResource,
}

/// The paths of Figure 2, verbatim.
pub const FIG2_PATHS: &str = "\
    path readattempt end \
    path requestread , { requestwrite } end \
    path { openread ; read } , write end";

impl PathFig2WritersPriority {
    /// Creates the database.
    pub fn new() -> Self {
        PathFig2WritersPriority {
            paths: PathResource::parse("rw-fig2", FIG2_PATHS).expect("static path source"),
        }
    }
}

impl Default for PathFig2WritersPriority {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadersWriters for PathFig2WritersPriority {
    fn read(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, READ, &[]);
        // READ = begin readattempt ; read end, with
        // readattempt = begin requestread end and
        // requestread = begin openread end.
        self.paths.perform(ctx, "readattempt", || {
            self.paths.perform(ctx, "requestread", || {
                self.paths.perform(ctx, "openread", || {});
            });
        });
        self.paths.perform(ctx, "read", || {
            enter(ctx, READ, &[]);
            body();
            exit(ctx, READ, &[]);
        });
    }

    fn write(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, WRITE, &[]);
        // WRITE = begin requestwrite end; requestwrite = begin write end.
        self.paths.perform(ctx, "requestwrite", || {
            self.paths.perform(ctx, "write", || {
                enter(ctx, WRITE, &[]);
                body();
                exit(ctx, WRITE, &[]);
            });
        });
    }

    fn desc(&self) -> SolutionDesc {
        SolutionDesc {
            problem: RwVariant::WritersPriority.problem(),
            mechanism: MechanismId::PathV1,
            units: vec![
                // Again a different exclusion path than Figure 1's and than
                // the isolated form — the §5.1.2 finding.
                ImplUnit::new("rw-exclusion", "path:{openread;read},write"),
                ImplUnit::new("writers-priority", "path:readattempt-serializer"),
                ImplUnit::new("writers-priority", "path:requestread,{requestwrite}"),
                ImplUnit::new(
                    "writers-priority",
                    "syncproc:readattempt/requestread/openread",
                ),
            ],
            info_handling: [
                (InfoType::RequestType, Directness::Direct),
                (InfoType::SyncState, Directness::Workaround),
            ]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
            workarounds: vec![
                "synchronization procedures as gates (paper §5.1.2, Figure 2)".into(),
                "priority is arrival-relative: readers already past requestread finish first"
                    .into(),
            ],
        }
    }
}

/// FCFS readers/writers via the gate idiom: a one-operation `request` path
/// serializes arrivals (longest-waiting selection makes it FIFO), and each
/// request *begins* its data operation while still holding the gate, so
/// admission order equals arrival order. The exclusion path is exactly the
/// isolated form `path { read } , write end`.
pub struct PathFcfsRw {
    paths: PathResource,
}

/// The paths of the FCFS gate solution.
pub const FCFS_PATHS: &str = "path request end path { read } , write end";

impl PathFcfsRw {
    /// Creates the database.
    pub fn new() -> Self {
        PathFcfsRw {
            paths: PathResource::parse("rw-fcfs", FCFS_PATHS).expect("static path source"),
        }
    }
}

impl Default for PathFcfsRw {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadersWriters for PathFcfsRw {
    fn read(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, READ, &[]);
        self.paths.perform(ctx, "request", || {
            self.paths.begin(ctx, "read");
        });
        enter(ctx, READ, &[]);
        body();
        exit(ctx, READ, &[]);
        self.paths.finish(ctx, "read");
    }

    fn write(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, WRITE, &[]);
        self.paths.perform(ctx, "request", || {
            self.paths.begin(ctx, "write");
        });
        enter(ctx, WRITE, &[]);
        body();
        exit(ctx, WRITE, &[]);
        self.paths.finish(ctx, "write");
    }

    fn desc(&self) -> SolutionDesc {
        SolutionDesc {
            problem: RwVariant::Fcfs.problem(),
            mechanism: MechanismId::PathV1,
            units: vec![
                ImplUnit::new("rw-exclusion", "path:{read},write"),
                ImplUnit::new("fcfs-order", "path:request-gate-serializer"),
                ImplUnit::new("fcfs-order", "syncproc:begin-inside-gate"),
            ],
            info_handling: [
                (InfoType::RequestType, Directness::Direct),
                (InfoType::RequestTime, Directness::Indirect),
            ]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
            workarounds: vec!["gate operation holding admission open (sync procedure)".into()],
        }
    }
}

/// Version-3 (Andler) readers-priority solution: the *isolated* exclusion
/// path plus one predicate — no synchronization procedures, no gates, and
/// no footnote-3 anomaly.
///
/// ```text
/// path { read } , write end
/// predicate on write:  blocked(read) == 0
/// ```
///
/// The predicate states readers priority directly over synchronization
/// state (the blocked-request count), exactly the information v1 paths
/// could not reach. The workspace tests prove by exhaustive exploration
/// that this solution never exhibits the anomaly.
pub struct PathV3ReadersPriority {
    paths: PathResource,
}

impl PathV3ReadersPriority {
    /// Creates the database.
    pub fn new() -> Self {
        let paths =
            PathResource::parse("rw-v3", "path { read } , write end").expect("static path source");
        // Andler predicate: writers defer to waiting readers.
        paths.add_predicate("write", |v| v.blocked("read") == 0);
        PathV3ReadersPriority { paths }
    }
}

impl Default for PathV3ReadersPriority {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadersWriters for PathV3ReadersPriority {
    fn read(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, READ, &[]);
        self.paths.perform(ctx, "read", || {
            enter(ctx, READ, &[]);
            body();
            exit(ctx, READ, &[]);
        });
    }

    fn write(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, WRITE, &[]);
        self.paths.perform(ctx, "write", || {
            enter(ctx, WRITE, &[]);
            body();
            exit(ctx, WRITE, &[]);
        });
    }

    fn desc(&self) -> SolutionDesc {
        SolutionDesc {
            problem: RwVariant::ReadersPriority.problem(),
            mechanism: MechanismId::PathV3,
            units: vec![
                // The isolated exclusion form survives intact.
                ImplUnit::new("rw-exclusion", "path:{read},write"),
                ImplUnit::new("readers-priority", "predicate:no-blocked-readers"),
            ],
            info_handling: [
                (InfoType::RequestType, Directness::Direct),
                (InfoType::SyncState, Directness::Direct),
            ]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
            workarounds: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_core::checks::{check_exclusion, check_priority_over, expect_clean};
    use bloom_core::events::extract;
    use bloom_sim::Sim;
    use std::sync::Arc;

    /// The deterministic footnote-3 script: W1 writes; W2 requests while
    /// W1 writes; the reader requests after W2 but before W1 finishes; W2
    /// enters before the reader although readers should have priority.
    #[test]
    fn figure1_footnote3_anomaly_reproduces_deterministically() {
        let mut sim = Sim::new();
        let db = Arc::new(PathFig1ReadersPriority::new());
        let d1 = Arc::clone(&db);
        sim.spawn("writer1", move |ctx| {
            d1.write(ctx, &mut || {
                // Hold the write long enough for W2 and the reader to queue.
                for _ in 0..6 {
                    ctx.yield_now();
                }
            });
        });
        let d2 = Arc::clone(&db);
        sim.spawn("writer2", move |ctx| {
            ctx.yield_now(); // let W1 start writing
            d2.write(ctx, &mut || {});
        });
        let d3 = Arc::clone(&db);
        sim.spawn("reader", move |ctx| {
            ctx.yield_now();
            ctx.yield_now(); // request after W2 has claimed requestwrite
            d3.read(ctx, &mut || {});
        });
        let report = sim.run().expect("no deadlock");
        let events = extract(&report.trace);
        let violations = check_priority_over(&events, READ, WRITE);
        assert!(
            !violations.is_empty(),
            "footnote 3 must reproduce: a writer enters while the reader waits.\n{}",
            report.trace.render()
        );
        // And yet exclusion is intact — the anomaly is purely a priority bug.
        expect_clean(
            &check_exclusion(&events, &[(READ, WRITE), (WRITE, WRITE)]),
            "figure-1 exclusion",
        );
    }

    /// In the same scenario, Figure 2 (writers priority) must serve both
    /// writers before the reader — correctly this time, by design.
    #[test]
    fn figure2_serves_writers_first_by_design() {
        let mut sim = Sim::new();
        let db = Arc::new(PathFig2WritersPriority::new());
        let d1 = Arc::clone(&db);
        sim.spawn("writer1", move |ctx| {
            d1.write(ctx, &mut || {
                for _ in 0..6 {
                    ctx.yield_now();
                }
            });
        });
        let d2 = Arc::clone(&db);
        sim.spawn("writer2", move |ctx| {
            ctx.yield_now();
            d2.write(ctx, &mut || {});
        });
        let d3 = Arc::clone(&db);
        sim.spawn("reader", move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            d3.read(ctx, &mut || {});
        });
        let report = sim.run().expect("no deadlock");
        let events = extract(&report.trace);
        let enters: Vec<&str> = events
            .iter()
            .filter(|e| e.phase == bloom_core::Phase::Enter)
            .map(|e| e.op.as_str())
            .collect();
        assert_eq!(enters, vec![WRITE, WRITE, READ], "writers-priority order");
    }

    /// Figure 1 paths parse to exactly the figure's text.
    #[test]
    fn figure_sources_round_trip() {
        let paths = bloom_pathexpr::parse_paths(FIG1_PATHS).unwrap();
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].to_string(), "path writeattempt end");
        assert_eq!(
            paths[1].to_string(),
            "path { requestread } , requestwrite end"
        );
        assert_eq!(
            paths[2].to_string(),
            "path { read } , (openwrite ; write) end"
        );
        let paths = bloom_pathexpr::parse_paths(FIG2_PATHS).unwrap();
        assert_eq!(
            paths[1].to_string(),
            "path requestread , { requestwrite } end"
        );
        assert_eq!(paths[2].to_string(), "path { openread ; read } , write end");
    }
}
