//! Monitor readers/writers solutions (after Hoare 1974 §4).
//!
//! The exclusion constraint is realized the same way in all three
//! variants — a `busy` flag plus an active-reader count, both monitor
//! data — while the priority constraint varies: the wake policy at
//! release, plus (for writers priority) a queue interrogation at read
//! entry, plus (for FCFS) a ticket sequencer using the priority-wait
//! construct. That separation is why the paper finds monitor constraints
//! largely independent (§5.2); the component attribution in
//! [`SolutionDesc`] makes it measurable.
//!
//! The FCFS variant demonstrates the paper's *request type × request time
//! conflict*: both kinds of information want the condition queue, so the
//! solution issues tickets (stage one: a total arrival order) and admits
//! ticket-holders from a single priority-ordered condition (stage two:
//! per-type admission tests) — the "two stages of queuing" idiom of §5.2.

use super::{ReadersWriters, RwVariant};
use crate::events::{READ, WRITE};
use bloom_core::events::{enter, exit, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, SolutionDesc};
use bloom_monitor::{Cond, Monitor};
use bloom_sim::Ctx;
use std::collections::BTreeMap;

#[derive(Default)]
struct RwState {
    readers: u32,
    busy: bool,
    /// FCFS only: ticket dispenser and grant cursor.
    next_ticket: i64,
    serving: i64,
}

/// Hoare-monitor readers/writers.
pub struct MonitorRw {
    variant: RwVariant,
    monitor: Monitor<RwState>,
    ok_read: Cond,
    ok_write: Cond,
    /// FCFS only: one condition ordered by ticket.
    turn: Cond,
}

impl MonitorRw {
    /// Creates the database for the given variant.
    pub fn new(variant: RwVariant) -> Self {
        MonitorRw {
            variant,
            monitor: Monitor::hoare("rw", RwState::default()),
            ok_read: Cond::new("rw.ok_read"),
            ok_write: Cond::new("rw.ok_write"),
            turn: Cond::new("rw.turn"),
        }
    }

    fn start_read(&self, ctx: &Ctx) {
        self.monitor.enter(ctx, |mc| {
            // A request exists for the synchronizer once it is inside the
            // monitor; emitting it here (not before entry) keeps the trace
            // aligned with what the wake policies can actually see.
            request(ctx, READ, &[]);
            match self.variant {
                RwVariant::ReadersPriority => {
                    if mc.state(|s| s.busy) {
                        mc.wait(&self.ok_read);
                    }
                    mc.state(|s| s.readers += 1);
                    // Emit while holding the monitor: trace order = admission
                    // order even though the cascade resumes us interleaved.
                    enter(ctx, READ, &[]);
                    // Cascade: admit the next waiting reader, who admits the
                    // next, and so on.
                    mc.signal(&self.ok_read);
                }
                RwVariant::WritersPriority => {
                    // Queue interrogation (sync state): new readers defer to
                    // waiting writers.
                    while mc.state(|s| s.busy) || !self.ok_write.is_empty() {
                        mc.wait(&self.ok_read);
                    }
                    mc.state(|s| s.readers += 1);
                    enter(ctx, READ, &[]);
                    mc.signal(&self.ok_read);
                }
                RwVariant::Fcfs => {
                    let t = mc.state(|s| {
                        let t = s.next_ticket;
                        s.next_ticket += 1;
                        t
                    });
                    while mc.state(|s| s.serving != t || s.busy) {
                        mc.wait_priority(&self.turn, t);
                    }
                    mc.state(|s| {
                        s.serving += 1;
                        s.readers += 1;
                    });
                    enter(ctx, READ, &[]);
                    // The next ticket holder may also be admissible (another
                    // reader): pass the grant along.
                    mc.signal(&self.turn);
                }
            }
        });
    }

    fn end_read(&self, ctx: &Ctx) {
        self.monitor.enter(ctx, |mc| {
            exit(ctx, READ, &[]);
            let readers = mc.state(|s| {
                s.readers -= 1;
                s.readers
            });
            if readers == 0 {
                match self.variant {
                    RwVariant::Fcfs => mc.signal(&self.turn),
                    _ => mc.signal(&self.ok_write),
                }
            }
        });
    }

    fn start_write(&self, ctx: &Ctx) {
        self.monitor.enter(ctx, |mc| {
            request(ctx, WRITE, &[]);
            match self.variant {
                RwVariant::ReadersPriority | RwVariant::WritersPriority => {
                    while mc.state(|s| s.busy || s.readers > 0) {
                        mc.wait(&self.ok_write);
                    }
                    mc.state(|s| s.busy = true);
                    enter(ctx, WRITE, &[]);
                }
                RwVariant::Fcfs => {
                    let t = mc.state(|s| {
                        let t = s.next_ticket;
                        s.next_ticket += 1;
                        t
                    });
                    while mc.state(|s| s.serving != t || s.busy || s.readers > 0) {
                        mc.wait_priority(&self.turn, t);
                    }
                    mc.state(|s| {
                        s.serving += 1;
                        s.busy = true;
                    });
                    enter(ctx, WRITE, &[]);
                }
            }
        });
    }

    fn end_write(&self, ctx: &Ctx) {
        self.monitor.enter(ctx, |mc| {
            exit(ctx, WRITE, &[]);
            mc.state(|s| s.busy = false);
            match self.variant {
                RwVariant::ReadersPriority => {
                    // Waiting readers beat waiting writers.
                    if !self.ok_read.is_empty() {
                        mc.signal(&self.ok_read);
                    } else {
                        mc.signal(&self.ok_write);
                    }
                }
                RwVariant::WritersPriority => {
                    // Waiting writers beat waiting readers.
                    if !self.ok_write.is_empty() {
                        mc.signal(&self.ok_write);
                    } else {
                        mc.signal(&self.ok_read);
                    }
                }
                RwVariant::Fcfs => mc.signal(&self.turn),
            }
        });
    }
}

impl ReadersWriters for MonitorRw {
    fn read(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        self.start_read(ctx); // emits request and enter inside the monitor
        body();
        self.end_read(ctx); // emits the exit inside the monitor
    }

    fn write(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        self.start_write(ctx);
        body();
        self.end_write(ctx);
    }

    fn desc(&self) -> SolutionDesc {
        let (priority_component, extra_info, workarounds): (&str, _, Vec<String>) = match self
            .variant
        {
            RwVariant::ReadersPriority => (
                "monitor:release-prefers-ok_read",
                (InfoType::RequestType, Directness::Direct),
                vec![],
            ),
            RwVariant::WritersPriority => (
                "monitor:release-prefers-ok_write+entry-interrogates-ok_write",
                (InfoType::RequestType, Directness::Direct),
                vec![],
            ),
            RwVariant::Fcfs => (
                "monitor:ticket-sequencer+priority-cond",
                (InfoType::RequestTime, Directness::Direct),
                vec!["two-stage queuing: tickets reconcile the type×time queue conflict".into()],
            ),
        };
        SolutionDesc {
            problem: self.variant.problem(),
            mechanism: MechanismId::Monitor,
            units: vec![
                // Identical across all three variants: monitor constraints
                // are independent.
                ImplUnit::new("rw-exclusion", "monitor:busy-flag+reader-count"),
                ImplUnit::new(self.variant.priority_constraint(), priority_component),
            ],
            info_handling: [(InfoType::SyncState, Directness::Indirect), extra_info]
                .into_iter()
                .collect::<BTreeMap<_, _>>(),
            workarounds,
        }
    }
}
