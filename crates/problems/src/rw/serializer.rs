//! Serializer readers/writers solutions (after Atkinson–Hewitt).
//!
//! The exclusion constraint is two guard conjuncts over crowds — readers
//! require no active writers, writers require an empty database — and is
//! *textually identical* in all three variants. The priority constraint
//! changes only the queue topology (and, for readers priority, one extra
//! guard conjunct):
//!
//! * readers priority — separate reader/writer queues; the writer guard
//!   additionally requires the reader queue to be empty;
//! * writers priority — mirror image;
//! * FCFS — **one** queue for both types: the FIFO head-blocking preserves
//!   arrival order while each process carries its own type-specific
//!   guarantee. This is Bloom's §5.2 observation that automatic signalling
//!   lets request-time and request-type information share a queue, where
//!   monitors need two-stage queuing.

use super::{ReadersWriters, RwVariant};
use crate::events::{READ, WRITE};
use bloom_core::events::{enter, exit, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, SolutionDesc};
use bloom_serializer::{CrowdId, QueueId, Serializer};
use bloom_sim::Ctx;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Serializer readers/writers database.
pub struct SerializerRw {
    variant: RwVariant,
    ser: Arc<Serializer<()>>,
    /// Reader queue (readers-/writers-priority) or the single shared queue
    /// (FCFS).
    read_queue: QueueId,
    /// Writer queue; equals `read_queue` in the FCFS variant.
    write_queue: QueueId,
    readers: CrowdId,
    writers: CrowdId,
}

impl SerializerRw {
    /// Creates the database for the given variant.
    pub fn new(variant: RwVariant) -> Self {
        let ser = Arc::new(Serializer::new("rw", ()));
        let (read_queue, write_queue) = match variant {
            RwVariant::Fcfs => {
                let q = ser.queue("arrivals");
                (q, q)
            }
            _ => (ser.queue("read-requests"), ser.queue("write-requests")),
        };
        let readers = ser.crowd("readers");
        let writers = ser.crowd("writers");
        SerializerRw {
            variant,
            ser,
            read_queue,
            write_queue,
            readers,
            writers,
        }
    }
}

impl ReadersWriters for SerializerRw {
    fn read(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        let (writers, write_queue) = (self.writers, self.write_queue);
        let variant = self.variant;
        self.ser.enter(ctx, |sc| {
            // A request exists for the synchronizer once it has possession.
            request(ctx, READ, &[]);
            sc.enqueue(self.read_queue, move |v| {
                let exclusion = v.crowd_is_empty(writers);
                let priority = match variant {
                    // New readers defer to queued writers.
                    RwVariant::WritersPriority => v.queue_is_empty(write_queue),
                    _ => true,
                };
                exclusion && priority
            });
            // Emit while holding possession: trace order = admission order.
            enter(ctx, READ, &[]);
            sc.join_crowd(self.readers, || {
                body();
            });
            exit(ctx, READ, &[]);
        });
    }

    fn write(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        let (readers, writers, read_queue) = (self.readers, self.writers, self.read_queue);
        let variant = self.variant;
        self.ser.enter(ctx, |sc| {
            request(ctx, WRITE, &[]);
            sc.enqueue(self.write_queue, move |v| {
                let exclusion = v.crowd_is_empty(writers) && v.crowd_is_empty(readers);
                let priority = match variant {
                    // Writers defer to queued readers.
                    RwVariant::ReadersPriority => v.queue_is_empty(read_queue),
                    _ => true,
                };
                exclusion && priority
            });
            enter(ctx, WRITE, &[]);
            sc.join_crowd(self.writers, || {
                body();
            });
            exit(ctx, WRITE, &[]);
        });
    }

    fn desc(&self) -> SolutionDesc {
        let (priority_component, time_rating, notes): (&str, _, Vec<String>) = match self.variant {
            RwVariant::ReadersPriority => (
                "topology:split-queues+writer-defers-to-read-queue",
                None,
                vec![],
            ),
            RwVariant::WritersPriority => (
                "topology:split-queues+reader-defers-to-write-queue",
                None,
                vec![],
            ),
            RwVariant::Fcfs => (
                "topology:single-shared-queue",
                Some((InfoType::RequestTime, Directness::Direct)),
                vec![
                    "one queue holds both request types: automatic signalling avoids the \
                      monitor's type×time conflict"
                        .into(),
                ],
            ),
        };
        let mut info: BTreeMap<InfoType, Directness> = [
            (InfoType::RequestType, Directness::Direct),
            (InfoType::SyncState, Directness::Direct), // crowds
        ]
        .into_iter()
        .collect();
        if let Some((k, v)) = time_rating {
            info.insert(k, v);
        }
        SolutionDesc {
            problem: self.variant.problem(),
            mechanism: MechanismId::Serializer,
            units: vec![
                // Identical guard conjuncts in all three variants.
                ImplUnit::new("rw-exclusion", "guard:readers-exclude-writers"),
                ImplUnit::new("rw-exclusion", "guard:writers-exclude-everyone"),
                ImplUnit::new(self.variant.priority_constraint(), priority_component),
            ],
            info_handling: info,
            workarounds: notes,
        }
    }
}
