//! Beyond footnote 2: the other "standard synchronization problems" the
//! paper's opening paragraph alludes to, used here to show the
//! methodology generalizes past its own test suite.
//!
//! * [`dining`] — Dijkstra's dining philosophers. The naive
//!   fork-as-semaphore solution deadlocks (the simulator detects and
//!   names the cycle); resource ordering and a monitor-based state
//!   solution both fix it. In the taxonomy the avoidance constraint is an
//!   *exclusion* constraint over **synchronization state** (which forks
//!   are held / which neighbors are eating).
//! * [`smokers`] — Patil's cigarette smokers, historically an
//!   *expressiveness* argument: with the agent fixed and no conditionals
//!   around semaphore operations, plain semaphores cannot solve it (the
//!   famous limitation), so the semaphore solution needs helper
//!   "pusher" processes — a process-level synchronization procedure,
//!   exactly the workaround shape §5.1 describes for paths — while a
//!   monitor states the condition directly.

pub mod dining {
    //! Dining philosophers: deadlock, and two cures.

    use bloom_semaphore::Semaphore;
    use bloom_sim::{Sim, SimError};
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Runs `n` naive philosophers (left fork, then right fork). Returns
    /// the simulation error — which must be a deadlock for some schedule.
    ///
    /// Each philosopher yields between picking up the forks, so the
    /// circular-wait interleaving is reachable under FIFO scheduling.
    pub fn naive_run(n: usize) -> Result<(), SimError> {
        let mut sim = Sim::new();
        let forks: Vec<Arc<Semaphore>> = (0..n)
            .map(|i| Arc::new(Semaphore::strong(&format!("fork{i}"), 1)))
            .collect();
        for i in 0..n {
            let left = Arc::clone(&forks[i]);
            let right = Arc::clone(&forks[(i + 1) % n]);
            sim.spawn(&format!("philosopher{i}"), move |ctx| {
                left.p(ctx);
                ctx.yield_now(); // everyone holds their left fork…
                right.p(ctx); // …and waits forever for the right one
                ctx.emit("ate", &[i as i64]);
                right.v(ctx);
                left.v(ctx);
            });
        }
        sim.run().map(|_| ())
    }

    /// The resource-ordering cure: the last philosopher picks forks in the
    /// opposite order, breaking the circular wait. Everyone eats `meals`
    /// times; returns the eat count.
    pub fn ordered_run(n: usize, meals: usize) -> usize {
        let mut sim = Sim::new();
        let forks: Vec<Arc<Semaphore>> = (0..n)
            .map(|i| Arc::new(Semaphore::strong(&format!("fork{i}"), 1)))
            .collect();
        let eaten = Arc::new(Mutex::new(0usize));
        for i in 0..n {
            let (a, b) = {
                let left = i;
                let right = (i + 1) % n;
                // Always acquire the lower-numbered fork first.
                (left.min(right), left.max(right))
            };
            let first = Arc::clone(&forks[a]);
            let second = Arc::clone(&forks[b]);
            let eaten = Arc::clone(&eaten);
            sim.spawn(&format!("philosopher{i}"), move |ctx| {
                for _ in 0..meals {
                    first.p(ctx);
                    ctx.yield_now();
                    second.p(ctx);
                    *eaten.lock() += 1;
                    ctx.yield_now();
                    second.v(ctx);
                    first.v(ctx);
                }
            });
        }
        sim.run().expect("ordered acquisition cannot deadlock");
        let n = *eaten.lock();
        n
    }

    /// Dijkstra's state-based cure as a monitor: a philosopher eats only
    /// when neither neighbor is eating; putting forks down re-tests the
    /// neighbors. Returns the eat count and the maximum number of
    /// simultaneously eating neighbors pairs observed (must be zero).
    pub fn monitor_run(n: usize, meals: usize) -> (usize, usize) {
        use bloom_monitor::{Cond, Monitor};

        let mut sim = Sim::new();
        let monitor = Arc::new(Monitor::hoare("table", vec![false; n]));
        let conds: Vec<Arc<Cond>> = (0..n)
            .map(|i| Arc::new(Cond::new(&format!("may_eat{i}"))))
            .collect();
        let eaten = Arc::new(Mutex::new(0usize));
        let neighbor_violations = Arc::new(Mutex::new(0usize));
        for i in 0..n {
            let monitor = Arc::clone(&monitor);
            let conds: Vec<Arc<Cond>> = conds.iter().map(Arc::clone).collect();
            let eaten = Arc::clone(&eaten);
            let violations = Arc::clone(&neighbor_violations);
            sim.spawn(&format!("philosopher{i}"), move |ctx| {
                let left = (i + n - 1) % n;
                let right = (i + 1) % n;
                for _ in 0..meals {
                    monitor.enter(ctx, |mc| {
                        while mc.state(|eating| eating[left] || eating[right]) {
                            mc.wait(&conds[i]);
                        }
                        mc.state(|eating| eating[i] = true);
                    });
                    {
                        // Eat (outside the monitor, §2 structure).
                        let bad = monitor
                            .enter(ctx, |mc| mc.state(|eating| eating[left] || eating[right]));
                        if bad {
                            *violations.lock() += 1;
                        }
                        ctx.yield_now();
                        *eaten.lock() += 1;
                    }
                    monitor.enter(ctx, |mc| {
                        mc.state(|eating| eating[i] = false);
                        // Re-test both neighbors.
                        mc.signal(&conds[left]);
                        mc.signal(&conds[right]);
                    });
                }
            });
        }
        sim.run().expect("state-based solution cannot deadlock");
        let e = *eaten.lock();
        let v = *neighbor_violations.lock();
        (e, v)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn naive_philosophers_deadlock_and_the_report_names_a_fork() {
            let err = naive_run(5).expect_err("must deadlock under FIFO");
            let err_text = err.to_string();
            assert!(err_text.contains("deadlock"), "{err_text}");
            assert!(
                err_text.contains("fork"),
                "diagnostic names the cycle: {err_text}"
            );
        }

        /// Exhaustive exploration quantifies the hazard: some—but not
        /// all—schedules of the naive solution deadlock, and *no* schedule
        /// of the ordered solution does.
        #[test]
        fn exhaustive_exploration_quantifies_the_deadlock() {
            use bloom_sim::{Engine, ExploreConfig};

            let naive = |n: usize| {
                move || {
                    let mut sim = Sim::new();
                    let forks: Vec<Arc<Semaphore>> = (0..n)
                        .map(|i| Arc::new(Semaphore::strong(&format!("fork{i}"), 1)))
                        .collect();
                    for i in 0..n {
                        let left = Arc::clone(&forks[i]);
                        let right = Arc::clone(&forks[(i + 1) % n]);
                        sim.spawn(&format!("philosopher{i}"), move |ctx| {
                            left.p(ctx);
                            ctx.yield_now();
                            right.p(ctx);
                            right.v(ctx);
                            left.v(ctx);
                        });
                    }
                    sim
                }
            };
            let (journal, stats) = ExploreConfig::new(300_000)
                .engine(Engine::Parallel)
                .run(naive(3), |_, result| result.is_err());
            let schedules = journal.len();
            let deadlocks = journal.iter().filter(|r| r.value).count();
            assert!(stats.complete, "3-philosopher tree fully explored");
            assert!(deadlocks > 0, "the circular wait is reachable");
            assert!(
                deadlocks < schedules,
                "and yet most schedules complete: {deadlocks}/{schedules}"
            );

            // The ordered variant never deadlocks, over the same tree size.
            let ordered = || {
                let mut sim = Sim::new();
                let n = 3;
                let forks: Vec<Arc<Semaphore>> = (0..n)
                    .map(|i| Arc::new(Semaphore::strong(&format!("fork{i}"), 1)))
                    .collect();
                for i in 0..n {
                    let (a, b) = {
                        let left = i;
                        let right = (i + 1) % n;
                        (left.min(right), left.max(right))
                    };
                    let first = Arc::clone(&forks[a]);
                    let second = Arc::clone(&forks[b]);
                    sim.spawn(&format!("philosopher{i}"), move |ctx| {
                        first.p(ctx);
                        ctx.yield_now();
                        second.p(ctx);
                        second.v(ctx);
                        first.v(ctx);
                    });
                }
                sim
            };
            let (journal, stats) = ExploreConfig::new(300_000)
                .engine(Engine::Parallel)
                .run(ordered, |_, result| result.is_err());
            let ordered_deadlocks = journal.iter().filter(|r| r.value).count();
            assert!(stats.complete);
            assert_eq!(
                ordered_deadlocks, 0,
                "resource ordering: zero deadlocking schedules"
            );
        }

        #[test]
        fn resource_ordering_fixes_the_deadlock() {
            assert_eq!(ordered_run(5, 3), 15);
        }

        #[test]
        fn monitor_state_solution_is_safe_and_live() {
            let (eaten, violations) = monitor_run(5, 3);
            assert_eq!(eaten, 15);
            assert_eq!(
                violations, 0,
                "no philosopher ate beside an eating neighbor"
            );
        }

        #[test]
        fn two_philosophers_also_work() {
            assert_eq!(ordered_run(2, 4), 8);
            let (eaten, violations) = monitor_run(2, 4);
            assert_eq!((eaten, violations), (8, 0));
        }
    }
}

pub mod smokers {
    //! Patil's cigarette smokers.
    //!
    //! An agent repeatedly places two of the three ingredients (tobacco,
    //! paper, matches) on the table; the smoker holding the third must
    //! pick them up and smoke. Patil proved the problem unsolvable with
    //! semaphores alone if the agent cannot be modified and no
    //! conditionals are allowed — making it a canonical *expressive power*
    //! benchmark in exactly Bloom's sense: the condition "both of MY
    //! ingredients are on the table" needs information semaphores cannot
    //! carry.

    use bloom_monitor::{Cond, Monitor};
    use bloom_semaphore::Semaphore;
    use bloom_sim::Sim;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// Ingredient indices: 0 = tobacco, 1 = paper, 2 = matches. Smoker
    /// `i` owns ingredient `i` and needs the other two.
    pub const INGREDIENTS: [&str; 3] = ["tobacco", "paper", "matches"];

    /// Semaphore solution *with helper pushers* (the classical fix): each
    /// placed ingredient wakes a pusher that records it and, when a pair
    /// is complete, wakes the right smoker. Returns how many times each
    /// smoker smoked.
    pub fn pushers_run(rounds: usize, agent_seed: u64) -> [usize; 3] {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut sim = Sim::new();
        let ingredient_sems: Vec<Arc<Semaphore>> = INGREDIENTS
            .iter()
            .map(|n| Arc::new(Semaphore::strong(&format!("on_table.{n}"), 0)))
            .collect();
        let smoker_sems: Vec<Arc<Semaphore>> = INGREDIENTS
            .iter()
            .map(|n| Arc::new(Semaphore::strong(&format!("smoker.{n}"), 0)))
            .collect();
        let agent_again = Arc::new(Semaphore::strong("agent.again", 0));
        // Pusher shared state: which ingredients are on the table.
        let table = Arc::new(Mutex::new([false; 3]));
        let smoked = Arc::new(Mutex::new([0usize; 3]));

        // The agent: places two random ingredients, waits for the smoke.
        {
            let sems: Vec<Arc<Semaphore>> = ingredient_sems.iter().map(Arc::clone).collect();
            let again = Arc::clone(&agent_again);
            sim.spawn("agent", move |ctx| {
                let mut rng = StdRng::seed_from_u64(agent_seed);
                for _ in 0..rounds {
                    let skip = rng.gen_range(0..3usize);
                    for (i, sem) in sems.iter().enumerate() {
                        if i != skip {
                            sem.v(ctx);
                        }
                    }
                    again.p(ctx);
                }
            });
        }
        // Three pushers: the helper processes that give semaphores the
        // missing conditional. This is the workaround — compare the
        // monitor solution, which needs none of it.
        for i in 0..3 {
            let my_sem = Arc::clone(&ingredient_sems[i]);
            let table = Arc::clone(&table);
            let smoker_sems: Vec<Arc<Semaphore>> = smoker_sems.iter().map(Arc::clone).collect();
            sim.spawn_daemon(&format!("pusher.{}", INGREDIENTS[i]), move |ctx| loop {
                my_sem.p(ctx);
                let mut t = table.lock();
                // Which other ingredient is already on the table?
                let other = (0..3).find(|&j| j != i && t[j]);
                match other {
                    Some(j) => {
                        t[i] = false;
                        t[j] = false;
                        // Ingredients i and j are down: smoker owning the
                        // third gets both.
                        let third = 3 - i - j;
                        drop(t);
                        smoker_sems[third].v(ctx);
                    }
                    None => t[i] = true,
                }
            });
        }
        for i in 0..3 {
            let my_turn = Arc::clone(&smoker_sems[i]);
            let again = Arc::clone(&agent_again);
            let smoked = Arc::clone(&smoked);
            sim.spawn_daemon(&format!("smoker.{}", INGREDIENTS[i]), move |ctx| loop {
                my_turn.p(ctx);
                smoked.lock()[i] += 1;
                ctx.yield_now(); // smoke
                again.v(ctx);
            });
        }
        sim.run().expect("pushers solution is deadlock-free");
        let s = *smoked.lock();
        s
    }

    /// Monitor solution: one condition per smoker and a direct test of
    /// "are both of my ingredients down?" — the conditional that
    /// semaphores lack, stated in one line of monitor code.
    pub fn monitor_run(rounds: usize, agent_seed: u64) -> [usize; 3] {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut sim = Sim::new();
        let monitor = Arc::new(Monitor::hoare("table", [false; 3]));
        let may_smoke: Vec<Arc<Cond>> = INGREDIENTS
            .iter()
            .map(|n| Arc::new(Cond::new(&format!("may_smoke.{n}"))))
            .collect();
        let done = Arc::new(Cond::new("table.cleared"));
        let smoked = Arc::new(Mutex::new([0usize; 3]));

        {
            let monitor = Arc::clone(&monitor);
            let may_smoke: Vec<Arc<Cond>> = may_smoke.iter().map(Arc::clone).collect();
            let done = Arc::clone(&done);
            sim.spawn("agent", move |ctx| {
                let mut rng = StdRng::seed_from_u64(agent_seed);
                for _ in 0..rounds {
                    let skip = rng.gen_range(0..3usize);
                    monitor.enter(ctx, |mc| {
                        mc.state(|t| {
                            for (i, slot) in t.iter_mut().enumerate() {
                                *slot = i != skip;
                            }
                        });
                        // Wake exactly the smoker whose ingredients are down.
                        mc.signal(&may_smoke[skip]);
                        // Wait for the table to clear before the next round.
                        while mc.state(|t| t.iter().any(|&x| x)) {
                            mc.wait(&done);
                        }
                    });
                }
            });
        }
        for i in 0..3 {
            let monitor = Arc::clone(&monitor);
            let my_cond = Arc::clone(&may_smoke[i]);
            let done = Arc::clone(&done);
            let smoked = Arc::clone(&smoked);
            sim.spawn_daemon(&format!("smoker.{}", INGREDIENTS[i]), move |ctx| loop {
                monitor.enter(ctx, |mc| {
                    // "Both of my ingredients are on the table": a direct
                    // boolean over local state.
                    while !mc.state(|t| (0..3).all(|j| j == i || t[j])) {
                        mc.wait(&my_cond);
                    }
                    mc.state(|t| t.fill(false));
                    // Count before signalling: under Hoare semantics the
                    // signal hands control to the agent, which may be the
                    // last non-daemon and end the run before this daemon
                    // is scheduled again.
                    smoked.lock()[i] += 1;
                    mc.signal(&done);
                });
                ctx.yield_now(); // smoke outside the monitor
            });
        }
        sim.run().expect("monitor solution is deadlock-free");
        let s = *smoked.lock();
        s
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn pushers_solution_smokes_every_round() {
            for seed in [1, 2, 3] {
                let counts = pushers_run(12, seed);
                assert_eq!(counts.iter().sum::<usize>(), 12, "seed {seed}: {counts:?}");
            }
        }

        #[test]
        fn monitor_solution_smokes_every_round() {
            for seed in [1, 2, 3] {
                let counts = monitor_run(12, seed);
                assert_eq!(counts.iter().sum::<usize>(), 12, "seed {seed}: {counts:?}");
            }
        }

        #[test]
        fn both_solutions_agree_on_who_smokes() {
            // Same agent schedule → the same smoker must smoke each round,
            // regardless of mechanism.
            for seed in [7, 8] {
                assert_eq!(pushers_run(10, seed), monitor_run(10, seed), "seed {seed}");
            }
        }

        #[test]
        fn the_right_smoker_smokes() {
            // With a single round and a deterministic agent seed, exactly
            // one smoker smokes and it is the owner of the skipped
            // ingredient. (Derive the skip from the same RNG the agent uses.)
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            for seed in 0..5 {
                let skip = StdRng::seed_from_u64(seed).gen_range(0..3usize);
                let counts = monitor_run(1, seed);
                let expected = {
                    let mut c = [0usize; 3];
                    c[skip] = 1;
                    c
                };
                assert_eq!(counts, expected, "seed {seed}");
            }
        }
    }
}
