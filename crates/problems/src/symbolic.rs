//! E5 — symbolic data nondeterminism wired into real solutions.
//!
//! Two paper solutions are parameterized over a *data* input drawn with
//! [`Ctx::choose_value`] instead of a fixed constant:
//!
//! * **Andler reader burst** — a load generator draws a burst size
//!   `t ∈ 1..=8` and spawns `reader i` while `t > i` (up to
//!   [`MAX_READERS`]) against [`PathV3ReadersPriority`], with a writer in
//!   flight. Only the guard *outcomes* matter, so the eight burst sizes
//!   fall into three classes (`t = 1`, `t = 2`, `t ≥ 3`).
//! * **CSP symbolic capacity** — [`CspBuffer::with_symbolic_capacity`]
//!   draws the buffer capacity and uses the symbolic comparison
//!   `capacity > len` as its not-full guard, with a two-item
//!   producer/consumer pair driving the select loop.
//!
//! [`compare`] explores each scenario twice: *concretely* (one
//! revisit-mode exploration per domain value, schedules summed) and
//! *symbolically* (one revisit-mode exploration of the `choose_value`
//! version, where runs whose guard outcomes agree collapse into one
//! class representative). The symbolic run must reproduce exactly the
//! concrete behavior set — that is what "verified over all guard
//! valuations" means — while executing strictly fewer schedules.
//!
//! [`Ctx::choose_value`]: bloom_sim::Ctx::choose_value

use crate::buffer::BoundedBuffer;
use crate::csp::CspBuffer;
use crate::events::{READ, REMOVE, WRITE};
use crate::rw::{PathV3ReadersPriority, ReadersWriters};
use bloom_core::checks::{check_exclusion, check_priority_over};
use bloom_core::events::{extract, ProblemEvent};
use bloom_core::Phase;
use bloom_sim::{ExploreConfig, PruneMode, Sim, SimError, SimReport};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Inclusive burst-size / capacity domain shared by both scenarios.
pub const DOMAIN: (i64, i64) = (1, 8);

/// Most readers the Andler burst can spawn; guards are `t > i` for
/// `i < MAX_READERS`, so bursts of 3..=8 readers are indistinguishable.
pub const MAX_READERS: i64 = 3;

/// The Andler-burst scenario. `burst: None` draws the size with
/// [`Ctx::choose_value`]; `Some(t)` hard-codes it (the concrete
/// baseline). Both spawn identical process structures for equal inputs,
/// so their traces are directly comparable.
///
/// [`Ctx::choose_value`]: bloom_sim::Ctx::choose_value
pub fn andler_burst_sim(burst: Option<i64>) -> Sim {
    let mut sim = Sim::new();
    let db = Arc::new(PathV3ReadersPriority::new());
    let writer_db = Arc::clone(&db);
    sim.spawn("writer", move |ctx| {
        writer_db.write(ctx, &mut || ctx.yield_now());
    });
    sim.spawn("load", move |ctx| {
        let t = burst.map_or_else(|| Err(ctx.choose_value("burst", DOMAIN.0..=DOMAIN.1)), Ok);
        for i in 0..MAX_READERS {
            let wanted = match &t {
                Ok(t) => *t > i,
                Err(sym) => sym.gt(i),
            };
            if wanted {
                let db = Arc::clone(&db);
                ctx.spawn(&format!("reader{i}"), move |ctx| {
                    db.read(ctx, &mut || {});
                });
            }
        }
    });
    sim
}

/// The CSP capacity scenario: a producer deposits `1` then `2`, a
/// consumer removes twice. `cap: None` uses the symbolic-capacity server
/// guard; `Some(c)` is the concrete baseline.
pub fn csp_capacity_sim(cap: Option<i64>) -> Sim {
    let mut sim = Sim::new();
    let buf = Arc::new(match cap {
        Some(c) => CspBuffer::new(c as usize),
        None => CspBuffer::with_symbolic_capacity(DOMAIN.0, DOMAIN.1),
    });
    let producer = Arc::clone(&buf);
    sim.spawn("producer", move |ctx| {
        producer.deposit(ctx, 1);
        producer.deposit(ctx, 2);
    });
    sim.spawn("consumer", move |ctx| {
        buf.remove(ctx);
        buf.remove(ctx);
    });
    sim
}

/// Canonical behavior key of one run: the problem-event sequence (data
/// choices are scheduler bookkeeping, not problem events, so symbolic
/// and concrete runs key identically), or the error kind on failure.
pub fn behavior(result: &Result<SimReport, SimError>) -> String {
    match result {
        Ok(report) => extract(&report.trace)
            .iter()
            .map(|e| format!("{:?}/{:?}:{}{:?}", e.pid, e.phase, e.op, e.params))
            .collect::<Vec<_>>()
            .join(";"),
        Err(err) => format!("error:{:?}", err.kind),
    }
}

/// One scenario's symbolic-vs-concrete scorecard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicComparison {
    /// Domain size of the data choice.
    pub domain: usize,
    /// Schedules summed over one revisit-mode exploration per value.
    pub concrete_schedules: usize,
    /// Schedules of the single symbolic revisit-mode exploration.
    pub symbolic_schedules: usize,
    /// Sibling-value branch requests issued by the symbolic runs.
    pub sym_requests: u64,
    /// Requests granted (fresh constraint classes actually explored).
    pub sym_grants: u64,
    /// Symbolic behavior set equals the union over all concrete values.
    pub behaviors_match: bool,
    /// Every symbolic schedule passed the scenario's correctness check.
    pub clean: bool,
}

/// Explores `make(Some(v))` for every `v` in [`DOMAIN`] and `make(None)`
/// symbolically, both under [`PruneMode::Revisit`] on the work-sharing
/// engine, and scores the comparison. `check` judges one successful
/// run's events (deadlocks always count as dirty).
pub fn compare(
    budget: usize,
    make: fn(Option<i64>) -> Sim,
    check: impl Fn(&[ProblemEvent]) -> bool + Sync,
) -> SymbolicComparison {
    let (lo, hi) = DOMAIN;
    let config = ExploreConfig::new(budget)
        .mode(PruneMode::Revisit)
        .threads(4);
    let mut concrete = BTreeSet::new();
    let mut concrete_schedules = 0;
    for v in lo..=hi {
        let (journal, stats) = config
            .clone()
            .run(|| make(Some(v)), |_, result| behavior(result));
        assert!(stats.complete, "budget too small for concrete value {v}");
        stats.assert_consistent();
        concrete_schedules += stats.schedules;
        concrete.extend(journal.into_iter().map(|r| r.value));
    }
    let (journal, stats) = config.run(
        || make(None),
        |_, result| {
            let ok = match result {
                Ok(report) => check(&extract(&report.trace)),
                Err(_) => false,
            };
            (behavior(result), ok)
        },
    );
    assert!(stats.complete, "budget too small for the symbolic tree");
    stats.assert_consistent();
    let symbolic: BTreeSet<&String> = journal.iter().map(|r| &r.value.0).collect();
    SymbolicComparison {
        domain: (hi - lo + 1) as usize,
        concrete_schedules,
        symbolic_schedules: stats.schedules,
        sym_requests: stats.sym_requests,
        sym_grants: stats.sym_grants,
        behaviors_match: symbolic == concrete.iter().collect(),
        clean: journal.iter().all(|r| r.value.1),
    }
}

/// Scores the Andler burst: readers priority and exclusion must hold in
/// every guard valuation.
pub fn compare_andler(budget: usize) -> SymbolicComparison {
    compare(budget, andler_burst_sim, |events| {
        check_priority_over(events, READ, WRITE).is_empty()
            && check_exclusion(events, &[(READ, WRITE), (WRITE, WRITE)]).is_empty()
    })
}

/// Scores the CSP capacity scenario: whatever the capacity, the consumer
/// must observe the deposits in FIFO order.
pub fn compare_csp(budget: usize) -> SymbolicComparison {
    compare(budget, csp_capacity_sim, |events| {
        let removed: Vec<i64> = events
            .iter()
            .filter(|e| e.op == REMOVE && e.phase == Phase::Exit)
            .map(|e| e.params[0])
            .collect();
        removed == [1, 2]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: usize = 500_000;

    fn assert_scorecard(c: SymbolicComparison, label: &str) {
        assert!(c.behaviors_match, "{label}: symbolic ≠ concrete behaviors");
        assert!(c.clean, "{label}: a symbolic schedule failed its check");
        assert!(c.sym_grants > 0, "{label}: no value classes were explored");
        assert!(
            c.symbolic_schedules < c.concrete_schedules,
            "{label}: symbolic ({}) must beat concrete enumeration ({})",
            c.symbolic_schedules,
            c.concrete_schedules,
        );
    }

    /// The Andler burst collapses eight burst sizes into the three guard
    /// classes and still reproduces every concrete behavior.
    #[test]
    fn andler_burst_verified_over_all_guard_valuations() {
        assert_scorecard(compare_andler(BUDGET), "andler");
    }

    /// The symbolic-capacity buffer covers all eight capacities from a
    /// handful of class representatives.
    #[test]
    fn csp_capacity_verified_over_all_guard_valuations() {
        assert_scorecard(compare_csp(BUDGET), "csp");
    }
}
