//! CSP-style solutions: the paper's §6 future work, evaluated with the
//! same methodology.
//!
//! In the message-passing model a shared resource becomes a **server
//! process**: clients rendezvous with it over typed channels, its guarded
//! selective receive (Dijkstra's guarded commands / CSP alternatives)
//! encodes the exclusion and priority constraints over server-local
//! state, and a reply grants access. Observations that fall out of
//! running Bloom's method on it:
//!
//! * *request type* is carried by **which channel** a client sends on —
//!   as direct as a path alphabet;
//! * *request time* is the channel's FIFO sender queue — as direct as a
//!   monitor condition queue, and (unlike monitors) type and time do not
//!   conflict because guards, not queue membership, express conditions;
//! * *local state* and *history* live in the server's variables and
//!   control flow (the one-slot server is literally
//!   `loop { deposit?; remove? }` — the same shape as the path
//!   expression);
//! * *synchronization state* is partly mechanism-kept
//!   ([`Channel::pending_senders`], the CSP analogue of Hoare's `queue`)
//!   and partly hand-kept counts — Indirect, like monitors;
//! * the §2 modularity requirement is met automatically on the
//!   encapsulation side (clients contain zero synchronization code), but
//!   resource code and synchronization code interleave *inside* the
//!   server, so the separability requirement fails — the same verdict as
//!   path expressions, for a different reason.
//!
//! Servers are daemons: they loop forever and are cancelled when all
//! clients finish.

use crate::events::{DEPOSIT, READ, REMOVE, SEEK, USE, WAKE, WRITE};
use crate::rw::{ReadersWriters, RwVariant};
use crate::{buffer::BoundedBuffer, fcfs::FcfsResource, oneslot::OneSlot};
use bloom_channel::{select, Channel};
use bloom_core::events::{enter_for, exit, exit_for, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, ProblemId, SolutionDesc};
use bloom_sim::{Ctx, Pid};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A request message: who asks, an optional payload, and where to reply.
struct Msg {
    pid: Pid,
    value: i64,
    reply: Option<Arc<Channel<i64>>>,
}

impl Msg {
    fn start(ctx: &Ctx, value: i64) -> (Msg, Arc<Channel<i64>>) {
        let reply = Arc::new(Channel::new("reply"));
        (
            Msg {
                pid: ctx.pid(),
                value,
                reply: Some(Arc::clone(&reply)),
            },
            reply,
        )
    }

    fn end(ctx: &Ctx) -> Msg {
        Msg {
            pid: ctx.pid(),
            value: 0,
            reply: None,
        }
    }
}

/// Spawns the server daemon exactly once, on first use.
struct ServerOnce {
    started: Mutex<bool>,
}

impl ServerOnce {
    fn new() -> Self {
        ServerOnce {
            started: Mutex::new(false),
        }
    }

    fn ensure(&self, ctx: &Ctx, name: &str, server: impl FnOnce(&Ctx) + Send + 'static) {
        let mut started = self.started.lock();
        if !*started {
            *started = true;
            ctx.spawn_daemon(name, server);
        }
    }
}

// ---------------------------------------------------------------------------
// One-slot buffer
// ---------------------------------------------------------------------------

/// CSP one-slot buffer: the server's control flow *is* the alternation —
/// `loop { deposit? ; remove? }`, the message-passing twin of
/// `path deposit ; remove end`.
pub struct CspOneSlot {
    deposit: Arc<Channel<Msg>>,
    remove: Arc<Channel<Msg>>,
    once: ServerOnce,
}

impl CspOneSlot {
    /// Creates the buffer (the server starts on first use).
    pub fn new() -> Self {
        CspOneSlot {
            deposit: Arc::new(Channel::new("oneslot.deposit")),
            remove: Arc::new(Channel::new("oneslot.remove")),
            once: ServerOnce::new(),
        }
    }

    fn ensure_server(&self, ctx: &Ctx) {
        let (dep, rem) = (Arc::clone(&self.deposit), Arc::clone(&self.remove));
        self.once.ensure(ctx, "oneslot-server", move |ctx| loop {
            // deposit? — history is the server's program counter.
            let m = dep.recv(ctx);
            let value = m.value;
            enter_for(ctx, m.pid, DEPOSIT, &[value]);
            exit_for(ctx, m.pid, DEPOSIT, &[value]);
            m.reply.expect("start carries reply").send(ctx, 0);
            // remove?
            let m = rem.recv(ctx);
            enter_for(ctx, m.pid, REMOVE, &[value]);
            exit_for(ctx, m.pid, REMOVE, &[value]);
            m.reply.expect("start carries reply").send(ctx, value);
        });
    }
}

impl Default for CspOneSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl OneSlot for CspOneSlot {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        self.ensure_server(ctx);
        request(ctx, DEPOSIT, &[value]);
        let (msg, reply) = Msg::start(ctx, value);
        self.deposit.send(ctx, msg);
        reply.recv(ctx);
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        self.ensure_server(ctx);
        request(ctx, REMOVE, &[]);
        let (msg, reply) = Msg::start(ctx, 0);
        self.remove.send(ctx, msg);
        reply.recv(ctx)
    }

    fn desc(&self) -> SolutionDesc {
        SolutionDesc {
            problem: ProblemId::OneSlotBuffer,
            mechanism: MechanismId::Csp,
            units: vec![ImplUnit::new(
                "alternation",
                "server:loop{deposit?;remove?}",
            )],
            info_handling: [(InfoType::History, Directness::Direct)]
                .into_iter()
                .collect::<BTreeMap<_, _>>(),
            workarounds: vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded buffer
// ---------------------------------------------------------------------------

/// CSP bounded buffer: Dijkstra's guarded-command textbook example —
/// `do q.len < cap; deposit? … [] q.len > 0; remove? … od`.
pub struct CspBuffer {
    deposit: Arc<Channel<Msg>>,
    remove: Arc<Channel<Msg>>,
    once: ServerOnce,
    capacity: usize,
    /// `Some((lo, hi))` makes the server draw its capacity from
    /// `lo..=hi` via [`Ctx::choose_value`] instead of using the fixed
    /// `capacity` field — the E5 symbolic-guard configuration.
    symbolic: Option<(i64, i64)>,
}

impl CspBuffer {
    /// Creates the buffer (the server starts on first use).
    pub fn new(capacity: usize) -> Self {
        CspBuffer {
            deposit: Arc::new(Channel::new("buffer.deposit")),
            remove: Arc::new(Channel::new("buffer.remove")),
            once: ServerOnce::new(),
            capacity,
            symbolic: None,
        }
    }

    /// Symbolic-capacity buffer: the server draws `capacity` from
    /// `lo..=hi` at startup with [`Ctx::choose_value`] and its not-full
    /// guard becomes the symbolic comparison `capacity > len`. Under
    /// revisit-mode exploration all capacities inducing the same guard
    /// outcomes collapse into one schedule class, so the whole domain is
    /// verified at the cost of a few representatives (experiment E5).
    /// [`BoundedBuffer::capacity`] reports `hi`, the loosest bound.
    pub fn with_symbolic_capacity(lo: i64, hi: i64) -> Self {
        assert!(0 < lo && lo <= hi, "need a nonempty positive domain");
        CspBuffer {
            deposit: Arc::new(Channel::new("buffer.deposit")),
            remove: Arc::new(Channel::new("buffer.remove")),
            once: ServerOnce::new(),
            capacity: hi as usize,
            symbolic: Some((lo, hi)),
        }
    }

    fn ensure_server(&self, ctx: &Ctx) {
        let (dep, rem) = (Arc::clone(&self.deposit), Arc::clone(&self.remove));
        let capacity = self.capacity;
        let symbolic = self.symbolic;
        self.once.ensure(ctx, "buffer-server", move |ctx| {
            let cap = symbolic.map(|(lo, hi)| ctx.choose_value("capacity", lo..=hi));
            let mut items: VecDeque<i64> = VecDeque::new();
            loop {
                let not_full = match &cap {
                    Some(c) => c.gt(items.len() as i64),
                    None => items.len() < capacity,
                };
                let (which, m) = select(ctx, &mut [(&*dep, not_full), (&*rem, !items.is_empty())]);
                match which {
                    0 => {
                        enter_for(ctx, m.pid, DEPOSIT, &[m.value]);
                        items.push_back(m.value);
                        exit_for(ctx, m.pid, DEPOSIT, &[m.value]);
                        m.reply.expect("reply").send(ctx, 0);
                    }
                    _ => {
                        let value = items.pop_front().expect("guard ensured an item");
                        enter_for(ctx, m.pid, REMOVE, &[value]);
                        exit_for(ctx, m.pid, REMOVE, &[value]);
                        m.reply.expect("reply").send(ctx, value);
                    }
                }
            }
        });
    }
}

impl BoundedBuffer for CspBuffer {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        self.ensure_server(ctx);
        request(ctx, DEPOSIT, &[value]);
        let (msg, reply) = Msg::start(ctx, value);
        self.deposit.send(ctx, msg);
        reply.recv(ctx);
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        self.ensure_server(ctx);
        request(ctx, REMOVE, &[]);
        let (msg, reply) = Msg::start(ctx, 0);
        self.remove.send(ctx, msg);
        reply.recv(ctx)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn desc(&self) -> SolutionDesc {
        SolutionDesc {
            problem: ProblemId::BoundedBuffer,
            mechanism: MechanismId::Csp,
            units: vec![
                ImplUnit::new("buffer-mutex", "server:sequential-process"),
                ImplUnit::new("not-full", "guard:len<capacity"),
                ImplUnit::new("not-empty", "guard:nonempty"),
            ],
            info_handling: [(InfoType::LocalState, Directness::Direct)]
                .into_iter()
                .collect::<BTreeMap<_, _>>(),
            workarounds: vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// FCFS resource
// ---------------------------------------------------------------------------

/// CSP FCFS resource: the channel's sender queue is the arrival order;
/// the server grants strictly in `recv` order.
pub struct CspFcfs {
    acquire: Arc<Channel<Msg>>,
    release: Arc<Channel<Msg>>,
    once: ServerOnce,
}

impl CspFcfs {
    /// Creates the resource (the server starts on first use).
    pub fn new() -> Self {
        CspFcfs {
            acquire: Arc::new(Channel::new("fcfs.acquire")),
            release: Arc::new(Channel::new("fcfs.release")),
            once: ServerOnce::new(),
        }
    }

    fn ensure_server(&self, ctx: &Ctx) {
        let (acq, rel) = (Arc::clone(&self.acquire), Arc::clone(&self.release));
        self.once.ensure(ctx, "fcfs-server", move |ctx| loop {
            let m = acq.recv(ctx);
            enter_for(ctx, m.pid, USE, &[]);
            m.reply.expect("reply").send(ctx, 0);
            rel.recv(ctx); // only the holder sends release
        });
    }
}

impl Default for CspFcfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FcfsResource for CspFcfs {
    fn with_resource(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        self.ensure_server(ctx);
        request(ctx, USE, &[]);
        let (msg, reply) = Msg::start(ctx, 0);
        self.acquire.send(ctx, msg);
        reply.recv(ctx);
        body();
        exit(ctx, USE, &[]);
        self.release.send(ctx, Msg::end(ctx));
    }

    fn desc(&self) -> SolutionDesc {
        SolutionDesc {
            problem: ProblemId::FcfsResource,
            mechanism: MechanismId::Csp,
            units: vec![
                ImplUnit::new("resource-mutex", "server:grant-then-await-release"),
                ImplUnit::new("fcfs-order", "channel:fifo-sender-queue"),
            ],
            info_handling: [
                (InfoType::RequestTime, Directness::Direct),
                (InfoType::SyncState, Directness::Indirect),
            ]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
            workarounds: vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Disk scheduler
// ---------------------------------------------------------------------------

/// CSP disk scheduler: seeks accumulate in the server's pending sets while
/// the arm is busy; each completion message triggers the SCAN choice. The
/// track rides in the message, but the *ordering* by it is a hand-kept
/// data structure — request parameters are Indirect in this model, just
/// as for monitors' hand-kept counts.
pub struct CspDisk {
    seeks: Arc<Channel<Msg>>,
    done: Arc<Channel<Msg>>,
    once: ServerOnce,
}

impl CspDisk {
    /// Creates the scheduler (the server starts on first use).
    pub fn new() -> Self {
        CspDisk {
            seeks: Arc::new(Channel::new("disk.seeks")),
            done: Arc::new(Channel::new("disk.done")),
            once: ServerOnce::new(),
        }
    }

    fn ensure_server(&self, ctx: &Ctx) {
        let (seeks, done) = (Arc::clone(&self.seeks), Arc::clone(&self.done));
        self.once.ensure(ctx, "disk-server", move |ctx| {
            use std::collections::BTreeMap;
            let mut busy = false;
            let mut head = 0i64;
            let mut up = true;
            let mut seq = 0u64;
            // (track, seq) -> request; `down` keys are negated.
            let mut pending_up: BTreeMap<(i64, u64), Msg> = BTreeMap::new();
            let mut pending_down: BTreeMap<(i64, u64), Msg> = BTreeMap::new();
            loop {
                let (which, m) = select(ctx, &mut [(&*seeks, true), (&*done, true)]);
                let stash =
                    |m: Msg,
                     up: bool,
                     head: i64,
                     seq: &mut u64,
                     pending_up: &mut BTreeMap<(i64, u64), Msg>,
                     pending_down: &mut BTreeMap<(i64, u64), Msg>| {
                        let track = m.value;
                        let joins_up = if up { track >= head } else { track > head };
                        *seq += 1;
                        if joins_up {
                            pending_up.insert((track, *seq), m);
                        } else {
                            pending_down.insert((-track, *seq), m);
                        }
                    };
                if which == 0 {
                    stash(m, up, head, &mut seq, &mut pending_up, &mut pending_down);
                } else {
                    busy = false;
                }
                // Drain every request already waiting on the channel so the
                // SCAN choice below sees the whole burst, matching what the
                // shared-memory solutions see in their pending structures.
                while seeks.pending_senders() > 0 {
                    let m = seeks.recv(ctx);
                    stash(m, up, head, &mut seq, &mut pending_up, &mut pending_down);
                }
                if !busy {
                    let next = if up {
                        pending_up
                            .pop_first()
                            .map(|((t, _), m)| (t, m))
                            .or_else(|| pending_down.pop_first().map(|((nt, _), m)| (-nt, m)))
                    } else {
                        pending_down
                            .pop_first()
                            .map(|((nt, _), m)| (-nt, m))
                            .or_else(|| pending_up.pop_first().map(|((t, _), m)| (t, m)))
                    };
                    if let Some((track, m)) = next {
                        busy = true;
                        if track > head {
                            up = true;
                        } else if track < head {
                            up = false;
                        }
                        head = track;
                        enter_for(ctx, m.pid, SEEK, &[track]);
                        m.reply.expect("reply").send(ctx, 0);
                    }
                }
            }
        });
    }
}

impl Default for CspDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::disk::DiskScheduler for CspDisk {
    fn seek(&self, ctx: &Ctx, track: i64, body: &mut dyn FnMut()) {
        self.ensure_server(ctx);
        request(ctx, SEEK, &[track]);
        let (msg, reply) = Msg::start(ctx, track);
        self.seeks.send(ctx, msg);
        reply.recv(ctx);
        body();
        exit(ctx, SEEK, &[track]);
        self.done.send(ctx, Msg::end(ctx));
    }

    fn desc(&self) -> SolutionDesc {
        SolutionDesc {
            problem: ProblemId::DiskScheduler,
            mechanism: MechanismId::Csp,
            units: vec![
                ImplUnit::new("head-mutex", "server:busy-flag"),
                ImplUnit::new("elevator-order", "server:pending-sets+scan-choice"),
            ],
            info_handling: [
                (InfoType::RequestParameters, Directness::Indirect),
                (InfoType::SyncState, Directness::Indirect),
            ]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
            workarounds: vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Alarm clock
// ---------------------------------------------------------------------------

/// CSP alarm clock: the logical clock and the deadline map are server
/// state; a tick message drains everything due.
pub struct CspAlarm {
    wake_reqs: Arc<Channel<Msg>>,
    ticks: Arc<Channel<Msg>>,
    once: ServerOnce,
}

impl CspAlarm {
    /// Creates the clock (the server starts on first use).
    pub fn new() -> Self {
        CspAlarm {
            wake_reqs: Arc::new(Channel::new("alarm.wake")),
            ticks: Arc::new(Channel::new("alarm.tick")),
            once: ServerOnce::new(),
        }
    }

    fn ensure_server(&self, ctx: &Ctx) {
        let (wake_reqs, ticks) = (Arc::clone(&self.wake_reqs), Arc::clone(&self.ticks));
        self.once.ensure(ctx, "alarm-server", move |ctx| {
            use std::collections::BTreeMap;
            let mut now = 0i64;
            let mut seq = 0u64;
            let mut pending: BTreeMap<(i64, u64), Msg> = BTreeMap::new();
            loop {
                let (which, m) = select(ctx, &mut [(&*wake_reqs, true), (&*ticks, true)]);
                if which == 0 {
                    let deadline = now + m.value;
                    if now >= deadline {
                        enter_for(ctx, m.pid, WAKE, &[deadline, now]);
                        m.reply.expect("reply").send(ctx, 0);
                    } else {
                        seq += 1;
                        pending.insert((deadline, seq), m);
                    }
                } else {
                    now += 1;
                    while let Some(entry) = pending.first_entry() {
                        if entry.key().0 > now {
                            break;
                        }
                        let (key, m) = entry.remove_entry();
                        enter_for(ctx, m.pid, WAKE, &[key.0, now]);
                        m.reply.expect("reply").send(ctx, 0);
                    }
                }
            }
        });
    }
}

impl Default for CspAlarm {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::alarm::AlarmClock for CspAlarm {
    fn wake_me(&self, ctx: &Ctx, delay: i64) {
        self.ensure_server(ctx);
        request(ctx, WAKE, &[delay]);
        let (msg, reply) = Msg::start(ctx, delay);
        self.wake_reqs.send(ctx, msg);
        reply.recv(ctx);
        exit(ctx, WAKE, &[]);
    }

    fn tick(&self, ctx: &Ctx) {
        self.ensure_server(ctx);
        self.ticks.send(ctx, Msg::end(ctx));
    }

    fn desc(&self) -> SolutionDesc {
        SolutionDesc {
            problem: ProblemId::AlarmClock,
            mechanism: MechanismId::Csp,
            units: vec![
                ImplUnit::new("alarm-wakeup", "server:deadline-map+tick-drain"),
                ImplUnit::new("earliest-first", "server:btreemap-order"),
            ],
            info_handling: [
                (InfoType::RequestParameters, Directness::Indirect),
                (InfoType::LocalState, Directness::Direct),
            ]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
            workarounds: vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Readers/writers
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
}

/// A typed request for the FCFS variant's single channel.
struct TypedMsg {
    kind: Kind,
    msg: Msg,
}

/// CSP readers/writers server, all three variants.
pub struct CspRw {
    variant: RwVariant,
    start_read: Arc<Channel<Msg>>,
    start_write: Arc<Channel<Msg>>,
    end_read: Arc<Channel<Msg>>,
    end_write: Arc<Channel<Msg>>,
    /// FCFS only: one channel carries both request types in arrival order.
    requests: Arc<Channel<TypedMsg>>,
    once: ServerOnce,
}

impl CspRw {
    /// Creates the database (the server starts on first use).
    pub fn new(variant: RwVariant) -> Self {
        CspRw {
            variant,
            start_read: Arc::new(Channel::new("rw.start_read")),
            start_write: Arc::new(Channel::new("rw.start_write")),
            end_read: Arc::new(Channel::new("rw.end_read")),
            end_write: Arc::new(Channel::new("rw.end_write")),
            requests: Arc::new(Channel::new("rw.requests")),
            once: ServerOnce::new(),
        }
    }

    fn ensure_server(&self, ctx: &Ctx) {
        let variant = self.variant;
        let sr = Arc::clone(&self.start_read);
        let sw = Arc::clone(&self.start_write);
        let er = Arc::clone(&self.end_read);
        let ew = Arc::clone(&self.end_write);
        let rq = Arc::clone(&self.requests);
        match variant {
            RwVariant::Fcfs => {
                self.once.ensure(ctx, "rw-server", move |ctx| {
                    Self::fcfs_server(ctx, &rq, &er, &ew);
                });
            }
            _ => {
                self.once.ensure(ctx, "rw-server", move |ctx| {
                    Self::priority_server(ctx, variant, &sr, &sw, &er, &ew);
                });
            }
        }
    }

    /// Readers-/writers-priority server: the priority constraint is one
    /// guard conjunct interrogating the opposing channel's sender queue.
    fn priority_server(
        ctx: &Ctx,
        variant: RwVariant,
        sr: &Channel<Msg>,
        sw: &Channel<Msg>,
        er: &Channel<Msg>,
        ew: &Channel<Msg>,
    ) {
        let mut readers = 0u32;
        let mut writing = false;
        loop {
            let read_guard = !writing
                && match variant {
                    // New readers defer to queued writers.
                    RwVariant::WritersPriority => sw.pending_senders() == 0,
                    _ => true,
                };
            let write_guard = !writing
                && readers == 0
                && match variant {
                    // Writers defer to queued readers.
                    RwVariant::ReadersPriority => sr.pending_senders() == 0,
                    _ => true,
                };
            let (which, m) = select(
                ctx,
                &mut [(sr, read_guard), (sw, write_guard), (er, true), (ew, true)],
            );
            match which {
                0 => {
                    readers += 1;
                    enter_for(ctx, m.pid, READ, &[]);
                    m.reply.expect("reply").send(ctx, 0);
                }
                1 => {
                    writing = true;
                    enter_for(ctx, m.pid, WRITE, &[]);
                    m.reply.expect("reply").send(ctx, 0);
                }
                2 => readers -= 1,
                _ => writing = false,
            }
        }
    }

    /// FCFS server: one channel holds both request types; an incompatible
    /// head is *deferred*, and the request channel's guard closes until it
    /// is granted — FIFO head-blocking, exactly like the serializer's
    /// shared queue.
    fn fcfs_server(ctx: &Ctx, rq: &Channel<TypedMsg>, er: &Channel<Msg>, ew: &Channel<Msg>) {
        let mut readers = 0u32;
        let mut writing = false;
        let mut deferred: Option<TypedMsg> = None;
        let grant = |ctx: &Ctx, t: TypedMsg, readers: &mut u32, writing: &mut bool| {
            match t.kind {
                Kind::Read => {
                    *readers += 1;
                    enter_for(ctx, t.msg.pid, READ, &[]);
                }
                Kind::Write => {
                    *writing = true;
                    enter_for(ctx, t.msg.pid, WRITE, &[]);
                }
            }
            t.msg.reply.expect("reply").send(ctx, 0);
        };
        // End messages arrive on Msg channels, requests on the TypedMsg
        // channel, so one select cannot watch both. Consequence: a request
        // arriving while the server is parked waiting for an end is served
        // only after that end arrives — a latency (never a safety or
        // FIFO-order) cost, since something is in flight whenever the
        // server waits there.
        loop {
            // Try to grant a deferred head first.
            if let Some(t) = deferred.take() {
                let ok = match t.kind {
                    Kind::Read => !writing,
                    Kind::Write => !writing && readers == 0,
                };
                if ok {
                    grant(ctx, t, &mut readers, &mut writing);
                    continue;
                }
                deferred = Some(t);
            }
            if deferred.is_none() && rq.pending_senders() > 0 {
                let t = rq.recv(ctx);
                let ok = match t.kind {
                    Kind::Read => !writing,
                    Kind::Write => !writing && readers == 0,
                };
                if ok {
                    grant(ctx, t, &mut readers, &mut writing);
                } else {
                    deferred = Some(t);
                }
                continue;
            }
            if deferred.is_some() || rq.pending_senders() == 0 {
                // Wait for an end message, or (when nothing is deferred) a
                // fresh request. Requests and ends have different message
                // types, so when nothing is deferred we wait on ends only
                // if an end is possible; otherwise poll the request
                // channel via its own rendezvous.
                if deferred.is_none() && readers == 0 && !writing {
                    // Nothing in flight: the next event must be a request,
                    // and an idle database admits either kind.
                    let t = rq.recv(ctx);
                    grant(ctx, t, &mut readers, &mut writing);
                    continue;
                }
                let (which, _) = select(ctx, &mut [(er, true), (ew, true)]);
                match which {
                    0 => readers -= 1,
                    _ => writing = false,
                }
            }
        }
    }
}

impl ReadersWriters for CspRw {
    fn read(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        self.ensure_server(ctx);
        request(ctx, READ, &[]);
        let (msg, reply) = Msg::start(ctx, 0);
        match self.variant {
            RwVariant::Fcfs => self.requests.send(
                ctx,
                TypedMsg {
                    kind: Kind::Read,
                    msg,
                },
            ),
            _ => self.start_read.send(ctx, msg),
        }
        reply.recv(ctx);
        body();
        exit(ctx, READ, &[]);
        self.end_read.send(ctx, Msg::end(ctx));
    }

    fn write(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        self.ensure_server(ctx);
        request(ctx, WRITE, &[]);
        let (msg, reply) = Msg::start(ctx, 0);
        match self.variant {
            RwVariant::Fcfs => self.requests.send(
                ctx,
                TypedMsg {
                    kind: Kind::Write,
                    msg,
                },
            ),
            _ => self.start_write.send(ctx, msg),
        }
        reply.recv(ctx);
        body();
        exit(ctx, WRITE, &[]);
        self.end_write.send(ctx, Msg::end(ctx));
    }

    fn desc(&self) -> SolutionDesc {
        let (priority_component, time_info): (&str, Option<(InfoType, Directness)>) =
            match self.variant {
                RwVariant::ReadersPriority => ("guard:writer-defers-to-read-channel-queue", None),
                RwVariant::WritersPriority => ("guard:reader-defers-to-write-channel-queue", None),
                RwVariant::Fcfs => (
                    "channel:single-request-queue+deferred-head",
                    Some((InfoType::RequestTime, Directness::Direct)),
                ),
            };
        let mut info: BTreeMap<InfoType, Directness> = [
            (InfoType::RequestType, Directness::Direct),
            (InfoType::SyncState, Directness::Indirect),
        ]
        .into_iter()
        .collect();
        if let Some((k, v)) = time_info {
            info.insert(k, v);
        }
        SolutionDesc {
            problem: self.variant.problem(),
            mechanism: MechanismId::Csp,
            units: vec![
                // Identical across all three variants.
                ImplUnit::new("rw-exclusion", "guard:read-needs-no-writer"),
                ImplUnit::new("rw-exclusion", "guard:write-needs-empty-db"),
                ImplUnit::new(self.variant.priority_constraint(), priority_component),
            ],
            info_handling: info,
            workarounds: vec![],
        }
    }
}
