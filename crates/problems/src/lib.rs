#![forbid(unsafe_code)]
#![deny(deprecated)]
//! The canonical synchronization problem suite, solved under every
//! mechanism.
//!
//! This crate instantiates the paper's footnote-2 test set — the problems
//! chosen so that together they exercise every information category of the
//! §3 taxonomy — and solves each one with semaphores, monitors,
//! serializers and path expressions — 33 solutions in all, including the
//! Andler predicate (path-v3) readers-priority fix:
//!
//! | module      | problem                | info types exercised            |
//! |-------------|------------------------|---------------------------------|
//! | [`buffer`]  | bounded buffer         | local state                     |
//! | [`fcfs`]    | FCFS resource          | request time                    |
//! | [`rw`]      | readers/writers ×3     | request type, sync state, time  |
//! | [`disk`]    | disk-head scheduler    | request parameters              |
//! | [`alarm`]   | alarm clock            | request parameters, local state |
//! | [`oneslot`] | one-slot buffer        | history                         |
//!
//! Every solution:
//!
//! * emits the uniform `req`/`enter`/`exit` event vocabulary of
//!   [`bloom_core::events`], so one checker per constraint validates all
//!   mechanisms;
//! * carries a [`bloom_core::SolutionDesc`] attributing its implementation
//!   components to catalog constraints (feeding the §4.2 independence
//!   analysis) and rating how it accessed each information type (feeding
//!   the §4.1 expressiveness analysis, cross-checked against the paper's
//!   claims in [`registry`]).
//!
//! The paper's Figures 1 and 2 are reproduced verbatim in [`rw`], complete
//! with Figure 1's footnote-3 priority anomaly.

pub mod alarm;
pub mod buffer;
pub mod csp;
pub mod disk;
pub mod drivers;
pub mod events;
pub mod extra;
pub mod faults;
pub mod fcfs;
pub mod liveness;
pub mod oneslot;
pub mod r3;
pub mod registry;
pub mod rw;
pub mod symbolic;
pub mod workload;

pub use alarm::AlarmClock;
pub use buffer::BoundedBuffer;
pub use disk::DiskScheduler;
pub use fcfs::FcfsResource;
pub use oneslot::OneSlot;
pub use rw::{ReadersWriters, RwVariant};
