//! The one-slot buffer (paper footnote 2: *history information*).
//!
//! A single-cell buffer: `deposit` and `remove` must strictly alternate,
//! starting with `deposit`. The constraint is about *history* — whether an
//! unconsumed deposit has completed — which path expressions encode
//! effortlessly in path position (`path deposit ; remove end`, the example
//! from Campbell & Habermann the paper cites), while the other mechanisms
//! keep an explicit full/empty flag.

use crate::events;
use bloom_core::events::{enter, exit, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, ProblemId, SolutionDesc};
use bloom_monitor::{Cond, Monitor};
use bloom_pathexpr::PathResource;
use bloom_semaphore::Semaphore;
use bloom_serializer::Serializer;
use bloom_sim::Ctx;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A one-slot buffer holding `i64` values.
pub trait OneSlot: Send + Sync {
    /// Stores `value`; blocks while the slot is full.
    fn deposit(&self, ctx: &Ctx, value: i64);
    /// Takes the stored value; blocks while the slot is empty.
    fn remove(&self, ctx: &Ctx) -> i64;
    /// Evaluation metadata for this solution.
    fn desc(&self) -> SolutionDesc;
}

fn base_desc(
    mechanism: MechanismId,
    units: Vec<ImplUnit>,
    info: &[(InfoType, Directness)],
) -> SolutionDesc {
    SolutionDesc {
        problem: ProblemId::OneSlotBuffer,
        mechanism,
        units,
        info_handling: info.iter().copied().collect::<BTreeMap<_, _>>(),
        workarounds: Vec::new(),
    }
}

/// Semaphore solution: two binary semaphores encode the alternation
/// (`empty` initially open, `full` initially closed); history is carried
/// indirectly by which semaphore is open.
pub struct SemaphoreOneSlot {
    empty: Semaphore,
    full: Semaphore,
    slot: Mutex<Option<i64>>,
}

impl SemaphoreOneSlot {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SemaphoreOneSlot {
            empty: Semaphore::strong("oneslot.empty", 1),
            full: Semaphore::strong("oneslot.full", 0),
            slot: Mutex::new(None),
        }
    }
}

impl Default for SemaphoreOneSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl OneSlot for SemaphoreOneSlot {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        request(ctx, events::DEPOSIT, &[value]);
        self.empty.p(ctx);
        enter(ctx, events::DEPOSIT, &[value]);
        *self.slot.lock() = Some(value);
        exit(ctx, events::DEPOSIT, &[value]);
        self.full.v(ctx);
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        request(ctx, events::REMOVE, &[]);
        self.full.p(ctx);
        let value = self
            .slot
            .lock()
            .take()
            .expect("full semaphore implies a value");
        enter(ctx, events::REMOVE, &[value]);
        exit(ctx, events::REMOVE, &[value]);
        self.empty.v(ctx);
        value
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Semaphore,
            vec![ImplUnit::new("alternation", "sem:empty/full-pair")],
            &[(InfoType::History, Directness::Indirect)],
        )
    }
}

/// Monitor solution: a `full` flag (history kept as explicit local state)
/// with two conditions.
pub struct MonitorOneSlot {
    monitor: Monitor<Option<i64>>,
    not_full: Cond,
    not_empty: Cond,
}

impl MonitorOneSlot {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        MonitorOneSlot {
            monitor: Monitor::hoare("oneslot", None),
            not_full: Cond::new("oneslot.not_full"),
            not_empty: Cond::new("oneslot.not_empty"),
        }
    }
}

impl Default for MonitorOneSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl OneSlot for MonitorOneSlot {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        request(ctx, events::DEPOSIT, &[value]);
        self.monitor.enter(ctx, |mc| {
            while mc.state(|s| s.is_some()) {
                mc.wait(&self.not_full);
            }
            enter(ctx, events::DEPOSIT, &[value]);
            mc.state(|s| *s = Some(value));
            exit(ctx, events::DEPOSIT, &[value]);
            mc.signal(&self.not_empty);
        });
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        request(ctx, events::REMOVE, &[]);
        self.monitor.enter(ctx, |mc| {
            while mc.state(|s| s.is_none()) {
                mc.wait(&self.not_empty);
            }
            let value = mc.state(|s| s.take()).expect("checked above");
            enter(ctx, events::REMOVE, &[value]);
            exit(ctx, events::REMOVE, &[value]);
            mc.signal(&self.not_full);
            value
        })
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Monitor,
            vec![ImplUnit::new("alternation", "monitor:full-flag+two-conds")],
            &[(InfoType::History, Directness::Direct)],
        )
    }
}

/// Serializer solution: one queue per operation type (a queue is strictly
/// FIFO, so depositors and removers cannot share one — a remover at the
/// head would block the depositor it is waiting for); guards interrogate
/// the slot state.
pub struct SerializerOneSlot {
    ser: Arc<Serializer<Option<i64>>>,
    depositors: bloom_serializer::QueueId,
    removers: bloom_serializer::QueueId,
}

impl SerializerOneSlot {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        let ser = Arc::new(Serializer::new("oneslot", None));
        let depositors = ser.queue("depositors");
        let removers = ser.queue("removers");
        SerializerOneSlot {
            ser,
            depositors,
            removers,
        }
    }
}

impl Default for SerializerOneSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl OneSlot for SerializerOneSlot {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        request(ctx, events::DEPOSIT, &[value]);
        self.ser.enter(ctx, |sc| {
            sc.enqueue(self.depositors, |v| v.state().is_none());
            enter(ctx, events::DEPOSIT, &[value]);
            sc.state(|s| *s = Some(value));
            exit(ctx, events::DEPOSIT, &[value]);
        });
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        request(ctx, events::REMOVE, &[]);
        self.ser.enter(ctx, |sc| {
            sc.enqueue(self.removers, |v| v.state().is_some());
            let value = sc.state(|s| s.take()).expect("guard ensured a value");
            enter(ctx, events::REMOVE, &[value]);
            exit(ctx, events::REMOVE, &[value]);
            value
        })
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Serializer,
            vec![ImplUnit::new(
                "alternation",
                "serializer:guards-on-slot-state",
            )],
            &[(InfoType::History, Directness::Direct)],
        )
    }
}

/// Path-expression solution — the paper's showcase for history
/// information: `path deposit ; remove end` *is* the whole
/// synchronization; no flag, no signal, no guard.
pub struct PathOneSlot {
    paths: PathResource,
    slot: Mutex<Option<i64>>,
}

impl PathOneSlot {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        PathOneSlot {
            paths: PathResource::parse("oneslot", "path deposit ; remove end")
                .expect("static path source"),
            slot: Mutex::new(None),
        }
    }
}

impl Default for PathOneSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl OneSlot for PathOneSlot {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        request(ctx, events::DEPOSIT, &[value]);
        self.paths.perform(ctx, "deposit", || {
            enter(ctx, events::DEPOSIT, &[value]);
            *self.slot.lock() = Some(value);
            exit(ctx, events::DEPOSIT, &[value]);
        });
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        request(ctx, events::REMOVE, &[]);
        self.paths.perform(ctx, "remove", || {
            let value = self
                .slot
                .lock()
                .take()
                .expect("path guarantees a deposit happened");
            enter(ctx, events::REMOVE, &[value]);
            exit(ctx, events::REMOVE, &[value]);
            value
        })
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::PathV1,
            vec![ImplUnit::new("alternation", "path:deposit;remove")],
            &[(InfoType::History, Directness::Direct)],
        )
    }
}

/// Fresh instance of the solution for `mechanism`.
///
/// # Panics
///
/// Panics for [`MechanismId::PathV2`] (the v1 solution is already ideal;
/// there is no distinct v2 solution for this problem).
pub fn make(mechanism: MechanismId) -> Arc<dyn OneSlot> {
    match mechanism {
        MechanismId::Semaphore => Arc::new(SemaphoreOneSlot::new()),
        MechanismId::Monitor => Arc::new(MonitorOneSlot::new()),
        MechanismId::Serializer => Arc::new(SerializerOneSlot::new()),
        MechanismId::PathV1 => Arc::new(PathOneSlot::new()),
        MechanismId::Csp => Arc::new(crate::csp::CspOneSlot::new()),
        MechanismId::PathV2 | MechanismId::PathV3 => {
            panic!("one-slot buffer has no distinct path-v2/v3 solution")
        }
    }
}

/// The mechanisms with a one-slot solution.
pub const MECHANISMS: [MechanismId; 5] = [
    MechanismId::Semaphore,
    MechanismId::Monitor,
    MechanismId::Serializer,
    MechanismId::PathV1,
    MechanismId::Csp,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::oneslot_scenario;
    use bloom_core::checks::{check_all_served, check_alternation, check_exclusion, expect_clean};
    use bloom_core::events::extract;

    #[test]
    fn all_mechanisms_satisfy_the_one_slot_constraints() {
        for mech in MECHANISMS {
            for seed in [None, Some(1), Some(2), Some(3)] {
                let report = oneslot_scenario(mech, 6, seed);
                let events = extract(&report.trace);
                expect_clean(
                    &check_alternation(&events, events::DEPOSIT, events::REMOVE),
                    &format!("{mech} alternation (seed {seed:?})"),
                );
                expect_clean(
                    &check_exclusion(
                        &events,
                        &[
                            (events::DEPOSIT, events::DEPOSIT),
                            (events::REMOVE, events::REMOVE),
                            (events::DEPOSIT, events::REMOVE),
                        ],
                    ),
                    &format!("{mech} exclusion (seed {seed:?})"),
                );
                expect_clean(&check_all_served(&events), &format!("{mech} liveness"));
            }
        }
    }

    #[test]
    fn values_flow_in_order() {
        for mech in MECHANISMS {
            let report = oneslot_scenario(mech, 5, None);
            let events = extract(&report.trace);
            let removed: Vec<i64> = events
                .iter()
                .filter(|e| e.op == events::REMOVE && e.phase == bloom_core::Phase::Exit)
                .map(|e| e.params[0])
                .collect();
            assert_eq!(
                removed,
                vec![0, 1, 2, 3, 4],
                "{mech}: alternation preserves order"
            );
        }
    }

    #[test]
    fn descriptions_attribute_the_alternation_constraint() {
        for mech in MECHANISMS {
            let desc = make(mech).desc();
            assert_eq!(desc.problem, ProblemId::OneSlotBuffer);
            assert_eq!(desc.mechanism, mech);
            assert!(desc.constraints().contains("alternation"), "{mech}");
        }
    }

    #[test]
    fn path_solution_rates_history_direct_semaphore_indirect() {
        let path = make(MechanismId::PathV1).desc();
        let sem = make(MechanismId::Semaphore).desc();
        assert_eq!(path.info_handling[&InfoType::History], Directness::Direct);
        assert_eq!(sem.info_handling[&InfoType::History], Directness::Indirect);
    }
}
