//! Deterministic workload-generator DSL: the scenario axis of R3.
//!
//! The R1/R2 scenarios are hand-posed miniatures — two readers, one
//! writer, a fixed retry schedule. Asking whether the paper's failure
//! stories *still manifest at scale* needs populations: hundreds of
//! clients with realistic arrival patterns and think times. This module
//! is the generator for those populations, with one hard rule inherited
//! from the simulator: **all randomness is drawn up front**, at
//! build time, from the workspace's seeded [`SplitMix64`] stream. A
//! [`WorkloadSpec`] expands into plain [`ClientPlan`]s — start offsets,
//! role labels, think-time schedules — and the spawned process bodies
//! contain no generator at all. A run is therefore a pure function of
//! `(spec, schedule)`: the sampler's decision vector pins it down
//! completely, which is what keeps every sampled counterexample
//! replayable.
//!
//! No wall clock, no floating point, no external RNG crate: arrival and
//! think-time distributions (bursty, Poisson-like, bounded Zipf) are
//! integer-only approximations, which is all the R3 experiments need —
//! the point is heavy-tailed *shape* under a fixed seed, not statistical
//! pedigree.

use bloom_sim::SplitMix64;

/// When the population's clients start, in virtual-time ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Everybody is runnable from tick zero — maximal instantaneous
    /// contention (the R2 miniatures, scaled up).
    Together,
    /// Client `i` starts at `i * gap`: a steady trickle.
    Staggered {
        /// Ticks between consecutive arrivals.
        gap: u64,
    },
    /// Bursts of `size` simultaneous arrivals, `gap` ticks apart — the
    /// pattern that keeps the *concurrently active* set near `size` even
    /// for thousand-client populations (sleeping clients are not
    /// runnable, so they cost no schedule decisions until they arrive).
    Bursts {
        /// Clients per burst.
        size: usize,
        /// Ticks between burst starts.
        gap: u64,
    },
    /// Poisson-like arrivals: i.i.d. geometric inter-arrival gaps with
    /// the given mean (integer Bernoulli trials, capped at `cap` so a
    /// tail draw cannot stall the run).
    Poisson {
        /// Mean inter-arrival gap in ticks (`0` degenerates to
        /// [`Arrival::Together`]).
        mean_gap: u64,
        /// Hard upper bound on one inter-arrival gap.
        cap: u64,
    },
}

/// Per-operation think time between a client's operations, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Think {
    /// No pause: back-to-back operations.
    None,
    /// The same pause after every operation.
    Fixed(u64),
    /// Uniform draw in `lo..=hi`.
    Uniform {
        /// Smallest think time.
        lo: u64,
        /// Largest think time.
        hi: u64,
    },
    /// Bounded Zipf draw in `1..=max` with integer `exponent`: mostly
    /// small values, a heavy tail of stragglers — the classic
    /// heavy-tailed load shape. Weights are exact integer ratios
    /// `(max/k)^exponent`; no floats anywhere.
    Zipf {
        /// Largest think time (tail bound).
        max: u64,
        /// Skew; 1 is the canonical Zipf, larger is steeper.
        exponent: u32,
    },
}

/// One client role in a mix: a label plus a selection weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Role {
    /// Role label (`"reader"`, `"writer"`, …).
    pub name: &'static str,
    /// Relative weight among all roles.
    pub weight: u32,
}

/// A deterministic population description. Build one with the fluent
/// methods, then [`WorkloadSpec::plans`] expands it.
///
/// ```
/// use bloom_problems::workload::{Arrival, Think, WorkloadSpec};
///
/// let plans = WorkloadSpec::new(42)
///     .clients(100)
///     .ops(3)
///     .arrival(Arrival::Bursts { size: 8, gap: 400 })
///     .think(Think::Zipf { max: 16, exponent: 1 })
///     .plans();
/// assert_eq!(plans.len(), 100);
/// assert_eq!(plans, WorkloadSpec::new(42)
///     .clients(100)
///     .ops(3)
///     .arrival(Arrival::Bursts { size: 8, gap: 400 })
///     .think(Think::Zipf { max: 16, exponent: 1 })
///     .plans(), "same seed, same population");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    seed: u64,
    clients: usize,
    ops: usize,
    arrival: Arrival,
    think: Think,
    roles: Vec<Role>,
}

/// One expanded client: everything its process body needs, pre-drawn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientPlan {
    /// Client index in `0..clients`.
    pub index: usize,
    /// Role label assigned from the spec's mix (`"client"` if no mix).
    pub role: &'static str,
    /// Start offset in ticks: the client sleeps this long before its
    /// first operation (zero means immediately runnable).
    pub start: u64,
    /// Think time after each operation; `thinks.len()` is the client's
    /// operation count.
    pub thinks: Vec<u64>,
}

impl WorkloadSpec {
    /// A one-client, one-operation spec under the given seed; grow it
    /// with the builder methods.
    pub fn new(seed: u64) -> Self {
        WorkloadSpec {
            seed,
            clients: 1,
            ops: 1,
            arrival: Arrival::Together,
            think: Think::None,
            roles: Vec::new(),
        }
    }

    /// Sets the population size.
    pub fn clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Sets the operations each client performs.
    pub fn ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the arrival pattern.
    pub fn arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the think-time distribution.
    pub fn think(mut self, think: Think) -> Self {
        self.think = think;
        self
    }

    /// Sets the client mix: each client draws a role with probability
    /// proportional to its weight (seeded; zero-weight roles are never
    /// drawn).
    pub fn mix(mut self, roles: &[Role]) -> Self {
        self.roles = roles.to_vec();
        self
    }

    /// The spec's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The population size.
    pub fn client_count(&self) -> usize {
        self.clients
    }

    /// The arrival pattern.
    pub fn arrival_pattern(&self) -> Arrival {
        self.arrival
    }

    /// The per-client operation count.
    pub fn ops_count(&self) -> usize {
        self.ops
    }

    /// Expands the spec into per-client plans. Deterministic: the same
    /// spec always yields the same plans, byte for byte.
    pub fn plans(&self) -> Vec<ClientPlan> {
        let mut rng = SplitMix64::new(self.seed);
        let starts = self.starts(&mut rng);
        let total_weight: u64 = self.roles.iter().map(|r| u64::from(r.weight)).sum();
        let zipf = match self.think {
            Think::Zipf { max, exponent } => Some(ZipfTable::new(max, exponent)),
            _ => None,
        };
        (0..self.clients)
            .map(|index| {
                let role = if total_weight == 0 {
                    "client"
                } else {
                    let mut draw = rng.next_below(total_weight);
                    self.roles
                        .iter()
                        .find(|r| {
                            let w = u64::from(r.weight);
                            if draw < w {
                                true
                            } else {
                                draw -= w;
                                false
                            }
                        })
                        .map(|r| r.name)
                        .unwrap_or("client")
                };
                let thinks = (0..self.ops)
                    .map(|_| match self.think {
                        Think::None => 0,
                        Think::Fixed(t) => t,
                        Think::Uniform { lo, hi } => lo + rng.next_below(hi.saturating_sub(lo) + 1),
                        Think::Zipf { .. } => zipf.as_ref().expect("built above").draw(&mut rng),
                    })
                    .collect();
                ClientPlan {
                    index,
                    role,
                    start: starts[index],
                    thinks,
                }
            })
            .collect()
    }

    fn starts(&self, rng: &mut SplitMix64) -> Vec<u64> {
        match self.arrival {
            Arrival::Together => vec![0; self.clients],
            Arrival::Staggered { gap } => (0..self.clients).map(|i| i as u64 * gap).collect(),
            Arrival::Bursts { size, gap } => (0..self.clients)
                .map(|i| (i / size.max(1)) as u64 * gap)
                .collect(),
            Arrival::Poisson { mean_gap, cap } => {
                let mut at = 0u64;
                (0..self.clients)
                    .map(|_| {
                        at += geometric(rng, mean_gap, cap);
                        at
                    })
                    .collect()
            }
        }
    }
}

/// Geometric draw with mean ≈ `mean_gap`, capped at `cap`: count Bernoulli
/// trials with success probability `1/mean_gap` (integer-only).
fn geometric(rng: &mut SplitMix64, mean_gap: u64, cap: u64) -> u64 {
    if mean_gap == 0 {
        return 0;
    }
    let mut gap = 0;
    while gap < cap && rng.next_below(mean_gap) != 0 {
        gap += 1;
    }
    gap
}

/// Cumulative integer weight table for the bounded Zipf distribution:
/// weight of value `k` is `(max/k)^exponent` in exact integer arithmetic
/// (`u128` so `max = 10^4, exponent = 3` stays comfortably in range).
struct ZipfTable {
    cumulative: Vec<u128>,
}

impl ZipfTable {
    fn new(max: u64, exponent: u32) -> Self {
        let max = max.max(1);
        let top = u128::from(max).pow(exponent);
        let mut acc = 0u128;
        let cumulative = (1..=max)
            .map(|k| {
                acc += top / u128::from(k).pow(exponent);
                acc
            })
            .collect();
        ZipfTable { cumulative }
    }

    fn draw(&self, rng: &mut SplitMix64) -> u64 {
        let total = *self.cumulative.last().expect("max >= 1");
        // Two 64-bit draws make a uniform u128 below the (possibly
        // > 2^64) total weight; modulo bias is negligible at these sizes
        // and, more importantly, deterministic.
        let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        let draw = wide % total;
        (self.cumulative.partition_point(|&c| c <= draw) as u64) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plans() {
        let spec = WorkloadSpec::new(7)
            .clients(200)
            .ops(5)
            .arrival(Arrival::Poisson {
                mean_gap: 3,
                cap: 20,
            })
            .think(Think::Zipf {
                max: 32,
                exponent: 2,
            })
            .mix(&[
                Role {
                    name: "reader",
                    weight: 9,
                },
                Role {
                    name: "writer",
                    weight: 1,
                },
            ]);
        assert_eq!(spec.plans(), spec.plans());
        assert_ne!(
            spec.plans(),
            WorkloadSpec::new(8)
                .clients(200)
                .ops(5)
                .arrival(Arrival::Poisson {
                    mean_gap: 3,
                    cap: 20,
                })
                .think(Think::Zipf {
                    max: 32,
                    exponent: 2,
                })
                .mix(&[
                    Role {
                        name: "reader",
                        weight: 9,
                    },
                    Role {
                        name: "writer",
                        weight: 1,
                    },
                ])
                .plans()
        );
    }

    #[test]
    fn arrival_shapes() {
        let together = WorkloadSpec::new(1).clients(4).plans();
        assert!(together.iter().all(|p| p.start == 0));

        let staggered = WorkloadSpec::new(1)
            .clients(4)
            .arrival(Arrival::Staggered { gap: 10 })
            .plans();
        assert_eq!(
            staggered.iter().map(|p| p.start).collect::<Vec<_>>(),
            vec![0, 10, 20, 30]
        );

        let bursts = WorkloadSpec::new(1)
            .clients(5)
            .arrival(Arrival::Bursts { size: 2, gap: 100 })
            .plans();
        assert_eq!(
            bursts.iter().map(|p| p.start).collect::<Vec<_>>(),
            vec![0, 0, 100, 100, 200]
        );

        let poisson = WorkloadSpec::new(1)
            .clients(50)
            .arrival(Arrival::Poisson {
                mean_gap: 4,
                cap: 12,
            })
            .plans();
        let starts: Vec<u64> = poisson.iter().map(|p| p.start).collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        assert!(starts.windows(2).all(|w| w[1] - w[0] <= 12), "gaps capped");
        assert!(starts.last().copied().unwrap() > 0, "not all at zero");
    }

    #[test]
    fn zipf_is_bounded_and_heavy_tailed() {
        let plans = WorkloadSpec::new(3)
            .clients(1)
            .ops(2000)
            .think(Think::Zipf {
                max: 16,
                exponent: 1,
            })
            .plans();
        let thinks = &plans[0].thinks;
        assert!(thinks.iter().all(|&t| (1..=16).contains(&t)));
        let ones = thinks.iter().filter(|&&t| t == 1).count();
        let sixteens = thinks.iter().filter(|&&t| t == 16).count();
        assert!(
            ones > 8 * sixteens.max(1),
            "value 1 must dominate the tail ({ones} vs {sixteens})"
        );
        assert!(sixteens > 0, "the tail must still occur in 2000 draws");
    }

    #[test]
    fn uniform_think_stays_in_range() {
        let plans = WorkloadSpec::new(5)
            .clients(1)
            .ops(500)
            .think(Think::Uniform { lo: 3, hi: 9 })
            .plans();
        assert!(plans[0].thinks.iter().all(|&t| (3..=9).contains(&t)));
        assert!(plans[0].thinks.contains(&3));
        assert!(plans[0].thinks.contains(&9));
    }

    #[test]
    fn mix_respects_weights_roughly() {
        let plans = WorkloadSpec::new(9)
            .clients(1000)
            .mix(&[
                Role {
                    name: "reader",
                    weight: 9,
                },
                Role {
                    name: "writer",
                    weight: 1,
                },
            ])
            .plans();
        let writers = plans.iter().filter(|p| p.role == "writer").count();
        assert!(
            (40..=250).contains(&writers),
            "~10% of 1000 clients should be writers, got {writers}"
        );
    }

    #[test]
    fn scale_to_a_thousand_clients_is_cheap() {
        let plans = WorkloadSpec::new(11)
            .clients(1000)
            .ops(3)
            .arrival(Arrival::Bursts { size: 16, gap: 500 })
            .think(Think::Fixed(2))
            .plans();
        assert_eq!(plans.len(), 1000);
        assert_eq!(plans.last().unwrap().start, (999 / 16) as u64 * 500);
    }
}
