//! The solution registry: every (problem, mechanism) solution's metadata,
//! and the *derived* expressive-power profile computed from it.
//!
//! The paper encodes its findings as prose; we encode them twice — once as
//! [`bloom_core::paper_profiles`] (the claimed ratings) and once as the
//! metadata attached to real, tested solutions here. The workspace test
//! `derived_profiles_match_paper` closes the loop: the ratings *derived*
//! from the implementations must agree with the paper's claims wherever a
//! solution exercises the information type.

use crate::rw::RwVariant;
use crate::{alarm, buffer, disk, fcfs, oneslot, rw};
use bloom_core::{Directness, InfoType, MechanismId, SolutionDesc};
use std::collections::BTreeMap;

/// Metadata for every solution in the suite.
pub fn all_descs() -> Vec<SolutionDesc> {
    let mut out = Vec::new();
    for mech in oneslot::MECHANISMS {
        out.push(oneslot::make(mech).desc());
    }
    for mech in buffer::MECHANISMS {
        out.push(buffer::make(mech, 3).desc());
    }
    for mech in fcfs::MECHANISMS {
        out.push(fcfs::make(mech).desc());
    }
    for mech in rw::MECHANISMS {
        for variant in RwVariant::ALL {
            out.push(rw::make(mech, variant).desc());
        }
    }
    // The Andler (v3) readers-priority solution: the footnote-3 fix.
    out.push(rw::make(MechanismId::PathV3, RwVariant::ReadersPriority).desc());
    for mech in disk::MECHANISMS {
        out.push(disk::make(mech).desc());
    }
    for mech in alarm::MECHANISMS {
        out.push(alarm::make(mech).desc());
    }
    out
}

/// Metadata for one mechanism's solutions.
pub fn descs_for(mechanism: MechanismId) -> Vec<SolutionDesc> {
    all_descs()
        .into_iter()
        .filter(|d| d.mechanism == mechanism)
        .collect()
}

/// The expressive-power ratings *derived* from the implementations: for
/// each information type, the worst directness any of the mechanism's
/// solutions needed (a mechanism has "a straightforward means" only if
/// every canonical problem finds one). Info types no solution exercises
/// are absent.
pub fn derived_ratings(mechanism: MechanismId) -> BTreeMap<InfoType, Directness> {
    let mut ratings: BTreeMap<InfoType, Directness> = BTreeMap::new();
    for desc in descs_for(mechanism) {
        for (&info, &rating) in &desc.info_handling {
            let slot = ratings.entry(info).or_insert(rating);
            if rating > *slot {
                *slot = rating;
            }
        }
    }
    ratings
}

/// Solution descriptions for one problem across mechanisms.
pub fn descs_for_problem(problem: bloom_core::ProblemId) -> Vec<SolutionDesc> {
    all_descs()
        .into_iter()
        .filter(|d| d.problem == problem)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_core::{paper_profile, ProblemId};

    #[test]
    fn registry_covers_every_catalog_problem() {
        let descs = all_descs();
        for problem in ProblemId::ALL {
            let n = descs.iter().filter(|d| d.problem == problem).count();
            assert!(n >= 4, "{problem}: only {n} solutions registered");
        }
        // 5+5+5 + 15 + 1 (path-v3) + 5 + 5 solutions in total.
        assert_eq!(descs.len(), 41);
    }

    #[test]
    fn derived_profiles_match_paper() {
        for mech in MechanismId::ALL {
            let paper = paper_profile(mech);
            for (info, derived) in derived_ratings(mech) {
                assert_eq!(
                    derived,
                    paper.rating(info),
                    "{mech}/{info}: implementation-derived rating disagrees with the \
                     paper-profile claim"
                );
            }
        }
    }

    #[test]
    fn every_mechanism_exercises_most_info_types() {
        for mech in [
            MechanismId::Semaphore,
            MechanismId::Monitor,
            MechanismId::Serializer,
        ] {
            let ratings = derived_ratings(mech);
            assert!(
                ratings.len() >= 5,
                "{mech}: only {} info types exercised by its solutions",
                ratings.len()
            );
        }
    }

    #[test]
    fn workarounds_concentrate_where_the_paper_says() {
        // Paths: every parameter-dependent problem needed a workaround.
        let path_descs = descs_for(MechanismId::PathV1);
        for problem in [ProblemId::DiskScheduler, ProblemId::AlarmClock] {
            let d = path_descs
                .iter()
                .find(|d| d.problem == problem)
                .expect("registered");
            assert!(
                !d.workarounds.is_empty(),
                "{problem}: path solution must record workaround"
            );
        }
        // Monitors and serializers: no workarounds for those same problems.
        for mech in [MechanismId::Monitor, MechanismId::Serializer] {
            for problem in [ProblemId::DiskScheduler, ProblemId::AlarmClock] {
                let d = descs_for(mech)
                    .into_iter()
                    .find(|d| d.problem == problem)
                    .expect("registered");
                assert!(
                    d.workarounds.is_empty(),
                    "{mech}/{problem}: unexpected workaround"
                );
            }
        }
    }
}
