//! Liveness scenarios: the workloads behind experiment R2.
//!
//! [`crate::faults`] evaluates what the mechanisms survive when a process
//! *dies*; this module evaluates what they do about requests that *never
//! complete* — the paper's §5 failure stories (weak-semaphore starvation,
//! the nested-monitor deadlock, requests stranded behind a slow holder)
//! made measurable by the liveness layer of `bloom-sim`: timed waits with
//! withdrawal, deadlock recovery by victim abort, and the kernel
//! starvation watchdog. Each (mechanism × scenario) cell is classified by
//! [`bloom_core::liveness::classify_liveness`] into
//! *recovers*/*degrades*/*wedges*, mirroring R1's
//! contained/poisoned/wedged:
//!
//! * [`LiveScenario::TimeoutWithdrawal`] — a holder keeps the resource
//!   busy past a contender's patience; the contender withdraws its timed
//!   request cleanly and retries (the semaphore arm uses
//!   [`bloom_sim::retry_with_backoff`], the bounded form of the loop the
//!   other arms hand-roll). Every mechanism's timed wait must rescan its
//!   queues on withdrawal exactly as on release, so this cell ends
//!   *recovers-after-retry* across the board — served, but only after a
//!   visible withdrawal — the uniform-deadline-layer guarantee.
//! * [`LiveScenario::DeadlockRecovery`] — a genuine cyclic deadlock with
//!   [`bloom_sim::SimConfig::deadlock_recovery`] enabled. What the abort
//!   costs depends on what the victim held: a philosopher blocked on a
//!   fork rolls back via `ReleaseOnUnwind` and the table *recovers*; a
//!   nested-monitor victim holds outer possession, so the abort poisons
//!   it and the cell *degrades*; a serializer victim is a crowd member
//!   whose membership cleanup re-opens the guards (*recovers*); a
//!   path-expression victim is mid-operation and poisons its resource
//!   (*degrades*); a CSP send cycle has no rollback that restores
//!   progress — every peer is consumed (*degrades*).
//! * [`LiveScenario::StarvationWatchdog`] — the paper's weak-semaphore
//!   writer starvation, run against every mechanism under the kernel
//!   watchdog: two readers cycle the resource while a writer retries
//!   with exponentially growing patience. The weak semaphore lets the
//!   readers barge forever — the watchdog flags the writer's wait
//!   episode and the writer finally gives up (*degrades*); FIFO grant
//!   disciplines (strong semaphore, monitor queues, serializer queues,
//!   path-expression block lists, channel offer tickets) serve the
//!   writer within its first patience window (*recovers*).
//!
//! Scenarios emit the standard `req:`/`enter:`/`exit:` vocabulary at
//! decision points, plus the liveness-specific markers the classifier
//! reads: `timed-out:*`/`retry:*` for clean withdrawals (no verdict
//! impact) and `gave-up:*` for a permanent abandon (degrades).

use crate::events::{EAT, READ, USE, WRITE};
use bloom_channel::Channel;
use bloom_core::events::{enter, exit, request};
use bloom_core::liveness::{classify_liveness, LivenessOutcome};
use bloom_monitor::{Cond, Monitor, MonitorCtx};
use bloom_pathexpr::PathResource;
use bloom_semaphore::{Semaphore, TryResult};
use bloom_serializer::Serializer;
use bloom_sim::{retry_with_backoff, Backoff, Ctx, Sim, SimError, SimReport};
use std::fmt;
use std::sync::Arc;

/// How long the holder keeps the resource busy in the timeout-withdrawal
/// scenario (virtual-time ticks). Contender patience below this forces a
/// withdrawal; at or above it, the timed wait succeeds directly.
pub const HOLD: u64 = 6;

/// Default contender patience for [`LiveScenario::TimeoutWithdrawal`]:
/// short enough that the first timed wait expires and the withdrawal
/// path is exercised.
pub const PATIENCE: u64 = 2;

/// The writer's retry schedule in the starvation scenario: exponentially
/// growing patience, with no yield or sleep between attempts so the
/// kernel sees one continuous wait episode (re-parking on the same queue
/// keeps it open — exactly the barging pattern the watchdog measures).
pub const ATTEMPTS: [u64; 4] = [4, 8, 16, 32];

/// Watchdog bound for the starvation scenario: far above any wait a FIFO
/// discipline produces here (a handful of ticks), far below the writer's
/// total retry budget (60 ticks).
pub const STARVATION_BOUND: u64 = 24;

/// Rounds each reader cycles the resource in the starvation scenario —
/// enough virtual time for the writer to exhaust every retry first.
const ROUNDS: usize = 25;

/// The mechanism flavor under liveness test — one row of the R2 matrix.
///
/// Unlike R1 (where the semaphore rows split on crash protection), the
/// semaphore rows here split on *fairness*: weak vs. strong grant
/// discipline is exactly the §5.1 distinction the starvation scenario
/// measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LiveMechanism {
    /// Weak semaphore: `V` makes the permit visible to bargers.
    SemaphoreWeak,
    /// Strong (FIFO hand-off) semaphore.
    SemaphoreStrong,
    /// Hoare monitor (signal-and-wait hand-off).
    MonitorHoare,
    /// Mesa monitor (signal-and-continue, re-check loops).
    MonitorMesa,
    /// Serializer with guarded queues and crowds.
    Serializer,
    /// Path-expression resource.
    PathExpr,
    /// CSP server process owning the resource; clients rendezvous.
    Csp,
}

impl LiveMechanism {
    /// All matrix rows, in display order.
    pub const ALL: [LiveMechanism; 7] = [
        LiveMechanism::SemaphoreWeak,
        LiveMechanism::SemaphoreStrong,
        LiveMechanism::MonitorHoare,
        LiveMechanism::MonitorMesa,
        LiveMechanism::Serializer,
        LiveMechanism::PathExpr,
        LiveMechanism::Csp,
    ];

    /// Display label for the matrix.
    pub fn label(self) -> &'static str {
        match self {
            LiveMechanism::SemaphoreWeak => "semaphore (weak)",
            LiveMechanism::SemaphoreStrong => "semaphore (strong)",
            LiveMechanism::MonitorHoare => "monitor (Hoare)",
            LiveMechanism::MonitorMesa => "monitor (Mesa)",
            LiveMechanism::Serializer => "serializer",
            LiveMechanism::PathExpr => "path expression",
            LiveMechanism::Csp => "CSP server",
        }
    }
}

impl fmt::Display for LiveMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The liveness fault under test — one column of the R2 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LiveScenario {
    /// A slow holder outlasts a contender's patience; the contender
    /// withdraws and retries.
    TimeoutWithdrawal,
    /// A cyclic deadlock shed by kernel victim abort.
    DeadlockRecovery,
    /// Readers barge while a writer retries under the watchdog.
    StarvationWatchdog,
}

impl LiveScenario {
    /// All matrix columns, in display order.
    pub const ALL: [LiveScenario; 3] = [
        LiveScenario::TimeoutWithdrawal,
        LiveScenario::DeadlockRecovery,
        LiveScenario::StarvationWatchdog,
    ];

    /// Display label for the matrix.
    pub fn label(self) -> &'static str {
        match self {
            LiveScenario::TimeoutWithdrawal => "timeout withdrawal",
            LiveScenario::DeadlockRecovery => "deadlock recovery",
            LiveScenario::StarvationWatchdog => "starvation watchdog",
        }
    }
}

impl fmt::Display for LiveScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds the liveness scenario simulation (default parameters).
pub fn liveness_sim(mech: LiveMechanism, scenario: LiveScenario) -> Sim {
    match scenario {
        LiveScenario::TimeoutWithdrawal => timeout_withdrawal_sim(mech, PATIENCE),
        LiveScenario::DeadlockRecovery => deadlock_recovery_sim(mech),
        LiveScenario::StarvationWatchdog => starvation_sim(mech),
    }
}

/// Runs the liveness scenario under the default FIFO schedule.
pub fn liveness_scenario(
    mech: LiveMechanism,
    scenario: LiveScenario,
) -> Result<SimReport, SimError> {
    liveness_sim(mech, scenario).run()
}

/// Runs and classifies one R2 cell.
pub fn liveness_outcome(mech: LiveMechanism, scenario: LiveScenario) -> LivenessOutcome {
    classify_liveness(&liveness_scenario(mech, scenario))
}

/// One quantum of "work" inside the resource.
fn work(ctx: &Ctx) {
    ctx.yield_now();
}

fn semaphore_for(mech: LiveMechanism, name: &str, permits: u64) -> Semaphore {
    match mech {
        LiveMechanism::SemaphoreWeak => Semaphore::weak(name, permits),
        _ => Semaphore::strong(name, permits),
    }
}

fn monitor_for(mech: LiveMechanism, name: &str) -> Monitor<bool> {
    match mech {
        LiveMechanism::MonitorHoare => Monitor::hoare(name, false),
        _ => Monitor::mesa(name, false),
    }
}

// ---------------------------------------------------------------------------
// Timeout withdrawal
// ---------------------------------------------------------------------------

/// Monitor-style acquire: claim the `busy` flag, waiting on `free` with
/// the given patience per attempt (`None` waits untimed). Returns the
/// number of timeouts endured, or `None` if the retry budget (when
/// `give_up_after` is set) ran dry without acquiring.
fn monitor_acquire(
    mc: &MonitorCtx<'_, bool>,
    free: &Cond,
    patience: Option<u64>,
    give_up_after: Option<usize>,
) -> Option<usize> {
    let mut timeouts = 0usize;
    while mc.state(|b| *b) {
        match patience {
            None => mc.wait(free),
            Some(first) => {
                // Exponential patience after the first attempt keeps the
                // wait episode open (no yield between re-waits).
                let ticks = match give_up_after {
                    Some(_) => *ATTEMPTS
                        .get(timeouts)
                        .unwrap_or(ATTEMPTS.last().expect("const")),
                    None => first,
                };
                if !mc.wait_by(free, ticks) {
                    timeouts += 1;
                    if let Some(budget) = give_up_after {
                        if timeouts >= budget {
                            return None;
                        }
                    }
                }
            }
        }
    }
    mc.state(|b| *b = true);
    Some(timeouts)
}

fn monitor_release(mc: &MonitorCtx<'_, bool>, free: &Cond) {
    mc.state(|b| *b = false);
    mc.signal(free);
}

/// Builds the timeout-withdrawal scenario with an explicit contender
/// patience (the default-parameter form is
/// [`liveness_sim`]`(mech, TimeoutWithdrawal)`). A patience below
/// [`HOLD`] forces at least one withdrawal and the cell classifies
/// *recovers-after-retry*; at or above it the timed wait succeeds
/// outright and the cell classifies plain *recovers*.
pub fn timeout_withdrawal_sim(mech: LiveMechanism, patience: u64) -> Sim {
    let mut sim = Sim::new();
    match mech {
        LiveMechanism::SemaphoreWeak | LiveMechanism::SemaphoreStrong => {
            let sem = Arc::new(semaphore_for(mech, "res", 1));
            let s = Arc::clone(&sem);
            sim.spawn("holder", move |ctx| {
                request(ctx, USE, &[0]);
                s.with_permit(ctx, || {
                    enter(ctx, USE, &[0]);
                    ctx.sleep(HOLD);
                    exit(ctx, USE, &[0]);
                });
            });
            let s = Arc::clone(&sem);
            sim.spawn("contender", move |ctx| {
                ctx.yield_now();
                request(ctx, USE, &[1]);
                // The bounded retry loop the other arms hand-roll: 8
                // attempts of `patience` ticks each always outlasts the
                // holder's occupancy, so the loop acquires rather than
                // gives up — and the helper's `timed-out:`/`retry:` paper
                // trail is what makes the cell classify
                // *recovers-after-retry* instead of plain *recovers*.
                let outcome =
                    retry_with_backoff(ctx, "res", &Backoff::fixed(patience, 8), |c, p| {
                        s.p_by(c, p) == TryResult::Acquired
                    });
                if outcome.acquired() {
                    enter(ctx, USE, &[1]);
                    work(ctx);
                    exit(ctx, USE, &[1]);
                    s.v(ctx);
                }
            });
        }
        LiveMechanism::MonitorHoare | LiveMechanism::MonitorMesa => {
            let m = Arc::new(monitor_for(mech, "res"));
            let free = Arc::new(Cond::new("free"));
            m.register_cond(&free);
            let (m1, f1) = (Arc::clone(&m), Arc::clone(&free));
            sim.spawn("holder", move |ctx| {
                request(ctx, USE, &[0]);
                m1.enter(ctx, |mc| {
                    monitor_acquire(mc, &f1, None, None);
                });
                enter(ctx, USE, &[0]);
                ctx.sleep(HOLD);
                exit(ctx, USE, &[0]);
                m1.enter(ctx, |mc| monitor_release(mc, &f1));
            });
            let (m2, f2) = (Arc::clone(&m), Arc::clone(&free));
            sim.spawn("contender", move |ctx| {
                ctx.yield_now();
                request(ctx, USE, &[1]);
                m2.enter(ctx, |mc| {
                    let timeouts = monitor_acquire(mc, &f2, Some(patience), None)
                        .expect("untimed budget never gives up");
                    for _ in 0..timeouts {
                        ctx.emit("timed-out:res", &[]);
                    }
                });
                enter(ctx, USE, &[1]);
                work(ctx);
                exit(ctx, USE, &[1]);
                m2.enter(ctx, |mc| monitor_release(mc, &f2));
            });
        }
        LiveMechanism::Serializer => {
            let s = Arc::new(Serializer::new("res", false));
            let q = s.queue("waiters");
            let s1 = Arc::clone(&s);
            sim.spawn("holder", move |ctx| {
                request(ctx, USE, &[0]);
                s1.enter(ctx, |sc| {
                    sc.enqueue(q, |g| !*g.state());
                    sc.state(|b| *b = true);
                });
                enter(ctx, USE, &[0]);
                ctx.sleep(HOLD);
                exit(ctx, USE, &[0]);
                s1.enter(ctx, |sc| sc.state(|b| *b = false));
            });
            let s2 = Arc::clone(&s);
            sim.spawn("contender", move |ctx| {
                ctx.yield_now();
                request(ctx, USE, &[1]);
                s2.enter(ctx, |sc| {
                    while !sc.enqueue_by(q, patience, |g| !*g.state()) {
                        ctx.emit("timed-out:res", &[]);
                    }
                    sc.state(|b| *b = true);
                });
                enter(ctx, USE, &[1]);
                work(ctx);
                exit(ctx, USE, &[1]);
                s2.enter(ctx, |sc| sc.state(|b| *b = false));
            });
        }
        LiveMechanism::PathExpr => {
            let r = Arc::new(PathResource::parse("res", "path use end").expect("static path"));
            let r1 = Arc::clone(&r);
            sim.spawn("holder", move |ctx| {
                request(ctx, USE, &[0]);
                r1.perform(ctx, USE, || {
                    enter(ctx, USE, &[0]);
                    ctx.sleep(HOLD);
                    exit(ctx, USE, &[0]);
                });
            });
            let r2 = Arc::clone(&r);
            sim.spawn("contender", move |ctx| {
                ctx.yield_now();
                request(ctx, USE, &[1]);
                loop {
                    let served = r2.perform_by(ctx, USE, patience, || {
                        enter(ctx, USE, &[1]);
                        work(ctx);
                        exit(ctx, USE, &[1]);
                    });
                    if served.is_some() {
                        break;
                    }
                    ctx.emit("timed-out:res", &[]);
                }
            });
        }
        LiveMechanism::Csp => {
            let acq = Arc::new(Channel::<i64>::new("acquire"));
            let rel = Arc::new(Channel::<i64>::new("release"));
            let (a, r) = (Arc::clone(&acq), Arc::clone(&rel));
            sim.spawn_daemon("server", move |ctx| loop {
                a.recv(ctx);
                r.recv(ctx);
            });
            let (a, r) = (Arc::clone(&acq), Arc::clone(&rel));
            sim.spawn("holder", move |ctx| {
                request(ctx, USE, &[0]);
                a.send(ctx, 0);
                enter(ctx, USE, &[0]);
                ctx.sleep(HOLD);
                exit(ctx, USE, &[0]);
                r.send(ctx, 0);
            });
            let (a, r) = (Arc::clone(&acq), Arc::clone(&rel));
            sim.spawn("contender", move |ctx| {
                ctx.yield_now();
                request(ctx, USE, &[1]);
                while a.send_by(ctx, 1, patience).is_err() {
                    ctx.emit("timed-out:res", &[]);
                }
                enter(ctx, USE, &[1]);
                work(ctx);
                exit(ctx, USE, &[1]);
                r.send(ctx, 1);
            });
        }
    }
    sim
}

// ---------------------------------------------------------------------------
// Deadlock recovery
// ---------------------------------------------------------------------------

/// Builds the deadlock-recovery scenario: a genuine cyclic deadlock under
/// the mechanism's natural idiom, with kernel recovery enabled.
pub fn deadlock_recovery_sim(mech: LiveMechanism) -> Sim {
    let mut sim = Sim::new();
    sim.enable_deadlock_recovery();
    match mech {
        LiveMechanism::SemaphoreWeak | LiveMechanism::SemaphoreStrong => {
            // Three dining philosophers, all left-handed: the classic hold-
            // and-wait cycle. The aborted victim's outer `with_permit`
            // releases its fork during the unwind, and the table drains.
            let forks: Vec<Arc<Semaphore>> = (0..3)
                .map(|i| Arc::new(semaphore_for(mech, &format!("fork{i}"), 1)))
                .collect();
            for i in 0..3usize {
                let left = Arc::clone(&forks[i]);
                let right = Arc::clone(&forks[(i + 1) % 3]);
                sim.spawn(&format!("phil{i}"), move |ctx| {
                    request(ctx, EAT, &[i as i64]);
                    left.with_permit(ctx, || {
                        // Think while holding one fork — the window that
                        // lets the cycle close.
                        ctx.yield_now();
                        right.with_permit(ctx, || {
                            enter(ctx, EAT, &[i as i64]);
                            work(ctx);
                            exit(ctx, EAT, &[i as i64]);
                        });
                    });
                });
            }
        }
        LiveMechanism::MonitorHoare | LiveMechanism::MonitorMesa => {
            // Lister's nested-monitor problem: the nester waits on the
            // inner condition while *keeping outer possession*, so the
            // helper that would signal can never get in. Recovery aborts
            // the helper (parked at entry, clean), then the nester — whose
            // unwind poisons the outer monitor it still holds.
            let outer = Arc::new(match mech {
                LiveMechanism::MonitorHoare => Monitor::hoare("outer", ()),
                _ => Monitor::mesa("outer", ()),
            });
            let inner = Arc::new(monitor_for(mech, "inner"));
            let ready = Arc::new(Cond::new("ready"));
            inner.register_cond(&ready);
            let (o, i, c) = (Arc::clone(&outer), Arc::clone(&inner), Arc::clone(&ready));
            sim.spawn("nester", move |ctx| {
                request(ctx, USE, &[0]);
                o.enter(ctx, |_| {
                    i.enter(ctx, |ic| {
                        while !ic.state(|b| *b) {
                            ic.wait(&c);
                        }
                    });
                    enter(ctx, USE, &[0]);
                    exit(ctx, USE, &[0]);
                });
            });
            let (o, i, c) = (Arc::clone(&outer), Arc::clone(&inner), Arc::clone(&ready));
            sim.spawn("helper", move |ctx| {
                ctx.yield_now();
                let _ = o.try_enter(ctx, |_| {
                    i.enter(ctx, |ic| {
                        ic.state(|b| *b = true);
                        ic.signal(&c);
                    });
                });
            });
            // Unrelated progress, so the verdict reflects the poison cost
            // of the recovery rather than a total wipe-out.
            sim.spawn("worker", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
            });
        }
        LiveMechanism::Serializer => {
            // Cross-serializer crowd deadlock: each process sits in one
            // serializer's crowd while enqueued in the other serializer on
            // a guarantee that the first crowd empties. The victim's
            // crowd-membership rollback re-runs the survivor's guard.
            let s1 = Arc::new(Serializer::new("s1", ()));
            let s2 = Arc::new(Serializer::new("s2", ()));
            let c1 = s1.crowd("c1");
            let q1 = s1.queue("q1");
            let c2 = s2.crowd("c2");
            let q2 = s2.queue("q2");
            let (sa, sb) = (Arc::clone(&s1), Arc::clone(&s2));
            sim.spawn("crosser-a", move |ctx| {
                request(ctx, USE, &[0]);
                sa.enter(ctx, |sc| {
                    sc.join_crowd(c1, || {
                        // Let the peer take its crowd seat so the cycle
                        // can close.
                        ctx.yield_now();
                        sb.enter(ctx, |sc2| {
                            sc2.enqueue(q2, move |g| g.crowd_is_empty(c2));
                            enter(ctx, USE, &[0]);
                            exit(ctx, USE, &[0]);
                        });
                    });
                });
            });
            let (sa, sb) = (Arc::clone(&s1), Arc::clone(&s2));
            // No leading yield: crosser-a's in-crowd yield is the window in
            // which this peer takes its own crowd seat and blocks, closing
            // the cycle before crosser-a's guard is evaluated.
            sim.spawn("crosser-b", move |ctx| {
                request(ctx, USE, &[1]);
                sb.enter(ctx, |sc| {
                    sc.join_crowd(c2, || {
                        sa.enter(ctx, |sc2| {
                            sc2.enqueue(q1, move |g| g.crowd_is_empty(c1));
                            enter(ctx, USE, &[1]);
                            exit(ctx, USE, &[1]);
                        });
                    });
                });
            });
        }
        LiveMechanism::PathExpr => {
            // Two single-occupancy resources acquired in opposite orders.
            // The victim is mid-operation on its first resource, so its
            // abort poisons it; the survivor observes the poison through
            // `try_perform` and abandons only the nested acquisition.
            let ra = Arc::new(PathResource::parse("ra", "path a end").expect("static path"));
            let rb = Arc::new(PathResource::parse("rb", "path b end").expect("static path"));
            let (a, b) = (Arc::clone(&ra), Arc::clone(&rb));
            sim.spawn("crosser-a", move |ctx| {
                request(ctx, USE, &[0]);
                let _ = a.try_perform(ctx, "a", || {
                    ctx.yield_now();
                    if b.try_perform(ctx, "b", || ()).is_err() {
                        ctx.emit("peer-poisoned:rb", &[]);
                    }
                    enter(ctx, USE, &[0]);
                    exit(ctx, USE, &[0]);
                });
            });
            let (a, b) = (Arc::clone(&ra), Arc::clone(&rb));
            // No leading yield: crosser-a's in-operation yield is the
            // window in which this peer starts its own operation, so both
            // nested requests find the other resource occupied.
            sim.spawn("crosser-b", move |ctx| {
                request(ctx, USE, &[1]);
                let _ = b.try_perform(ctx, "b", || {
                    ctx.yield_now();
                    if a.try_perform(ctx, "a", || ()).is_err() {
                        ctx.emit("peer-poisoned:ra", &[]);
                    }
                    enter(ctx, USE, &[1]);
                    exit(ctx, USE, &[1]);
                });
            });
        }
        LiveMechanism::Csp => {
            // A mutual send cycle: both peers offer before either
            // receives. Withdrawing the victim's offer cannot unblock the
            // survivor (its partner is gone), so recovery consumes every
            // peer — the run completes, but nothing useful happened.
            let a_to_b = Arc::new(Channel::<i64>::new("a-to-b"));
            let b_to_a = Arc::new(Channel::<i64>::new("b-to-a"));
            let (ab, ba) = (Arc::clone(&a_to_b), Arc::clone(&b_to_a));
            sim.spawn("peer-a", move |ctx| {
                request(ctx, USE, &[0]);
                ab.send(ctx, 0);
                let _ = ba.recv(ctx);
                enter(ctx, USE, &[0]);
                exit(ctx, USE, &[0]);
            });
            let (ab, ba) = (Arc::clone(&a_to_b), Arc::clone(&b_to_a));
            sim.spawn("peer-b", move |ctx| {
                ctx.yield_now();
                request(ctx, USE, &[1]);
                ba.send(ctx, 1);
                let _ = ab.recv(ctx);
                enter(ctx, USE, &[1]);
                exit(ctx, USE, &[1]);
            });
        }
    }
    sim
}

// ---------------------------------------------------------------------------
// Starvation watchdog
// ---------------------------------------------------------------------------

/// Builds the starvation scenario: two readers cycle the resource
/// [`ROUNDS`] times while a writer retries with the [`ATTEMPTS`] patience
/// schedule under a [`STARVATION_BOUND`] watchdog. The writer emits
/// `retry:res` per withdrawal and `gave-up:res` if the budget runs dry.
pub fn starvation_sim(mech: LiveMechanism) -> Sim {
    let mut sim = Sim::new();
    sim.set_starvation_bound(STARVATION_BOUND);
    match mech {
        LiveMechanism::SemaphoreWeak | LiveMechanism::SemaphoreStrong => {
            let sem = Arc::new(semaphore_for(mech, "res", 1));
            for reader in ["reader1", "reader2"] {
                let s = Arc::clone(&sem);
                sim.spawn(reader, move |ctx| {
                    for round in 0..ROUNDS {
                        request(ctx, READ, &[round as i64]);
                        // A polling barger: exactly the access pattern a
                        // weak semaphore cannot defend the writer against.
                        while !s.try_p() {
                            ctx.yield_now();
                        }
                        enter(ctx, READ, &[round as i64]);
                        work(ctx);
                        exit(ctx, READ, &[round as i64]);
                        s.v(ctx);
                        ctx.yield_now();
                    }
                });
            }
            let s = Arc::clone(&sem);
            sim.spawn("writer", move |ctx| {
                ctx.yield_now();
                request(ctx, WRITE, &[]);
                for (attempt, &patience) in ATTEMPTS.iter().enumerate() {
                    match s.p_by(ctx, patience) {
                        TryResult::Acquired => {
                            enter(ctx, WRITE, &[]);
                            work(ctx);
                            exit(ctx, WRITE, &[]);
                            s.v(ctx);
                            return;
                        }
                        TryResult::TimedOut => {
                            ctx.emit("retry:res", &[attempt as i64 + 1]);
                        }
                    }
                }
                ctx.emit("gave-up:res", &[]);
            });
        }
        LiveMechanism::MonitorHoare | LiveMechanism::MonitorMesa => {
            let m = Arc::new(monitor_for(mech, "res"));
            let free = Arc::new(Cond::new("free"));
            m.register_cond(&free);
            for reader in ["reader1", "reader2"] {
                let (m1, f1) = (Arc::clone(&m), Arc::clone(&free));
                sim.spawn(reader, move |ctx| {
                    for round in 0..ROUNDS {
                        request(ctx, READ, &[round as i64]);
                        m1.enter(ctx, |mc| {
                            monitor_acquire(mc, &f1, None, None);
                        });
                        enter(ctx, READ, &[round as i64]);
                        work(ctx);
                        exit(ctx, READ, &[round as i64]);
                        m1.enter(ctx, |mc| monitor_release(mc, &f1));
                        ctx.yield_now();
                    }
                });
            }
            let (m2, f2) = (Arc::clone(&m), Arc::clone(&free));
            sim.spawn("writer", move |ctx| {
                ctx.yield_now();
                request(ctx, WRITE, &[]);
                let mut acquired = None;
                m2.enter(ctx, |mc| {
                    acquired = monitor_acquire(mc, &f2, Some(ATTEMPTS[0]), Some(ATTEMPTS.len()));
                    if let Some(timeouts) = acquired {
                        for attempt in 0..timeouts {
                            ctx.emit("retry:res", &[attempt as i64 + 1]);
                        }
                    }
                });
                match acquired {
                    Some(_) => {
                        enter(ctx, WRITE, &[]);
                        work(ctx);
                        exit(ctx, WRITE, &[]);
                        m2.enter(ctx, |mc| monitor_release(mc, &f2));
                    }
                    None => ctx.emit("gave-up:res", &[]),
                }
            });
        }
        LiveMechanism::Serializer => {
            let s = Arc::new(Serializer::new("res", false));
            let q = s.queue("waiters");
            for reader in ["reader1", "reader2"] {
                let s1 = Arc::clone(&s);
                sim.spawn(reader, move |ctx| {
                    for round in 0..ROUNDS {
                        request(ctx, READ, &[round as i64]);
                        s1.enter(ctx, |sc| {
                            sc.enqueue(q, |g| !*g.state());
                            sc.state(|b| *b = true);
                        });
                        enter(ctx, READ, &[round as i64]);
                        work(ctx);
                        exit(ctx, READ, &[round as i64]);
                        s1.enter(ctx, |sc| sc.state(|b| *b = false));
                        ctx.yield_now();
                    }
                });
            }
            let s2 = Arc::clone(&s);
            sim.spawn("writer", move |ctx| {
                ctx.yield_now();
                request(ctx, WRITE, &[]);
                let mut acquired = false;
                s2.enter(ctx, |sc| {
                    for (attempt, &patience) in ATTEMPTS.iter().enumerate() {
                        if sc.enqueue_by(q, patience, |g| !*g.state()) {
                            sc.state(|b| *b = true);
                            acquired = true;
                            return;
                        }
                        ctx.emit("retry:res", &[attempt as i64 + 1]);
                    }
                });
                if acquired {
                    enter(ctx, WRITE, &[]);
                    work(ctx);
                    exit(ctx, WRITE, &[]);
                    s2.enter(ctx, |sc| sc.state(|b| *b = false));
                } else {
                    ctx.emit("gave-up:res", &[]);
                }
            });
        }
        LiveMechanism::PathExpr => {
            let r = Arc::new(PathResource::parse("res", "path use end").expect("static path"));
            for reader in ["reader1", "reader2"] {
                let r1 = Arc::clone(&r);
                sim.spawn(reader, move |ctx| {
                    for round in 0..ROUNDS {
                        request(ctx, READ, &[round as i64]);
                        r1.perform(ctx, USE, || {
                            enter(ctx, READ, &[round as i64]);
                            work(ctx);
                            exit(ctx, READ, &[round as i64]);
                        });
                        ctx.yield_now();
                    }
                });
            }
            let r2 = Arc::clone(&r);
            sim.spawn("writer", move |ctx| {
                ctx.yield_now();
                request(ctx, WRITE, &[]);
                for (attempt, &patience) in ATTEMPTS.iter().enumerate() {
                    let served = r2.perform_by(ctx, USE, patience, || {
                        enter(ctx, WRITE, &[]);
                        work(ctx);
                        exit(ctx, WRITE, &[]);
                    });
                    if served.is_some() {
                        return;
                    }
                    ctx.emit("retry:res", &[attempt as i64 + 1]);
                }
                ctx.emit("gave-up:res", &[]);
            });
        }
        LiveMechanism::Csp => {
            let acq = Arc::new(Channel::<i64>::new("acquire"));
            let rel = Arc::new(Channel::<i64>::new("release"));
            let (a, r) = (Arc::clone(&acq), Arc::clone(&rel));
            sim.spawn_daemon("server", move |ctx| loop {
                a.recv(ctx);
                r.recv(ctx);
            });
            for reader in ["reader1", "reader2"] {
                let (a, r) = (Arc::clone(&acq), Arc::clone(&rel));
                sim.spawn(reader, move |ctx| {
                    for round in 0..ROUNDS {
                        request(ctx, READ, &[round as i64]);
                        a.send(ctx, 0);
                        enter(ctx, READ, &[round as i64]);
                        work(ctx);
                        exit(ctx, READ, &[round as i64]);
                        r.send(ctx, 0);
                        ctx.yield_now();
                    }
                });
            }
            let (a, r) = (Arc::clone(&acq), Arc::clone(&rel));
            sim.spawn("writer", move |ctx| {
                ctx.yield_now();
                request(ctx, WRITE, &[]);
                for (attempt, &patience) in ATTEMPTS.iter().enumerate() {
                    if a.send_by(ctx, 1, patience).is_ok() {
                        enter(ctx, WRITE, &[]);
                        work(ctx);
                        exit(ctx, WRITE, &[]);
                        r.send(ctx, 1);
                        return;
                    }
                    ctx.emit("retry:res", &[attempt as i64 + 1]);
                }
                ctx.emit("gave-up:res", &[]);
            });
        }
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_core::expect_clean;
    use bloom_core::liveness::{check_recovery_containment, check_starvation_free};

    /// The uniform-deadline-layer guarantee: a timed-out contender
    /// withdraws cleanly and a later attempt succeeds, under every
    /// mechanism — classified *recovers-after-retry*, never lumped into
    /// *degrades*.
    #[test]
    fn timeout_withdrawal_recovers_everywhere() {
        for mech in LiveMechanism::ALL {
            let result = liveness_scenario(mech, LiveScenario::TimeoutWithdrawal);
            assert_eq!(
                classify_liveness(&result),
                LivenessOutcome::RecoversAfterRetry,
                "{mech}: {result:?}"
            );
            let report = result.expect("classified as recovers-after-retry");
            assert!(
                report
                    .trace
                    .user_events()
                    .any(|(_, label, _)| label == "timed-out:res"),
                "{mech}: patience {PATIENCE} < hold {HOLD} must force a withdrawal"
            );
            assert_eq!(
                report.trace.count_user("gave-up:res"),
                0,
                "{mech}: the retry budget must outlast the holder"
            );
            if matches!(
                mech,
                LiveMechanism::SemaphoreWeak | LiveMechanism::SemaphoreStrong
            ) {
                // The semaphore arm runs `retry_with_backoff`, whose paper
                // trail includes the `retry:` marker before each re-attempt.
                assert!(
                    report.trace.count_user("retry:res") >= 1,
                    "{mech}: the backoff helper must log its re-attempts"
                );
            }
        }
    }

    /// Patience at or beyond the hold time means the first timed wait is
    /// simply granted — no withdrawal, same verdict.
    #[test]
    fn generous_patience_skips_the_withdrawal() {
        for mech in LiveMechanism::ALL {
            let result = timeout_withdrawal_sim(mech, HOLD + 4).run();
            assert_eq!(
                classify_liveness(&result),
                LivenessOutcome::Recovers,
                "{mech}: {result:?}"
            );
            assert!(
                !result
                    .expect("recovers")
                    .trace
                    .user_events()
                    .any(|(_, label, _)| label == "timed-out:res"),
                "{mech}: a wait longer than the hold must be granted, not withdrawn"
            );
        }
    }

    /// What deadlock recovery costs depends on what the victim's unwind
    /// has to roll back: fork permits and crowd seats roll back free
    /// (recovers); held possession and mid-operation state poison
    /// (degrades); a consumed rendezvous cycle leaves no progress
    /// (degrades).
    #[test]
    fn deadlock_recovery_verdict_tracks_what_the_victim_held() {
        let expected = [
            (LiveMechanism::SemaphoreWeak, LivenessOutcome::Recovers),
            (LiveMechanism::SemaphoreStrong, LivenessOutcome::Recovers),
            (LiveMechanism::MonitorHoare, LivenessOutcome::Degrades),
            (LiveMechanism::MonitorMesa, LivenessOutcome::Degrades),
            (LiveMechanism::Serializer, LivenessOutcome::Recovers),
            (LiveMechanism::PathExpr, LivenessOutcome::Degrades),
            (LiveMechanism::Csp, LivenessOutcome::Degrades),
        ];
        for (mech, outcome) in expected {
            let result = liveness_scenario(mech, LiveScenario::DeadlockRecovery);
            assert_eq!(classify_liveness(&result), outcome, "{mech}: {result:?}");
            expect_clean(
                &check_recovery_containment(&result),
                &format!("{mech} deadlock recovery"),
            );
            let report = result.expect("recovery completes the run");
            assert!(
                !report.recovered.is_empty(),
                "{mech}: the scenario must actually deadlock and shed a victim"
            );
        }
    }

    /// §5.1 reproduced as a watchdog experiment: under the weak semaphore
    /// the polling readers barge the permit away from the woken writer
    /// forever — the kernel flags the writer's wait episode and the
    /// writer's retry budget runs dry. The strong semaphore hands the
    /// permit over in FIFO order and the same writer is served on its
    /// first attempt.
    #[test]
    fn weak_semaphore_writer_starves_where_strong_serves() {
        let weak = liveness_scenario(
            LiveMechanism::SemaphoreWeak,
            LiveScenario::StarvationWatchdog,
        );
        assert_eq!(classify_liveness(&weak), LivenessOutcome::Degrades);
        let weak = weak.expect("run completes; the writer gave up, not the system");
        assert_eq!(
            weak.starvation.len(),
            1,
            "exactly the writer's episode is flagged: {:?}",
            weak.starvation
        );
        let flag = &weak.starvation[0];
        assert_eq!(flag.name, "writer");
        assert_eq!(flag.reason, "res");
        assert!(
            flag.age > STARVATION_BOUND,
            "flag fires only past the bound (age {})",
            flag.age
        );
        assert!(
            weak.trace
                .user_events()
                .any(|(_, label, _)| label == "gave-up:res"),
            "the weak-semaphore writer's retry budget must run dry"
        );

        let strong = liveness_scenario(
            LiveMechanism::SemaphoreStrong,
            LiveScenario::StarvationWatchdog,
        );
        assert_eq!(classify_liveness(&strong), LivenessOutcome::Recovers);
        let strong = strong.expect("recovers");
        expect_clean(
            &check_starvation_free(&strong),
            "strong semaphore starvation scenario",
        );
        assert!(
            strong
                .trace
                .user_events()
                .any(|(_, label, _)| label == "exit:write"),
            "the strong-semaphore writer must actually write"
        );
    }

    /// The weak-semaphore starvation schedule is concrete and replayable:
    /// the flagged episode is identical run over run.
    #[test]
    fn starvation_flags_are_deterministic() {
        let a = liveness_scenario(
            LiveMechanism::SemaphoreWeak,
            LiveScenario::StarvationWatchdog,
        )
        .expect("completes");
        let b = liveness_scenario(
            LiveMechanism::SemaphoreWeak,
            LiveScenario::StarvationWatchdog,
        )
        .expect("completes");
        assert_eq!(a.starvation, b.starvation);
        assert_eq!(a.decisions, b.decisions);
    }

    /// Every FIFO grant discipline serves the writer within its patience
    /// budget: no watchdog flag, no give-up.
    #[test]
    fn fifo_disciplines_pass_the_watchdog() {
        for mech in [
            LiveMechanism::SemaphoreStrong,
            LiveMechanism::MonitorHoare,
            LiveMechanism::MonitorMesa,
            LiveMechanism::Serializer,
            LiveMechanism::PathExpr,
            LiveMechanism::Csp,
        ] {
            let result = liveness_scenario(mech, LiveScenario::StarvationWatchdog);
            assert_eq!(
                classify_liveness(&result),
                LivenessOutcome::Recovers,
                "{mech}: {result:?}"
            );
            let report = result.expect("recovers");
            expect_clean(
                &check_starvation_free(&report),
                &format!("{mech} starvation scenario"),
            );
            assert!(
                report
                    .trace
                    .user_events()
                    .any(|(_, label, _)| label == "exit:write"),
                "{mech}: the writer must be served"
            );
        }
    }

    /// The full 7×3 matrix is deterministic and never wedges: every cell
    /// either recovers or degrades loudly.
    #[test]
    fn no_cell_of_the_matrix_wedges() {
        for mech in LiveMechanism::ALL {
            for scenario in LiveScenario::ALL {
                let outcome = liveness_outcome(mech, scenario);
                assert_ne!(
                    outcome,
                    LivenessOutcome::Wedges,
                    "{mech} / {scenario} wedged"
                );
                assert_eq!(
                    outcome,
                    liveness_outcome(mech, scenario),
                    "{mech} / {scenario} must classify identically run over run"
                );
            }
        }
    }
}
