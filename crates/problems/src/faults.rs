//! Crash scenarios: the fault-injection workloads behind experiment R1.
//!
//! The paper evaluates mechanisms on what they can *express*; this module
//! evaluates what they can *survive*. Each scenario is a small, fully
//! deterministic workload in which one process — always named
//! [`VICTIM`] — is killed at a chosen scheduling point while the others
//! try to finish their work. Classifying the outcome with
//! [`bloom_core::crash::classify_crash`] over every kill point yields one
//! cell of the crash-robustness matrix:
//!
//! * **bare semaphores** ([`CrashMechanism::SemaphoreBare`]) are the
//!   baseline: a victim dying inside its critical section takes the
//!   permit to the grave and the scenario *wedges* (loud deadlock);
//! * **`Lock` + `p_by`** ([`CrashMechanism::SemaphoreLock`]) is the
//!   crash-safe semaphore style: the mutex *poisons* and survivors time
//!   out of condition waits instead of wedging;
//! * **monitors**, **serializers** and **path expressions** poison their
//!   primitive when a holder dies and wake every waiter with the verdict;
//!   serializer *crowd* members additionally die without poisoning at
//!   all — membership cleanup re-evaluates the guards (contained);
//! * **CSP** has no possession to poison: a client dying while *parked*
//!   withdraws its offer (contained), but a client dying *mid-protocol*
//!   leaves the server waiting for a reply that never comes — the
//!   readers/writers server wedges, while the buffer server survives
//!   because state never leaves it.
//!
//! The scenarios intentionally use the mechanisms' checked APIs
//! (`try_enter`, `wait_checked`, `enqueue_checked`, `try_perform`,
//! `Lock::try_with`): a survivor that observes poison abandons its
//! remaining work and exits cleanly, which is precisely the behavior the
//! poison protocol exists to enable. Event emission follows the standard
//! `req:`/`enter:`/`exit:` vocabulary, so faulted traces remain parseable
//! by [`bloom_core::events::extract`].

use crate::events::{DEPOSIT, READ, REMOVE, WRITE};
use bloom_channel::{select, Channel};
use bloom_core::crash::{classify_crash, CrashOutcome};
use bloom_core::events::{enter, exit, request};
use bloom_monitor::{Cond, Monitor};
use bloom_pathexpr::PathResource;
use bloom_semaphore::{Lock, Semaphore, TryResult};
use bloom_serializer::Serializer;
use bloom_sim::{Ctx, FaultPlan, Sim, SimError, SimReport};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Name of the process every crash scenario designates for the kill.
pub const VICTIM: &str = "victim";

/// Buffer capacity used by the bounded-buffer crash scenarios.
const CAP: usize = 1;

/// How long survivors in the `SemaphoreLock` scenarios wait before giving
/// a corpse up for dead (virtual-time ticks).
const PATIENCE: u64 = 64;

/// The mechanism flavor under crash test — one row of the R1 matrix.
///
/// `SemaphoreBare` and `SemaphoreLock` are deliberately separate rows:
/// the paper's semaphore is the bare P/V primitive, and its crash
/// behavior (wedging) is the baseline the crash-safe wrappers are
/// measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrashMechanism {
    /// Classic bare `P`/`V` (Courtois-style readers/writers, split
    /// counting semaphores for the buffer). No crash protection at all.
    SemaphoreBare,
    /// The crash-safe semaphore style: `Lock::try_with` for exclusion,
    /// `p_by` for condition waits.
    SemaphoreLock,
    /// Monitor with registered conditions and checked waits.
    Monitor,
    /// Serializer with checked enqueues; readers/writers uses crowds.
    Serializer,
    /// Path-expression resource with checked `perform`.
    PathExpr,
    /// CSP server process owning the resource; clients rendezvous.
    Csp,
}

impl CrashMechanism {
    /// All matrix rows, in display order.
    pub const ALL: [CrashMechanism; 6] = [
        CrashMechanism::SemaphoreBare,
        CrashMechanism::SemaphoreLock,
        CrashMechanism::Monitor,
        CrashMechanism::Serializer,
        CrashMechanism::PathExpr,
        CrashMechanism::Csp,
    ];

    /// Display label for the matrix.
    pub fn label(self) -> &'static str {
        match self {
            CrashMechanism::SemaphoreBare => "semaphore (bare P/V)",
            CrashMechanism::SemaphoreLock => "semaphore (Lock+timeout)",
            CrashMechanism::Monitor => "monitor",
            CrashMechanism::Serializer => "serializer",
            CrashMechanism::PathExpr => "path expression",
            CrashMechanism::Csp => "CSP server",
        }
    }
}

impl fmt::Display for CrashMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The problem under crash test — one column of the R1 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrashProblem {
    /// Three processes: the victim writer, a reader, a second writer.
    ReadersWriters,
    /// Three processes: the victim producer, a second producer, a
    /// consumer, over a capacity-1 buffer.
    BoundedBuffer,
}

impl CrashProblem {
    /// Both matrix columns.
    pub const ALL: [CrashProblem; 2] = [CrashProblem::ReadersWriters, CrashProblem::BoundedBuffer];

    /// Display label for the matrix.
    pub fn label(self) -> &'static str {
        match self {
            CrashProblem::ReadersWriters => "readers/writers",
            CrashProblem::BoundedBuffer => "bounded buffer",
        }
    }
}

impl fmt::Display for CrashProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds the crash scenario simulation, without a fault plan. The caller
/// (a sweep, or the kill-point explorer) injects the kill.
pub fn crash_sim(mech: CrashMechanism, problem: CrashProblem) -> Sim {
    match problem {
        CrashProblem::ReadersWriters => rw_crash_sim(mech),
        CrashProblem::BoundedBuffer => buffer_crash_sim(mech),
    }
}

/// Runs the crash scenario with the victim killed at its `kill_point`-th
/// scheduling point (FIFO schedule).
pub fn crash_scenario(
    mech: CrashMechanism,
    problem: CrashProblem,
    kill_point: u64,
) -> Result<SimReport, SimError> {
    let mut sim = crash_sim(mech, problem);
    sim.set_fault_plan(FaultPlan::new().kill(VICTIM, kill_point));
    sim.run()
}

/// Sweeps kill points `1..=max_points` under the FIFO schedule and
/// classifies each outcome. Kill points past the victim's last scheduling
/// point leave it unharmed; those runs classify as contained (they are the
/// no-fault baseline).
pub fn outcome_sweep(
    mech: CrashMechanism,
    problem: CrashProblem,
    max_points: u64,
) -> Vec<(u64, CrashOutcome)> {
    (1..=max_points)
        .map(|k| (k, classify_crash(&crash_scenario(mech, problem, k))))
        .collect()
}

/// The victim's critical-section body: one quantum of "work" so every
/// scenario has a kill point *inside* the protected region.
fn work(ctx: &Ctx) {
    ctx.yield_now();
}

// ---------------------------------------------------------------------------
// Readers/writers crash scenarios
// ---------------------------------------------------------------------------

fn rw_crash_sim(mech: CrashMechanism) -> Sim {
    let mut sim = Sim::new();
    match mech {
        CrashMechanism::SemaphoreBare => {
            // Courtois problem 1 with bare P/V: readcount + mutex + wrt.
            struct Db {
                mutex: Semaphore,
                wrt: Semaphore,
                readers: Mutex<u32>,
            }
            let db = Arc::new(Db {
                mutex: Semaphore::strong("mutex", 1),
                wrt: Semaphore::strong("wrt", 1),
                readers: Mutex::new(0),
            });
            let read = |db: &Db, ctx: &Ctx| {
                request(ctx, READ, &[]);
                db.mutex.p(ctx);
                {
                    let mut r = db.readers.lock();
                    *r += 1;
                    if *r == 1 {
                        drop(r);
                        db.wrt.p(ctx);
                    }
                }
                db.mutex.v(ctx);
                enter(ctx, READ, &[]);
                work(ctx);
                exit(ctx, READ, &[]);
                db.mutex.p(ctx);
                {
                    let mut r = db.readers.lock();
                    *r -= 1;
                    if *r == 0 {
                        drop(r);
                        db.wrt.v(ctx);
                    }
                }
                db.mutex.v(ctx);
            };
            let write = |db: &Db, ctx: &Ctx| {
                request(ctx, WRITE, &[]);
                db.wrt.p(ctx);
                enter(ctx, WRITE, &[]);
                work(ctx);
                exit(ctx, WRITE, &[]);
                db.wrt.v(ctx);
            };
            let d = Arc::clone(&db);
            sim.spawn(VICTIM, move |ctx| {
                write(&d, ctx);
                ctx.yield_now();
            });
            let d = Arc::clone(&db);
            sim.spawn("reader", move |ctx| {
                ctx.yield_now();
                read(&d, ctx);
            });
            let d = Arc::clone(&db);
            sim.spawn("writer2", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                write(&d, ctx);
            });
        }
        CrashMechanism::SemaphoreLock => {
            // Crash-safe rewrite: one poisoning Lock, exclusive access.
            // (Readers give up sharing; what is bought is that a corpse
            // in the critical section poisons instead of wedging.)
            let lock = Arc::new(Lock::new("db"));
            let op = |lock: &Lock, ctx: &Ctx, name: &'static str| {
                request(ctx, name, &[]);
                let _ = lock.try_with(ctx, || {
                    enter(ctx, name, &[]);
                    work(ctx);
                    exit(ctx, name, &[]);
                });
            };
            let l = Arc::clone(&lock);
            sim.spawn(VICTIM, move |ctx| {
                op(&l, ctx, WRITE);
                ctx.yield_now();
            });
            let l = Arc::clone(&lock);
            sim.spawn("reader", move |ctx| {
                ctx.yield_now();
                op(&l, ctx, READ);
            });
            let l = Arc::clone(&lock);
            sim.spawn("writer2", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                op(&l, ctx, WRITE);
            });
        }
        CrashMechanism::Monitor => {
            // Readers count in the monitor; the write body runs *inside*
            // the monitor so a dying writer holds possession (and
            // poisons) rather than leaving an orphaned "writing" flag.
            let m = Arc::new(Monitor::hoare("db", 0u32));
            let ok_write = Arc::new(Cond::new("ok-write"));
            m.register_cond(&ok_write);
            let read = |m: &Monitor<u32>, ok_write: &Arc<Cond>, ctx: &Ctx| {
                request(ctx, READ, &[]);
                if m.try_enter(ctx, |mc| mc.state(|r| *r += 1)).is_err() {
                    return;
                }
                enter(ctx, READ, &[]);
                work(ctx);
                exit(ctx, READ, &[]);
                let ok = Arc::clone(ok_write);
                let _ = m.try_enter(ctx, move |mc| {
                    mc.state(|r| *r -= 1);
                    if mc.state(|r| *r) == 0 {
                        // Hoare hand-off: the signalled writer may die with
                        // possession before handing it back.
                        let _ = mc.signal_checked(&ok);
                    }
                });
            };
            let write = |m: &Monitor<u32>, ok_write: &Arc<Cond>, ctx: &Ctx| {
                request(ctx, WRITE, &[]);
                let ok = Arc::clone(ok_write);
                let _ = m.try_enter(ctx, move |mc| {
                    while mc.state(|r| *r) > 0 {
                        if mc.wait_checked(&ok).is_err() {
                            return;
                        }
                    }
                    enter(ctx, WRITE, &[]);
                    work(ctx);
                    exit(ctx, WRITE, &[]);
                    // Chain the Hoare signal: a single reader-side signal
                    // wakes only one of possibly several queued writers.
                    let _ = mc.signal_checked(&ok);
                });
            };
            let (m1, c1) = (Arc::clone(&m), Arc::clone(&ok_write));
            sim.spawn(VICTIM, move |ctx| {
                write(&m1, &c1, ctx);
                ctx.yield_now();
            });
            let (m2, c2) = (Arc::clone(&m), Arc::clone(&ok_write));
            sim.spawn("reader", move |ctx| {
                ctx.yield_now();
                read(&m2, &c2, ctx);
            });
            let (m3, c3) = (Arc::clone(&m), Arc::clone(&ok_write));
            sim.spawn("writer2", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                write(&m3, &c3, ctx);
            });
        }
        CrashMechanism::Serializer => {
            let s = Arc::new(Serializer::new("db", ()));
            let q = s.queue("req");
            let readers = s.crowd("readers");
            let writers = s.crowd("writers");
            let read = move |s: &Serializer<()>, ctx: &Ctx| {
                request(ctx, READ, &[]);
                let _ = s.try_enter(ctx, |sc| {
                    if sc
                        .enqueue_checked(q, move |v| v.crowd_is_empty(writers))
                        .is_err()
                    {
                        return;
                    }
                    sc.join_crowd(readers, || {
                        enter(ctx, READ, &[]);
                        work(ctx);
                        exit(ctx, READ, &[]);
                    });
                });
            };
            let write = move |s: &Serializer<()>, ctx: &Ctx| {
                request(ctx, WRITE, &[]);
                let _ = s.try_enter(ctx, |sc| {
                    if sc
                        .enqueue_checked(q, move |v| {
                            v.crowd_is_empty(readers) && v.crowd_is_empty(writers)
                        })
                        .is_err()
                    {
                        return;
                    }
                    sc.join_crowd(writers, || {
                        enter(ctx, WRITE, &[]);
                        work(ctx);
                        exit(ctx, WRITE, &[]);
                    });
                });
            };
            let s1 = Arc::clone(&s);
            sim.spawn(VICTIM, move |ctx| {
                write(&s1, ctx);
                ctx.yield_now();
            });
            let s2 = Arc::clone(&s);
            sim.spawn("reader", move |ctx| {
                ctx.yield_now();
                read(&s2, ctx);
            });
            let s3 = Arc::clone(&s);
            sim.spawn("writer2", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                write(&s3, ctx);
            });
        }
        CrashMechanism::PathExpr => {
            let r = Arc::new(
                PathResource::parse("db", "path { read } , write end").expect("static path"),
            );
            let op = |r: &PathResource, ctx: &Ctx, name: &'static str| {
                request(ctx, name, &[]);
                let _ = r.try_perform(ctx, name, || {
                    enter(ctx, name, &[]);
                    work(ctx);
                    exit(ctx, name, &[]);
                });
            };
            let r1 = Arc::clone(&r);
            sim.spawn(VICTIM, move |ctx| {
                op(&r1, ctx, WRITE);
                ctx.yield_now();
            });
            let r2 = Arc::clone(&r);
            sim.spawn("reader", move |ctx| {
                ctx.yield_now();
                op(&r2, ctx, READ);
            });
            let r3 = Arc::clone(&r);
            sim.spawn("writer2", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                op(&r3, ctx, WRITE);
            });
        }
        CrashMechanism::Csp => {
            // Server process owns the reader count; clients rendezvous:
            // send on *-start to be granted, on *-end when done.
            let read_start = Arc::new(Channel::new("read-start"));
            let read_end = Arc::new(Channel::new("read-end"));
            let write_start = Arc::new(Channel::new("write-start"));
            let write_end = Arc::new(Channel::new("write-end"));
            let (rs, re, ws, we) = (
                Arc::clone(&read_start),
                Arc::clone(&read_end),
                Arc::clone(&write_start),
                Arc::clone(&write_end),
            );
            sim.spawn_daemon("server", move |ctx| {
                let mut readers = 0i64;
                loop {
                    let (idx, _) = select(
                        ctx,
                        &mut [(&*rs, true), (&*re, readers > 0), (&*ws, readers == 0)],
                    );
                    match idx {
                        0 => readers += 1,
                        1 => readers -= 1,
                        // Granting a write blocks the server until the
                        // writer reports back — its Achilles heel when
                        // the writer dies mid-body.
                        _ => {
                            we.recv(ctx);
                        }
                    }
                }
            });
            let read = |start: &Channel<i64>, end: &Channel<i64>, ctx: &Ctx| {
                request(ctx, READ, &[]);
                start.send(ctx, 0);
                enter(ctx, READ, &[]);
                work(ctx);
                exit(ctx, READ, &[]);
                end.send(ctx, 0);
            };
            let write = |start: &Channel<i64>, end: &Channel<i64>, ctx: &Ctx| {
                request(ctx, WRITE, &[]);
                start.send(ctx, 0);
                enter(ctx, WRITE, &[]);
                work(ctx);
                exit(ctx, WRITE, &[]);
                end.send(ctx, 0);
            };
            let (s1, e1) = (Arc::clone(&write_start), Arc::clone(&write_end));
            sim.spawn(VICTIM, move |ctx| {
                write(&s1, &e1, ctx);
                ctx.yield_now();
            });
            let (s2, e2) = (Arc::clone(&read_start), Arc::clone(&read_end));
            sim.spawn("reader", move |ctx| {
                ctx.yield_now();
                read(&s2, &e2, ctx);
            });
            let (s3, e3) = (Arc::clone(&write_start), Arc::clone(&write_end));
            sim.spawn("writer2", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                write(&s3, &e3, ctx);
            });
        }
    }
    sim
}

// ---------------------------------------------------------------------------
// Bounded-buffer crash scenarios
// ---------------------------------------------------------------------------

fn buffer_crash_sim(mech: CrashMechanism) -> Sim {
    let mut sim = Sim::new();
    match mech {
        CrashMechanism::SemaphoreBare => {
            struct Buf {
                empty: Semaphore,
                full: Semaphore,
                mutex: Semaphore,
                items: Mutex<VecDeque<i64>>,
            }
            let buf = Arc::new(Buf {
                empty: Semaphore::strong("empty", CAP as u64),
                full: Semaphore::strong("full", 0),
                mutex: Semaphore::strong("mutex", 1),
                items: Mutex::new(VecDeque::new()),
            });
            let deposit = |b: &Buf, ctx: &Ctx, v: i64| {
                request(ctx, DEPOSIT, &[v]);
                b.empty.p(ctx);
                b.mutex.p(ctx);
                enter(ctx, DEPOSIT, &[v]);
                b.items.lock().push_back(v);
                work(ctx);
                exit(ctx, DEPOSIT, &[v]);
                b.mutex.v(ctx);
                b.full.v(ctx);
            };
            let remove = |b: &Buf, ctx: &Ctx| {
                request(ctx, REMOVE, &[]);
                b.full.p(ctx);
                b.mutex.p(ctx);
                let v = b.items.lock().pop_front().expect("full permit held");
                enter(ctx, REMOVE, &[v]);
                exit(ctx, REMOVE, &[v]);
                b.mutex.v(ctx);
                b.empty.v(ctx);
            };
            let b = Arc::clone(&buf);
            sim.spawn(VICTIM, move |ctx| {
                deposit(&b, ctx, 1);
                ctx.yield_now();
            });
            let b = Arc::clone(&buf);
            sim.spawn("producer2", move |ctx| {
                ctx.yield_now();
                deposit(&b, ctx, 2);
            });
            let b = Arc::clone(&buf);
            sim.spawn("consumer", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                remove(&b, ctx);
            });
        }
        CrashMechanism::SemaphoreLock => {
            struct Buf {
                empty: Semaphore,
                full: Semaphore,
                lock: Lock,
                items: Mutex<VecDeque<i64>>,
            }
            let buf = Arc::new(Buf {
                empty: Semaphore::strong("empty", CAP as u64),
                full: Semaphore::strong("full", 0),
                lock: Lock::new("buf"),
                items: Mutex::new(VecDeque::new()),
            });
            // The victim uses the plain path (it is healthy until the
            // kill); survivors guard every wait with a timeout so a
            // corpse's lost `V` cannot strand them.
            let deposit = |b: &Buf, ctx: &Ctx, v: i64, patient: bool| {
                request(ctx, DEPOSIT, &[v]);
                if patient {
                    if b.empty.p_by(ctx, PATIENCE) == TryResult::TimedOut {
                        return; // corpse kept the slot: give up loudly-typed
                    }
                } else {
                    b.empty.p(ctx);
                }
                let filled = b.lock.try_with(ctx, || {
                    enter(ctx, DEPOSIT, &[v]);
                    b.items.lock().push_back(v);
                    work(ctx);
                    exit(ctx, DEPOSIT, &[v]);
                });
                if filled.is_ok() {
                    b.full.v(ctx);
                }
            };
            let remove = |b: &Buf, ctx: &Ctx| {
                request(ctx, REMOVE, &[]);
                if b.full.p_by(ctx, PATIENCE) == TryResult::TimedOut {
                    return; // nobody will ever fill the buffer
                }
                let taken = b.lock.try_with(ctx, || {
                    let v = b.items.lock().pop_front().expect("full permit held");
                    enter(ctx, REMOVE, &[v]);
                    exit(ctx, REMOVE, &[v]);
                });
                if taken.is_ok() {
                    b.empty.v(ctx);
                }
            };
            let b = Arc::clone(&buf);
            sim.spawn(VICTIM, move |ctx| {
                deposit(&b, ctx, 1, false);
                ctx.yield_now();
            });
            let b = Arc::clone(&buf);
            sim.spawn("producer2", move |ctx| {
                ctx.yield_now();
                deposit(&b, ctx, 2, true);
            });
            let b = Arc::clone(&buf);
            sim.spawn("consumer", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                remove(&b, ctx);
            });
        }
        CrashMechanism::Monitor => {
            let m = Arc::new(Monitor::mesa("buf", VecDeque::<i64>::new()));
            let not_full = Arc::new(Cond::new("not-full"));
            let not_empty = Arc::new(Cond::new("not-empty"));
            m.register_cond(&not_full);
            m.register_cond(&not_empty);
            type BufMon = Monitor<VecDeque<i64>>;
            let deposit = |m: &BufMon, nf: &Arc<Cond>, ne: &Arc<Cond>, ctx: &Ctx, v: i64| {
                request(ctx, DEPOSIT, &[v]);
                let (nf, ne) = (Arc::clone(nf), Arc::clone(ne));
                let _ = m.try_enter(ctx, move |mc| {
                    while mc.state(|b| b.len()) >= CAP {
                        if mc.wait_checked(&nf).is_err() {
                            return;
                        }
                    }
                    enter(ctx, DEPOSIT, &[v]);
                    mc.state(|b| b.push_back(v));
                    work(ctx);
                    exit(ctx, DEPOSIT, &[v]);
                    mc.signal(&ne);
                });
            };
            let remove = |m: &BufMon, nf: &Arc<Cond>, ne: &Arc<Cond>, ctx: &Ctx| {
                request(ctx, REMOVE, &[]);
                let (nf, ne) = (Arc::clone(nf), Arc::clone(ne));
                let _ = m.try_enter(ctx, move |mc| {
                    while mc.state(|b| b.is_empty()) {
                        if mc.wait_checked(&ne).is_err() {
                            return;
                        }
                    }
                    let v = mc.state(|b| b.pop_front().expect("nonempty"));
                    enter(ctx, REMOVE, &[v]);
                    exit(ctx, REMOVE, &[v]);
                    mc.signal(&nf);
                });
            };
            let (m1, f1, e1) = (
                Arc::clone(&m),
                Arc::clone(&not_full),
                Arc::clone(&not_empty),
            );
            sim.spawn(VICTIM, move |ctx| {
                deposit(&m1, &f1, &e1, ctx, 1);
                ctx.yield_now();
            });
            let (m2, f2, e2) = (
                Arc::clone(&m),
                Arc::clone(&not_full),
                Arc::clone(&not_empty),
            );
            sim.spawn("producer2", move |ctx| {
                ctx.yield_now();
                deposit(&m2, &f2, &e2, ctx, 2);
            });
            let (m3, f3, e3) = (
                Arc::clone(&m),
                Arc::clone(&not_full),
                Arc::clone(&not_empty),
            );
            sim.spawn("consumer", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                remove(&m3, &f3, &e3, ctx);
            });
        }
        CrashMechanism::Serializer => {
            let s = Arc::new(Serializer::new("buf", VecDeque::<i64>::new()));
            let space = s.queue("space");
            let item = s.queue("item");
            type BufSer = Serializer<VecDeque<i64>>;
            let deposit = move |s: &BufSer, ctx: &Ctx, v: i64| {
                request(ctx, DEPOSIT, &[v]);
                let _ = s.try_enter(ctx, |sc| {
                    if sc
                        .enqueue_checked(space, |g| g.state().len() < CAP)
                        .is_err()
                    {
                        return;
                    }
                    enter(ctx, DEPOSIT, &[v]);
                    sc.state(|b| b.push_back(v));
                    work(ctx);
                    exit(ctx, DEPOSIT, &[v]);
                });
            };
            let remove = move |s: &BufSer, ctx: &Ctx| {
                request(ctx, REMOVE, &[]);
                let _ = s.try_enter(ctx, |sc| {
                    if sc.enqueue_checked(item, |g| !g.state().is_empty()).is_err() {
                        return;
                    }
                    let v = sc.state(|b| b.pop_front().expect("guard held"));
                    enter(ctx, REMOVE, &[v]);
                    exit(ctx, REMOVE, &[v]);
                });
            };
            let s1 = Arc::clone(&s);
            sim.spawn(VICTIM, move |ctx| {
                deposit(&s1, ctx, 1);
                ctx.yield_now();
            });
            let s2 = Arc::clone(&s);
            sim.spawn("producer2", move |ctx| {
                ctx.yield_now();
                deposit(&s2, ctx, 2);
            });
            let s3 = Arc::clone(&s);
            sim.spawn("consumer", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                remove(&s3, ctx);
            });
        }
        CrashMechanism::PathExpr => {
            let r = Arc::new(
                PathResource::parse("buf", &format!("path {CAP} : (deposit ; remove) end"))
                    .expect("static path"),
            );
            let items = Arc::new(Mutex::new(VecDeque::<i64>::new()));
            let deposit = |r: &PathResource, items: &Mutex<VecDeque<i64>>, ctx: &Ctx, v: i64| {
                request(ctx, DEPOSIT, &[v]);
                let _ = r.try_perform(ctx, "deposit", || {
                    enter(ctx, DEPOSIT, &[v]);
                    items.lock().push_back(v);
                    work(ctx);
                    exit(ctx, DEPOSIT, &[v]);
                });
            };
            let remove = |r: &PathResource, items: &Mutex<VecDeque<i64>>, ctx: &Ctx| {
                request(ctx, REMOVE, &[]);
                let _ = r.try_perform(ctx, "remove", || {
                    let v = items.lock().pop_front().expect("path admitted the remove");
                    enter(ctx, REMOVE, &[v]);
                    exit(ctx, REMOVE, &[v]);
                });
            };
            let (r1, i1) = (Arc::clone(&r), Arc::clone(&items));
            sim.spawn(VICTIM, move |ctx| {
                deposit(&r1, &i1, ctx, 1);
                ctx.yield_now();
            });
            let (r2, i2) = (Arc::clone(&r), Arc::clone(&items));
            sim.spawn("producer2", move |ctx| {
                ctx.yield_now();
                deposit(&r2, &i2, ctx, 2);
            });
            let (r3, i3) = (Arc::clone(&r), Arc::clone(&items));
            sim.spawn("consumer", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                remove(&r3, &i3, ctx);
            });
        }
        CrashMechanism::Csp => {
            // The buffer lives inside the server, so no client crash can
            // corrupt it: dead senders withdraw their offers, and the
            // guards keep the server responsive to everyone else.
            let dep = Arc::new(Channel::new("dep"));
            let rem_req = Arc::new(Channel::new("rem-req"));
            let rem_reply = Arc::new(Channel::new("rem-reply"));
            let (d, rq, rr) = (
                Arc::clone(&dep),
                Arc::clone(&rem_req),
                Arc::clone(&rem_reply),
            );
            sim.spawn_daemon("server", move |ctx| {
                let mut buf = VecDeque::new();
                loop {
                    let (idx, v) =
                        select(ctx, &mut [(&*d, buf.len() < CAP), (&*rq, !buf.is_empty())]);
                    match idx {
                        0 => buf.push_back(v),
                        _ => {
                            let item = buf.pop_front().expect("guard held");
                            rr.send(ctx, item);
                        }
                    }
                }
            });
            let deposit = |dep: &Channel<i64>, ctx: &Ctx, v: i64| {
                request(ctx, DEPOSIT, &[v]);
                dep.send(ctx, v);
                enter(ctx, DEPOSIT, &[v]);
                exit(ctx, DEPOSIT, &[v]);
            };
            let remove = |req: &Channel<i64>, reply: &Channel<i64>, ctx: &Ctx| {
                request(ctx, REMOVE, &[]);
                req.send(ctx, 0);
                let v = reply.recv(ctx);
                enter(ctx, REMOVE, &[v]);
                exit(ctx, REMOVE, &[v]);
            };
            let d1 = Arc::clone(&dep);
            sim.spawn(VICTIM, move |ctx| {
                deposit(&d1, ctx, 1);
                ctx.yield_now();
            });
            let d2 = Arc::clone(&dep);
            sim.spawn("producer2", move |ctx| {
                ctx.yield_now();
                deposit(&d2, ctx, 2);
            });
            let (q3, r3) = (Arc::clone(&rem_req), Arc::clone(&rem_reply));
            sim.spawn("consumer", move |ctx| {
                ctx.yield_now();
                ctx.yield_now();
                remove(&q3, &r3, ctx);
            });
        }
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_core::crash::{check_crash_containment, check_poison_propagation, classify_crash};
    use bloom_core::expect_clean;

    /// Without a fault plan, every scenario completes cleanly — the
    /// baseline the crash runs are measured against.
    #[test]
    fn all_scenarios_are_healthy_without_faults() {
        for mech in CrashMechanism::ALL {
            for problem in CrashProblem::ALL {
                let report = crash_sim(mech, problem)
                    .run()
                    .unwrap_or_else(|e| panic!("{mech}/{}: {e}", problem.label()));
                assert_eq!(
                    report.killed(),
                    vec![],
                    "{mech}/{}: no fault plan, no kills",
                    problem.label()
                );
            }
        }
    }

    /// Every kill point of every cell is *contained*: victims die, the
    /// fault never silently corrupts survivors, and the poison protocol
    /// (where used) is well-formed.
    #[test]
    fn every_kill_point_is_contained_and_protocol_clean() {
        for mech in CrashMechanism::ALL {
            for problem in CrashProblem::ALL {
                for k in 1..=8 {
                    let result = crash_scenario(mech, problem, k);
                    let killed = match &result {
                        Ok(r) => r.killed(),
                        Err(e) => e.report.killed(),
                    };
                    let what = format!("{mech}/{} kill point {k}", problem.label());
                    expect_clean(&check_crash_containment(&result, &killed), &what);
                    let trace = match &result {
                        Ok(r) => &r.trace,
                        Err(e) => &e.report.trace,
                    };
                    expect_clean(&check_poison_propagation(trace), &what);
                }
            }
        }
    }

    /// The sweep is deterministic: running it twice gives identical
    /// outcome vectors (the replay-determinism guarantee extended to
    /// fault injection).
    #[test]
    fn sweeps_are_deterministic() {
        for mech in CrashMechanism::ALL {
            let a = outcome_sweep(mech, CrashProblem::ReadersWriters, 6);
            let b = outcome_sweep(mech, CrashProblem::ReadersWriters, 6);
            assert_eq!(a, b, "{mech}");
        }
    }

    /// The headline contrast of experiment R1: a writer dying inside its
    /// critical section wedges the bare-semaphore solution but merely
    /// poisons the monitor and serializer ones.
    #[test]
    fn bare_semaphores_wedge_where_monitors_and_serializers_poison() {
        let outcomes = |mech| {
            outcome_sweep(mech, CrashProblem::ReadersWriters, 8)
                .into_iter()
                .map(|(_, o)| o)
                .collect::<Vec<_>>()
        };
        assert!(
            outcomes(CrashMechanism::SemaphoreBare).contains(&CrashOutcome::Wedged),
            "some kill point must wedge bare P/V"
        );
        for mech in [
            CrashMechanism::SemaphoreLock,
            CrashMechanism::Monitor,
            CrashMechanism::PathExpr,
        ] {
            let o = outcomes(mech);
            assert!(
                o.contains(&CrashOutcome::Poisoned),
                "{mech}: some kill point must poison"
            );
            assert!(
                !o.contains(&CrashOutcome::Wedged),
                "{mech}: no kill point may wedge (got {o:?})"
            );
        }
        // The serializer goes one better on readers/writers: the victim
        // dies as a *crowd member*, holding no possession, so membership
        // cleanup re-evaluates the guards and every kill point is fully
        // contained — no poison even needed.
        let ser = outcomes(CrashMechanism::Serializer);
        assert!(
            ser.iter().all(|&o| o == CrashOutcome::Contained),
            "serializer crowds contain every writer crash (got {ser:?})"
        );
        // Where the body *does* run under possession (the buffer), the
        // serializer poisons like the monitor does.
        let ser_buf: Vec<_> =
            outcome_sweep(CrashMechanism::Serializer, CrashProblem::BoundedBuffer, 8)
                .into_iter()
                .map(|(_, o)| o)
                .collect();
        assert!(
            ser_buf.contains(&CrashOutcome::Poisoned) && !ser_buf.contains(&CrashOutcome::Wedged),
            "serializer buffer must poison, never wedge (got {ser_buf:?})"
        );
    }

    /// CSP splits by problem: the buffer server owns all state and
    /// absorbs any client crash, while the readers/writers server wedges
    /// when the writer it granted dies mid-body.
    #[test]
    fn csp_contains_buffer_crashes_but_wedges_on_dead_writers() {
        let buffer: Vec<_> = outcome_sweep(CrashMechanism::Csp, CrashProblem::BoundedBuffer, 8)
            .into_iter()
            .map(|(_, o)| o)
            .collect();
        assert!(
            buffer.iter().all(|&o| o == CrashOutcome::Contained),
            "CSP buffer absorbs every client crash (got {buffer:?})"
        );
        let rw: Vec<_> = outcome_sweep(CrashMechanism::Csp, CrashProblem::ReadersWriters, 8)
            .into_iter()
            .map(|(_, o)| o)
            .collect();
        assert!(
            rw.contains(&CrashOutcome::Wedged),
            "a writer dying mid-body strands the CSP server (got {rw:?})"
        );
        assert!(
            !rw.contains(&CrashOutcome::Poisoned),
            "CSP has no possession to poison"
        );
    }

    /// No faulted run ever panics a survivor or livelocks: the only
    /// acceptable failure mode is a *reported* deadlock. (This is the
    /// `classify_crash` ⊇ `check_crash_containment` consistency check.)
    #[test]
    fn wedges_are_always_loud() {
        for mech in CrashMechanism::ALL {
            for problem in CrashProblem::ALL {
                for k in 1..=8 {
                    let result = crash_scenario(mech, problem, k);
                    if classify_crash(&result) == CrashOutcome::Wedged {
                        let err = result.expect_err("wedged means Err");
                        assert!(
                            err.is_deadlock(),
                            "{mech}/{}: wedge must be a reported deadlock, got {err}",
                            problem.label()
                        );
                    }
                }
            }
        }
    }
}
