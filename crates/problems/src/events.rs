//! Canonical operation names shared by solutions, drivers and checkers.

/// Buffer deposit operation.
pub const DEPOSIT: &str = "deposit";
/// Buffer remove operation.
pub const REMOVE: &str = "remove";
/// Database read operation.
pub const READ: &str = "read";
/// Database write operation.
pub const WRITE: &str = "write";
/// FCFS resource use operation.
pub const USE: &str = "use";
/// Disk seek operation (param 0: track).
pub const SEEK: &str = "seek";
/// Alarm wake operation (params: deadline, clock at wake).
pub const WAKE: &str = "wake";
/// Alarm clock tick operation.
pub const TICK: &str = "tick";
/// Dining-philosophers eat operation (param 0: philosopher index).
pub const EAT: &str = "eat";
