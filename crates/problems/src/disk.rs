//! Hoare's disk-head scheduler (footnote 2: *request parameters*).
//!
//! Pending seeks are served in elevator (SCAN) order by requested track:
//! continue in the current direction of head movement, nearest track
//! first; reverse when the sweep is exhausted. The priority constraint's
//! condition is a function of the *argument* of each request — the
//! information type that separates the mechanisms most sharply:
//!
//! * monitors — Hoare's own solution: two conditions with **priority
//!   wait** (`wait(track)` / `wait(-track)`), the construct he introduced
//!   for exactly this example;
//! * serializers — two priority queues whose guards compare the waiter's
//!   track against a `scan_next` function of the protected state;
//! * semaphores — an explicit pending map with one private gate per
//!   request, granted by the releaser;
//! * path expressions — **cannot** express parameter-dependent order
//!   (paper §5.1): the path contributes only `path seek end` (the
//!   exclusion constraint) and the entire elevator policy lives in
//!   synchronization-procedure code outside the mechanism.

use crate::events::SEEK;
use bloom_core::events::{enter, exit, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, ProblemId, SolutionDesc};
use bloom_monitor::{Cond, Monitor};
use bloom_pathexpr::PathResource;
use bloom_semaphore::Semaphore;
use bloom_serializer::{CrowdId, QueueId, Serializer};
use bloom_sim::{Ctx, Pid, WaitQueue};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A disk arm serving seeks in elevator order.
pub trait DiskScheduler: Send + Sync {
    /// Seeks to `track` and runs `body` with the head there.
    fn seek(&self, ctx: &Ctx, track: i64, body: &mut dyn FnMut());
    /// Evaluation metadata for this solution.
    fn desc(&self) -> SolutionDesc;
}

fn base_desc(
    mechanism: MechanismId,
    units: Vec<ImplUnit>,
    params: Directness,
    sync_rating: Directness,
    workarounds: Vec<String>,
) -> SolutionDesc {
    SolutionDesc {
        problem: ProblemId::DiskScheduler,
        mechanism,
        units,
        info_handling: [
            (InfoType::RequestParameters, params),
            (InfoType::SyncState, sync_rating),
        ]
        .into_iter()
        .collect::<BTreeMap<_, _>>(),
        workarounds,
    }
}

/// Sweep direction of the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Up,
    Down,
}

/// Routing rule shared by all solutions (and mirrored by the checker):
/// which sweep should a new request join?
fn joins_up(dir: Dir, head: i64, track: i64) -> bool {
    match dir {
        Dir::Up => track >= head,
        Dir::Down => track > head,
    }
}

// ---------------------------------------------------------------------------
// Monitor (Hoare 1974 §5)
// ---------------------------------------------------------------------------

struct MonitorDiskState {
    head: i64,
    dir: Dir,
    busy: bool,
}

/// Hoare's disc-head scheduler monitor.
pub struct MonitorDisk {
    monitor: Monitor<MonitorDiskState>,
    upsweep: Cond,
    downsweep: Cond,
}

impl MonitorDisk {
    /// Creates the scheduler with the head parked at track 0, sweeping up.
    pub fn new() -> Self {
        MonitorDisk {
            monitor: Monitor::hoare(
                "disk",
                MonitorDiskState {
                    head: 0,
                    dir: Dir::Up,
                    busy: false,
                },
            ),
            upsweep: Cond::new("disk.upsweep"),
            downsweep: Cond::new("disk.downsweep"),
        }
    }
}

impl Default for MonitorDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskScheduler for MonitorDisk {
    fn seek(&self, ctx: &Ctx, track: i64, body: &mut dyn FnMut()) {
        request(ctx, SEEK, &[track]);
        self.monitor.enter(ctx, |mc| {
            if mc.state(|s| s.busy) {
                let up = mc.state(|s| joins_up(s.dir, s.head, track));
                if up {
                    // Lower tracks first on the way up.
                    mc.wait_priority(&self.upsweep, track);
                } else {
                    // Higher tracks first on the way down.
                    mc.wait_priority(&self.downsweep, -track);
                }
                // Hoare hand-off: the releaser chose us; we own the arm.
            }
            mc.state(|s| {
                s.busy = true;
                if track > s.head {
                    s.dir = Dir::Up;
                } else if track < s.head {
                    s.dir = Dir::Down;
                }
                s.head = track;
            });
        });
        enter(ctx, SEEK, &[track]);
        body();
        exit(ctx, SEEK, &[track]);
        self.monitor.enter(ctx, |mc| {
            mc.state(|s| s.busy = false);
            let dir = mc.state(|s| s.dir);
            match dir {
                Dir::Up => {
                    if !self.upsweep.is_empty() {
                        mc.signal(&self.upsweep);
                    } else {
                        mc.state(|s| s.dir = Dir::Down);
                        mc.signal(&self.downsweep);
                    }
                }
                Dir::Down => {
                    if !self.downsweep.is_empty() {
                        mc.signal(&self.downsweep);
                    } else {
                        mc.state(|s| s.dir = Dir::Up);
                        mc.signal(&self.upsweep);
                    }
                }
            }
        });
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Monitor,
            vec![
                ImplUnit::new("head-mutex", "monitor:busy-flag"),
                ImplUnit::new("elevator-order", "monitor:priority-wait-two-sweeps"),
            ],
            Directness::Direct,
            Directness::Indirect,
            vec![],
        )
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemDiskState {
    head: i64,
    dir: Dir,
    busy: bool,
    /// `(track, ticket) -> gate`, minimum first: the up sweep.
    pending_up: BTreeMap<(i64, u64), Arc<Semaphore>>,
    /// `(-track, ticket) -> gate`, so `first` is the highest track: down.
    pending_down: BTreeMap<(i64, u64), Arc<Semaphore>>,
}

/// Hand-built SCAN over a mutex-protected pending map with one private
/// gate semaphore per request — everything the monitor gives for free,
/// spelled out by the programmer.
pub struct SemaphoreDisk {
    state: Mutex<SemDiskState>,
}

impl SemaphoreDisk {
    /// Creates the scheduler with the head parked at track 0, sweeping up.
    pub fn new() -> Self {
        SemaphoreDisk {
            state: Mutex::new(SemDiskState {
                head: 0,
                dir: Dir::Up,
                busy: false,
                pending_up: BTreeMap::new(),
                pending_down: BTreeMap::new(),
            }),
        }
    }
}

impl Default for SemaphoreDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl SemDiskState {
    fn note_service(&mut self, track: i64) {
        self.busy = true;
        if track > self.head {
            self.dir = Dir::Up;
        } else if track < self.head {
            self.dir = Dir::Down;
        }
        self.head = track;
    }

    /// Picks the SCAN-next pending request and removes it.
    fn grant_next(&mut self) -> Option<(i64, Arc<Semaphore>)> {
        let take_up = |s: &mut SemDiskState| {
            s.pending_up
                .pop_first()
                .map(|((track, _), gate)| (track, gate))
        };
        let take_down = |s: &mut SemDiskState| {
            s.pending_down
                .pop_first()
                .map(|((neg, _), gate)| (-neg, gate))
        };
        match self.dir {
            Dir::Up => take_up(self).or_else(|| {
                self.dir = Dir::Down;
                take_down(self)
            }),
            Dir::Down => take_down(self).or_else(|| {
                self.dir = Dir::Up;
                take_up(self)
            }),
        }
    }
}

impl DiskScheduler for SemaphoreDisk {
    fn seek(&self, ctx: &Ctx, track: i64, body: &mut dyn FnMut()) {
        request(ctx, SEEK, &[track]);
        let gate = {
            let mut s = self.state.lock();
            if !s.busy {
                s.note_service(track);
                None
            } else {
                let gate = Arc::new(Semaphore::strong("disk.gate", 0));
                let key = (joins_up(s.dir, s.head, track), ctx.fresh_ticket());
                match key {
                    (true, ticket) => s.pending_up.insert((track, ticket), Arc::clone(&gate)),
                    (false, ticket) => s.pending_down.insert((-track, ticket), Arc::clone(&gate)),
                };
                Some(gate)
            }
        };
        if let Some(gate) = gate {
            gate.p(ctx);
            // The releaser already recorded our service (head/dir/busy).
        }
        enter(ctx, SEEK, &[track]);
        body();
        exit(ctx, SEEK, &[track]);
        let granted = {
            let mut s = self.state.lock();
            s.busy = false;
            match s.grant_next() {
                Some((next_track, gate)) => {
                    s.note_service(next_track);
                    Some(gate)
                }
                None => None,
            }
        };
        if let Some(gate) = granted {
            gate.v(ctx);
        }
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Semaphore,
            vec![
                ImplUnit::new("head-mutex", "sem:busy-flag+private-gates"),
                ImplUnit::new("elevator-order", "sem:hand-built-pending-maps"),
            ],
            Directness::Workaround,
            Directness::Indirect,
            vec!["per-request private semaphores granted by the releaser".into()],
        )
    }
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

struct SerDiskState {
    head: i64,
    dir: Dir,
    pending_up: BTreeSet<(i64, u64)>,
    pending_down: BTreeSet<(i64, u64)>,
}

impl SerDiskState {
    /// The request SCAN would serve next, if any: `(is_up, track, ticket)`.
    fn scan_next(&self) -> Option<(bool, i64, u64)> {
        let up = self.pending_up.first().map(|&(t, k)| (true, t, k));
        let down = self.pending_down.first().map(|&(neg, k)| (false, -neg, k));
        match self.dir {
            Dir::Up => up.or(down),
            Dir::Down => down.or(up),
        }
    }
}

/// Serializer SCAN: two priority queues whose guards ask "am I the
/// request `scan_next` would pick, and is the arm free?" — the elevator
/// policy as data-driven guarantees, re-evaluated automatically.
pub struct SerializerDisk {
    ser: Arc<Serializer<SerDiskState>>,
    upq: QueueId,
    downq: QueueId,
    servicing: CrowdId,
}

impl SerializerDisk {
    /// Creates the scheduler with the head parked at track 0, sweeping up.
    pub fn new() -> Self {
        let ser = Arc::new(Serializer::new(
            "disk",
            SerDiskState {
                head: 0,
                dir: Dir::Up,
                pending_up: BTreeSet::new(),
                pending_down: BTreeSet::new(),
            },
        ));
        let upq = ser.queue("upsweep");
        let downq = ser.queue("downsweep");
        let servicing = ser.crowd("servicing");
        SerializerDisk {
            ser,
            upq,
            downq,
            servicing,
        }
    }
}

impl Default for SerializerDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskScheduler for SerializerDisk {
    fn seek(&self, ctx: &Ctx, track: i64, body: &mut dyn FnMut()) {
        request(ctx, SEEK, &[track]);
        let servicing = self.servicing;
        self.ser.enter(ctx, |sc| {
            let ticket = ctx.fresh_ticket();
            let goes_up = sc.state(|s| {
                // Route by the same rule as the other solutions; record
                // ourselves so guards can compute scan_next.
                let up = joins_up(s.dir, s.head, track);
                if up {
                    s.pending_up.insert((track, ticket));
                } else {
                    s.pending_down.insert((-track, ticket));
                }
                up
            });
            let queue = if goes_up { self.upq } else { self.downq };
            let priority = if goes_up { track } else { -track };
            sc.enqueue_priority(queue, priority, move |v| {
                v.crowd_is_empty(servicing)
                    && v.state().scan_next() == Some((goes_up, track, ticket))
            });
            sc.state(|s| {
                if goes_up {
                    s.pending_up.remove(&(track, ticket));
                    s.dir = Dir::Up;
                } else {
                    s.pending_down.remove(&(-track, ticket));
                    s.dir = Dir::Down;
                }
                s.head = track;
            });
            enter(ctx, SEEK, &[track]);
            sc.join_crowd(servicing, || {
                body();
            });
            exit(ctx, SEEK, &[track]);
        });
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Serializer,
            vec![
                ImplUnit::new("head-mutex", "guard:servicing-crowd-empty"),
                ImplUnit::new(
                    "elevator-order",
                    "serializer:priority-queues+scan-next-guard",
                ),
            ],
            Directness::Direct,
            Directness::Direct,
            vec![],
        )
    }
}

// ---------------------------------------------------------------------------
// Path expressions (workaround)
// ---------------------------------------------------------------------------

struct PathDiskState {
    head: i64,
    dir: Dir,
    busy: bool,
    pending_up: BTreeMap<(i64, u64), Pid>,
    pending_down: BTreeMap<(i64, u64), Pid>,
}

/// Path-expression "solution": the paths can only say `path seek end`
/// (one seek at a time). The entire elevator policy is a synchronization
/// procedure — explicit pending maps and a hand-rolled wait queue outside
/// the mechanism — which is precisely the §5.1 finding that parameters
/// are inaccessible to paths.
pub struct PathDisk {
    paths: PathResource,
    state: Mutex<PathDiskState>,
    gate: WaitQueue,
}

impl PathDisk {
    /// Creates the scheduler with the head parked at track 0, sweeping up.
    pub fn new() -> Self {
        PathDisk {
            paths: PathResource::parse("disk", "path seek end").expect("static path source"),
            state: Mutex::new(PathDiskState {
                head: 0,
                dir: Dir::Up,
                busy: false,
                pending_up: BTreeMap::new(),
                pending_down: BTreeMap::new(),
            }),
            gate: WaitQueue::new("disk.admission"),
        }
    }
}

impl Default for PathDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskScheduler for PathDisk {
    fn seek(&self, ctx: &Ctx, track: i64, body: &mut dyn FnMut()) {
        request(ctx, SEEK, &[track]);
        let admitted = {
            let mut s = self.state.lock();
            if !s.busy {
                s.busy = true;
                if track > s.head {
                    s.dir = Dir::Up;
                } else if track < s.head {
                    s.dir = Dir::Down;
                }
                s.head = track;
                true
            } else {
                let ticket = ctx.fresh_ticket();
                if joins_up(s.dir, s.head, track) {
                    s.pending_up.insert((track, ticket), ctx.pid());
                } else {
                    s.pending_down.insert((-track, ticket), ctx.pid());
                }
                false
            }
        };
        if !admitted {
            self.gate.wait(ctx);
        }
        self.paths.perform(ctx, "seek", || {
            enter(ctx, SEEK, &[track]);
            body();
            exit(ctx, SEEK, &[track]);
        });
        let next = {
            let mut s = self.state.lock();
            s.busy = false;
            let grant = match s.dir {
                Dir::Up => s
                    .pending_up
                    .pop_first()
                    .map(|((t, _), pid)| (t, pid))
                    .or_else(|| {
                        s.dir = Dir::Down;
                        s.pending_down
                            .pop_first()
                            .map(|((neg, _), pid)| (-neg, pid))
                    }),
                Dir::Down => s
                    .pending_down
                    .pop_first()
                    .map(|((neg, _), pid)| (-neg, pid))
                    .or_else(|| {
                        s.dir = Dir::Up;
                        s.pending_up.pop_first().map(|((t, _), pid)| (t, pid))
                    }),
            };
            if let Some((t, pid)) = grant {
                s.busy = true;
                if t > s.head {
                    s.dir = Dir::Up;
                } else if t < s.head {
                    s.dir = Dir::Down;
                }
                s.head = t;
                Some(pid)
            } else {
                None
            }
        };
        if let Some(pid) = next {
            self.gate.wake_pid(ctx, pid);
        }
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::PathV1,
            vec![
                ImplUnit::new("head-mutex", "path:seek-cycle"),
                ImplUnit::new("elevator-order", "syncproc:scan-admission-outside-paths"),
            ],
            Directness::Workaround,
            Directness::Indirect,
            vec!["elevator policy implemented entirely outside the path mechanism".into()],
        )
    }
}

/// Fresh instance of the solution for `mechanism`.
///
/// # Panics
///
/// Panics for [`MechanismId::PathV2`] (the numeric operator does not help
/// with parameters; predicates arrived only in Andler's later version).
pub fn make(mechanism: MechanismId) -> Arc<dyn DiskScheduler> {
    match mechanism {
        MechanismId::Semaphore => Arc::new(SemaphoreDisk::new()),
        MechanismId::Monitor => Arc::new(MonitorDisk::new()),
        MechanismId::Serializer => Arc::new(SerializerDisk::new()),
        MechanismId::PathV1 => Arc::new(PathDisk::new()),
        MechanismId::Csp => Arc::new(crate::csp::CspDisk::new()),
        MechanismId::PathV2 | MechanismId::PathV3 => {
            panic!("disk scheduler has no distinct path-v2/v3 solution")
        }
    }
}

/// The mechanisms with a disk-scheduler solution.
pub const MECHANISMS: [MechanismId; 5] = [
    MechanismId::Semaphore,
    MechanismId::Monitor,
    MechanismId::Serializer,
    MechanismId::PathV1,
    MechanismId::Csp,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::disk_scenario;
    use bloom_core::checks::{check_all_served, check_elevator, check_exclusion, expect_clean};
    use bloom_core::events::extract;

    #[test]
    fn all_mechanisms_serve_in_elevator_order() {
        for mech in MECHANISMS {
            for (workload, sched) in [
                (1u64, None),
                (2, None),
                (3, Some(91)),
                (4, Some(92)),
                (5, Some(93)),
            ] {
                let report = disk_scenario(mech, 4, 3, workload, sched);
                let events = extract(&report.trace);
                expect_clean(
                    &check_elevator(&events, SEEK),
                    &format!("{mech} elevator order (workload {workload}, sched {sched:?})"),
                );
                expect_clean(
                    &check_exclusion(&events, &[(SEEK, SEEK)]),
                    &format!("{mech} one seek at a time"),
                );
                expect_clean(&check_all_served(&events), &format!("{mech} liveness"));
            }
        }
    }

    /// Scripted sweep: requests at 50, 10, 70 while the arm is busy at 30
    /// going up → service order 30, 50, 70, 10.
    #[test]
    fn scripted_sweep_matches_scan() {
        for mech in MECHANISMS {
            let mut sim = bloom_sim::Sim::new();
            let disk = make(mech);
            let d = Arc::clone(&disk);
            let order = Arc::new(Mutex::new(Vec::new()));
            let o = Arc::clone(&order);
            sim.spawn("first", move |ctx| {
                d.seek(ctx, 30, &mut || {
                    // Hold the arm while the others queue up.
                    for _ in 0..5 {
                        ctx.yield_now();
                    }
                });
                o.lock().push(30);
            });
            for (i, track) in [50i64, 10, 70].into_iter().enumerate() {
                let d = Arc::clone(&disk);
                let o = Arc::clone(&order);
                sim.spawn(&format!("req{i}"), move |ctx| {
                    ctx.yield_now(); // let "first" grab the arm
                    d.seek(ctx, track, &mut || {});
                    o.lock().push(track);
                });
            }
            sim.run().unwrap();
            assert_eq!(*order.lock(), vec![30, 50, 70, 10], "{mech} SCAN order");
        }
    }

    #[test]
    fn descriptions_attribute_elevator_and_mutex() {
        for mech in MECHANISMS {
            let d = make(mech).desc();
            assert!(d.constraints().contains("head-mutex"), "{mech}");
            assert!(d.constraints().contains("elevator-order"), "{mech}");
        }
        // The paper's finding: paths handle parameters only by workaround.
        assert_eq!(
            make(MechanismId::PathV1).desc().info_handling[&InfoType::RequestParameters],
            Directness::Workaround
        );
        assert_eq!(
            make(MechanismId::Monitor).desc().info_handling[&InfoType::RequestParameters],
            Directness::Direct
        );
    }
}
