//! First-come-first-served resource allocation (footnote 2: *request
//! time*).
//!
//! One resource, many requesters, strict arrival-order service. The only
//! information the priority constraint needs is *when* each request was
//! made — which is exactly what FIFO queues encode, so each mechanism's
//! solution shows how its queues expose request time:
//!
//! * semaphores — a strong (FIFO hand-off) semaphore is the constraint;
//! * monitors — a condition queue is FIFO, but only Hoare hand-off keeps
//!   bargers from breaking the order;
//! * serializers — a single queue with an always-eligible-when-free guard;
//! * path expressions — `path use end` plus the longest-waiting selection
//!   rule *is* FCFS, the most direct expression of all.

use crate::events;
use bloom_core::events::{enter, exit, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, ProblemId, SolutionDesc};
use bloom_monitor::{Cond, Monitor};
use bloom_pathexpr::PathResource;
use bloom_semaphore::Semaphore;
use bloom_serializer::Serializer;
use bloom_sim::Ctx;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A resource served in strict request order.
pub trait FcfsResource: Send + Sync {
    /// Runs `body` while holding the resource; grants are FCFS.
    fn with_resource(&self, ctx: &Ctx, body: &mut dyn FnMut());
    /// Evaluation metadata for this solution.
    fn desc(&self) -> SolutionDesc;
}

fn base_desc(
    mechanism: MechanismId,
    units: Vec<ImplUnit>,
    time_rating: Directness,
    sync_rating: Directness,
) -> SolutionDesc {
    SolutionDesc {
        problem: ProblemId::FcfsResource,
        mechanism,
        units,
        info_handling: [
            (InfoType::RequestTime, time_rating),
            (InfoType::SyncState, sync_rating),
        ]
        .into_iter()
        .collect::<BTreeMap<_, _>>(),
        workarounds: Vec::new(),
    }
}

/// Strong-semaphore solution: the FIFO hand-off of [`Semaphore::strong`]
/// carries the request-time information.
pub struct SemaphoreFcfs {
    sem: Semaphore,
}

impl SemaphoreFcfs {
    /// Creates the resource, initially free.
    pub fn new() -> Self {
        SemaphoreFcfs {
            sem: Semaphore::strong("fcfs.resource", 1),
        }
    }
}

impl Default for SemaphoreFcfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FcfsResource for SemaphoreFcfs {
    fn with_resource(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, events::USE, &[]);
        self.sem.p(ctx);
        enter(ctx, events::USE, &[]);
        body();
        exit(ctx, events::USE, &[]);
        self.sem.v(ctx);
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Semaphore,
            vec![
                ImplUnit::new("resource-mutex", "sem:binary"),
                ImplUnit::new("fcfs-order", "sem:strong-fifo-handoff"),
            ],
            Directness::Indirect,
            Directness::Indirect,
        )
    }
}

/// Hoare-monitor solution: a busy flag plus one FIFO condition. Hoare
/// hand-off is essential — under signal-and-continue a barger entering
/// between release and the woken process's re-entry would break FCFS.
pub struct MonitorFcfs {
    monitor: Monitor<bool>,
    turn: Cond,
}

impl MonitorFcfs {
    /// Creates the resource, initially free.
    pub fn new() -> Self {
        MonitorFcfs {
            monitor: Monitor::hoare("fcfs", false),
            turn: Cond::new("fcfs.turn"),
        }
    }
}

impl Default for MonitorFcfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FcfsResource for MonitorFcfs {
    fn with_resource(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, events::USE, &[]);
        self.monitor.enter(ctx, |mc| {
            if mc.state(|busy| *busy) {
                mc.wait(&self.turn);
                // Hoare semantics: the releaser cleared `busy` and handed
                // us the monitor; no re-check loop is needed.
            }
            mc.state(|busy| *busy = true);
        });
        enter(ctx, events::USE, &[]);
        body();
        exit(ctx, events::USE, &[]);
        self.monitor.enter(ctx, |mc| {
            mc.state(|busy| *busy = false);
            mc.signal(&self.turn);
        });
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Monitor,
            vec![
                ImplUnit::new("resource-mutex", "monitor:busy-flag"),
                ImplUnit::new("fcfs-order", "monitor:cond-fifo+hoare-handoff"),
            ],
            Directness::Direct,
            Directness::Indirect,
        )
    }
}

/// Serializer solution: one queue (FIFO by definition) and a crowd so the
/// guard can see whether the resource is occupied.
pub struct SerializerFcfs {
    ser: Arc<Serializer<()>>,
    queue: bloom_serializer::QueueId,
    holders: bloom_serializer::CrowdId,
}

impl SerializerFcfs {
    /// Creates the resource, initially free.
    pub fn new() -> Self {
        let ser = Arc::new(Serializer::new("fcfs", ()));
        let queue = ser.queue("arrivals");
        let holders = ser.crowd("holders");
        SerializerFcfs {
            ser,
            queue,
            holders,
        }
    }
}

impl Default for SerializerFcfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FcfsResource for SerializerFcfs {
    fn with_resource(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, events::USE, &[]);
        let holders = self.holders;
        self.ser.enter(ctx, |sc| {
            sc.enqueue(self.queue, move |v| v.crowd_is_empty(holders));
            enter(ctx, events::USE, &[]);
            sc.join_crowd(holders, || {
                body();
            });
            exit(ctx, events::USE, &[]);
        });
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Serializer,
            vec![
                ImplUnit::new("resource-mutex", "guard:holders-crowd-empty"),
                ImplUnit::new("fcfs-order", "serializer:single-fifo-queue"),
            ],
            Directness::Direct,
            Directness::Direct,
        )
    }
}

/// Path-expression solution: `path use end`. The cyclic single-operation
/// path serializes executions, and the longest-waiting selection rule
/// makes the service order FCFS — the entire problem in four words.
pub struct PathFcfs {
    paths: PathResource,
}

impl PathFcfs {
    /// Creates the resource, initially free.
    pub fn new() -> Self {
        PathFcfs {
            paths: PathResource::parse("fcfs", "path use end").expect("static path source"),
        }
    }
}

impl Default for PathFcfs {
    fn default() -> Self {
        Self::new()
    }
}

impl FcfsResource for PathFcfs {
    fn with_resource(&self, ctx: &Ctx, body: &mut dyn FnMut()) {
        request(ctx, events::USE, &[]);
        self.paths.perform(ctx, "use", || {
            enter(ctx, events::USE, &[]);
            body();
            exit(ctx, events::USE, &[]);
        });
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::PathV1,
            vec![
                ImplUnit::new("resource-mutex", "path:use-cycle"),
                ImplUnit::new("fcfs-order", "path:longest-waiting-selection"),
            ],
            Directness::Indirect, // rides on the selection-rule assumption
            Directness::Indirect,
        )
    }
}

/// Fresh instance of the solution for `mechanism`.
///
/// # Panics
///
/// Panics for [`MechanismId::PathV2`] (identical to the v1 solution).
pub fn make(mechanism: MechanismId) -> Arc<dyn FcfsResource> {
    match mechanism {
        MechanismId::Semaphore => Arc::new(SemaphoreFcfs::new()),
        MechanismId::Monitor => Arc::new(MonitorFcfs::new()),
        MechanismId::Serializer => Arc::new(SerializerFcfs::new()),
        MechanismId::PathV1 => Arc::new(PathFcfs::new()),
        MechanismId::Csp => Arc::new(crate::csp::CspFcfs::new()),
        MechanismId::PathV2 | MechanismId::PathV3 => {
            panic!("FCFS has no distinct path-v2/v3 solution")
        }
    }
}

/// The mechanisms with an FCFS solution.
pub const MECHANISMS: [MechanismId; 5] = [
    MechanismId::Semaphore,
    MechanismId::Monitor,
    MechanismId::Serializer,
    MechanismId::PathV1,
    MechanismId::Csp,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::fcfs_scenario;
    use bloom_core::checks::{check_all_served, check_exclusion, check_fifo, expect_clean};
    use bloom_core::events::extract;

    #[test]
    fn all_mechanisms_serve_strictly_in_request_order() {
        for mech in MECHANISMS {
            for seed in [None, Some(11), Some(12), Some(13)] {
                let report = fcfs_scenario(mech, 5, 4, seed);
                let events = extract(&report.trace);
                expect_clean(
                    &check_fifo(&events, &[events::USE]),
                    &format!("{mech} FCFS (seed {seed:?})"),
                );
                expect_clean(
                    &check_exclusion(&events, &[(events::USE, events::USE)]),
                    &format!("{mech} exclusion (seed {seed:?})"),
                );
                expect_clean(&check_all_served(&events), &format!("{mech} liveness"));
            }
        }
    }

    #[test]
    fn fcfs_holds_under_many_random_schedules() {
        for mech in MECHANISMS {
            for seed in 20..30 {
                let report = fcfs_scenario(mech, 4, 3, Some(seed));
                let events = extract(&report.trace);
                expect_clean(
                    &check_fifo(&events, &[events::USE]),
                    &format!("{mech} FCFS (seed {seed})"),
                );
            }
        }
    }

    #[test]
    fn descriptions_attribute_both_constraints() {
        for mech in MECHANISMS {
            let d = make(mech).desc();
            assert!(d.constraints().contains("resource-mutex"), "{mech}");
            assert!(d.constraints().contains("fcfs-order"), "{mech}");
        }
    }
}
