//! The bounded buffer (paper footnote 2: *local state information*).
//!
//! Producers deposit into and consumers remove from an N-slot FIFO buffer;
//! a deposit is excluded while the buffer is full, a remove while it is
//! empty — conditions on the *local state* of the unsynchronized resource.
//!
//! The path-expression solution is the ablation pivot: version-1 path
//! expressions cannot express "fewer than N in flight" (the paper reports
//! the numeric operator was added later to fix exactly this), so the
//! [`MechanismId::PathV2`] solution uses `path N : (deposit ; remove) end`
//! and there is deliberately no v1 solution.

use crate::events;
use bloom_core::events::{enter, exit, request};
use bloom_core::{Directness, ImplUnit, InfoType, MechanismId, ProblemId, SolutionDesc};
use bloom_monitor::{Cond, Monitor};
use bloom_pathexpr::PathResource;
use bloom_semaphore::{Lock, Semaphore};
use bloom_serializer::Serializer;
use bloom_sim::Ctx;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A bounded FIFO buffer of `i64` values.
pub trait BoundedBuffer: Send + Sync {
    /// Appends `value`; blocks while the buffer is full.
    fn deposit(&self, ctx: &Ctx, value: i64);
    /// Takes the oldest value; blocks while the buffer is empty.
    fn remove(&self, ctx: &Ctx) -> i64;
    /// The buffer's capacity.
    fn capacity(&self) -> usize;
    /// Evaluation metadata for this solution.
    fn desc(&self) -> SolutionDesc;
}

fn base_desc(
    mechanism: MechanismId,
    units: Vec<ImplUnit>,
    info: &[(InfoType, Directness)],
) -> SolutionDesc {
    SolutionDesc {
        problem: ProblemId::BoundedBuffer,
        mechanism,
        units,
        info_handling: info.iter().copied().collect::<BTreeMap<_, _>>(),
        workarounds: Vec::new(),
    }
}

/// Classic split-semaphore solution: `empty` counts free slots, `full`
/// counts occupied ones, a lock protects the queue. Local state (the fill
/// level) is mirrored *indirectly* in semaphore counts.
pub struct SemaphoreBuffer {
    empty: Semaphore,
    full: Semaphore,
    lock: Lock,
    items: Mutex<VecDeque<i64>>,
    capacity: usize,
}

impl SemaphoreBuffer {
    /// Creates an empty buffer with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        SemaphoreBuffer {
            empty: Semaphore::strong("buffer.empty", capacity as u64),
            full: Semaphore::strong("buffer.full", 0),
            lock: Lock::new("buffer.lock"),
            items: Mutex::new(VecDeque::new()),
            capacity,
        }
    }
}

impl BoundedBuffer for SemaphoreBuffer {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        request(ctx, events::DEPOSIT, &[value]);
        self.empty.p(ctx);
        self.lock.with(ctx, || {
            enter(ctx, events::DEPOSIT, &[value]);
            self.items.lock().push_back(value);
            exit(ctx, events::DEPOSIT, &[value]);
        });
        self.full.v(ctx);
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        request(ctx, events::REMOVE, &[]);
        self.full.p(ctx);
        let value = self.lock.with(ctx, || {
            let value = self
                .items
                .lock()
                .pop_front()
                .expect("full count implies an item");
            enter(ctx, events::REMOVE, &[value]);
            exit(ctx, events::REMOVE, &[value]);
            value
        });
        self.empty.v(ctx);
        value
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Semaphore,
            vec![
                ImplUnit::new("buffer-mutex", "sem:lock"),
                ImplUnit::new("not-full", "sem:empty-count"),
                ImplUnit::new("not-empty", "sem:full-count"),
            ],
            &[(InfoType::LocalState, Directness::Indirect)],
        )
    }
}

/// Hoare-monitor solution: the buffer is monitor data; `not_full` /
/// `not_empty` conditions wait on its local state directly.
pub struct MonitorBuffer {
    monitor: Monitor<VecDeque<i64>>,
    not_full: Cond,
    not_empty: Cond,
    capacity: usize,
}

impl MonitorBuffer {
    /// Creates an empty buffer with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        MonitorBuffer {
            monitor: Monitor::hoare("buffer", VecDeque::new()),
            not_full: Cond::new("buffer.not_full"),
            not_empty: Cond::new("buffer.not_empty"),
            capacity,
        }
    }
}

impl BoundedBuffer for MonitorBuffer {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        request(ctx, events::DEPOSIT, &[value]);
        self.monitor.enter(ctx, |mc| {
            while mc.state(|q| q.len()) >= self.capacity {
                mc.wait(&self.not_full);
            }
            enter(ctx, events::DEPOSIT, &[value]);
            mc.state(|q| q.push_back(value));
            exit(ctx, events::DEPOSIT, &[value]);
            mc.signal(&self.not_empty);
        });
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        request(ctx, events::REMOVE, &[]);
        self.monitor.enter(ctx, |mc| {
            while mc.state(|q| q.is_empty()) {
                mc.wait(&self.not_empty);
            }
            let value = mc.state(|q| q.pop_front()).expect("checked above");
            enter(ctx, events::REMOVE, &[value]);
            exit(ctx, events::REMOVE, &[value]);
            mc.signal(&self.not_full);
            value
        })
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Monitor,
            vec![
                ImplUnit::new("buffer-mutex", "monitor:possession"),
                ImplUnit::new("not-full", "monitor:cond-not-full"),
                ImplUnit::new("not-empty", "monitor:cond-not-empty"),
            ],
            &[(InfoType::LocalState, Directness::Direct)],
        )
    }
}

/// Serializer solution: one queue per operation type (queues are strictly
/// FIFO, so a remover waiting at the head of a shared queue would block
/// the depositors behind it); guards read the buffer's local state, and
/// possession provides the mutual exclusion.
pub struct SerializerBuffer {
    ser: Arc<Serializer<VecDeque<i64>>>,
    depositors: bloom_serializer::QueueId,
    removers: bloom_serializer::QueueId,
    capacity: usize,
}

impl SerializerBuffer {
    /// Creates an empty buffer with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        let ser = Arc::new(Serializer::new("buffer", VecDeque::new()));
        let depositors = ser.queue("depositors");
        let removers = ser.queue("removers");
        SerializerBuffer {
            ser,
            depositors,
            removers,
            capacity,
        }
    }
}

impl BoundedBuffer for SerializerBuffer {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        request(ctx, events::DEPOSIT, &[value]);
        let cap = self.capacity;
        self.ser.enter(ctx, |sc| {
            sc.enqueue(self.depositors, move |v| v.state().len() < cap);
            enter(ctx, events::DEPOSIT, &[value]);
            sc.state(|q| q.push_back(value));
            exit(ctx, events::DEPOSIT, &[value]);
        });
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        request(ctx, events::REMOVE, &[]);
        self.ser.enter(ctx, |sc| {
            sc.enqueue(self.removers, |v| !v.state().is_empty());
            let value = sc.state(|q| q.pop_front()).expect("guard ensured an item");
            enter(ctx, events::REMOVE, &[value]);
            exit(ctx, events::REMOVE, &[value]);
            value
        })
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::Serializer,
            vec![
                ImplUnit::new("buffer-mutex", "serializer:possession"),
                ImplUnit::new("not-full", "guard:len<capacity"),
                ImplUnit::new("not-empty", "guard:nonempty"),
            ],
            &[(InfoType::LocalState, Directness::Direct)],
        )
    }
}

/// Version-2 path-expression solution: `path N : (deposit ; remove) end`.
/// The numeric operator admits up to N concurrent deposit→remove cycles —
/// precisely the buffer bound — so the fill level lives in the path state
/// rather than in resource variables. Deposits (and removes) may overlap
/// each other, so the store itself is an order-preserving queue guarded by
/// a plain lock (the resource's own integrity, not synchronization).
pub struct PathBuffer {
    paths: PathResource,
    items: Mutex<VecDeque<i64>>,
    capacity: usize,
}

impl PathBuffer {
    /// Creates an empty buffer with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        PathBuffer {
            paths: PathResource::parse(
                "buffer",
                &format!("path {capacity} : (deposit ; remove) end"),
            )
            .expect("static path source"),
            items: Mutex::new(VecDeque::new()),
            capacity,
        }
    }
}

impl BoundedBuffer for PathBuffer {
    fn deposit(&self, ctx: &Ctx, value: i64) {
        request(ctx, events::DEPOSIT, &[value]);
        self.paths.perform(ctx, "deposit", || {
            enter(ctx, events::DEPOSIT, &[value]);
            self.items.lock().push_back(value);
            exit(ctx, events::DEPOSIT, &[value]);
        });
    }

    fn remove(&self, ctx: &Ctx) -> i64 {
        request(ctx, events::REMOVE, &[]);
        self.paths.perform(ctx, "remove", || {
            let value = self
                .items
                .lock()
                .pop_front()
                .expect("path pairs removes with deposits");
            enter(ctx, events::REMOVE, &[value]);
            exit(ctx, events::REMOVE, &[value]);
            value
        })
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn desc(&self) -> SolutionDesc {
        base_desc(
            MechanismId::PathV2,
            vec![
                ImplUnit::new("buffer-mutex", "path:cycle-pairing"),
                ImplUnit::new("not-full", "path:numeric-bound"),
                ImplUnit::new("not-empty", "path:deposit;remove-sequencing"),
            ],
            &[(InfoType::LocalState, Directness::Indirect)],
        )
    }
}

/// Fresh instance of the solution for `mechanism`.
///
/// # Panics
///
/// Panics for [`MechanismId::PathV1`]: version-1 path expressions cannot
/// bound the fill level (the expressiveness gap the paper reports the
/// numeric operator was invented to fix).
pub fn make(mechanism: MechanismId, capacity: usize) -> Arc<dyn BoundedBuffer> {
    match mechanism {
        MechanismId::Semaphore => Arc::new(SemaphoreBuffer::new(capacity)),
        MechanismId::Monitor => Arc::new(MonitorBuffer::new(capacity)),
        MechanismId::Serializer => Arc::new(SerializerBuffer::new(capacity)),
        MechanismId::PathV2 => Arc::new(PathBuffer::new(capacity)),
        MechanismId::Csp => Arc::new(crate::csp::CspBuffer::new(capacity)),
        MechanismId::PathV1 => {
            panic!("bounded buffer is inexpressible in v1 path expressions (paper §5.1)")
        }
        MechanismId::PathV3 => {
            panic!("use the v2 numeric-operator solution; v3 predicates add nothing here")
        }
    }
}

/// The mechanisms with a bounded-buffer solution.
pub const MECHANISMS: [MechanismId; 5] = [
    MechanismId::Semaphore,
    MechanismId::Monitor,
    MechanismId::Serializer,
    MechanismId::PathV2,
    MechanismId::Csp,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::buffer_scenario;
    use bloom_core::checks::{check_all_served, check_buffer_bounds, expect_clean};
    use bloom_core::events::extract;

    #[test]
    fn all_mechanisms_respect_capacity_and_liveness() {
        for mech in MECHANISMS {
            for seed in [None, Some(4), Some(5)] {
                let (report, sent, received) = buffer_scenario(mech, 3, 2, 2, 6, seed);
                let events = extract(&report.trace);
                expect_clean(
                    &check_buffer_bounds(&events, events::DEPOSIT, events::REMOVE, 3),
                    &format!("{mech} bounds (seed {seed:?})"),
                );
                expect_clean(&check_all_served(&events), &format!("{mech} liveness"));
                let mut s = sent;
                let mut r = received;
                s.sort_unstable();
                r.sort_unstable();
                assert_eq!(
                    s, r,
                    "{mech}: every deposited value is removed exactly once"
                );
            }
        }
    }

    #[test]
    fn capacity_one_behaves_like_one_slot() {
        for mech in MECHANISMS {
            let (report, _, _) = buffer_scenario(mech, 1, 1, 1, 8, None);
            let events = extract(&report.trace);
            expect_clean(
                &check_buffer_bounds(&events, events::DEPOSIT, events::REMOVE, 1),
                &format!("{mech} capacity-1 bounds"),
            );
        }
    }

    #[test]
    fn single_threaded_fifo_order_is_preserved() {
        // One producer, one consumer: FIFO data order must hold exactly.
        for mech in MECHANISMS {
            let (_, sent, received) = buffer_scenario(mech, 4, 1, 1, 10, None);
            assert_eq!(sent, received, "{mech}: FIFO order");
        }
    }

    #[test]
    fn path_v1_is_rejected_with_the_papers_reason() {
        let err = std::panic::catch_unwind(|| {
            let _ = make(MechanismId::PathV1, 3);
        })
        .expect_err("must panic");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("inexpressible"), "got: {msg}");
    }

    #[test]
    fn descriptions_cover_all_three_constraints() {
        for mech in MECHANISMS {
            let desc = make(mech, 3).desc();
            for c in ["buffer-mutex", "not-full", "not-empty"] {
                assert!(desc.constraints().contains(c), "{mech} missing {c}");
            }
        }
    }
}
