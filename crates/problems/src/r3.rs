//! R3 scenarios: the paper's failure stories under generated load.
//!
//! R2 established *that* the weak semaphore starves a writer and *that*
//! the nested monitor deadlocks — on populations of three. This module
//! rebuilds those two scenarios on top of the [`crate::workload`] DSL so
//! the question becomes *at what rate* they manifest across sampled
//! schedules of populations up to ~1000 processes, where the schedule
//! tree is far beyond the DFS explorers. The scenarios are designed for
//! the sampler ([`bloom_sim::Sampler`]) plus the law layer
//! ([`bloom_core::laws`]); each has a companion `*_laws()` set naming
//! exactly the invariants the R3 report measures.
//!
//! Two design rules keep thousand-process trees tractable and honest:
//!
//! * **Pollers spin briefly, then sleep.** A failed `try_p` is retried
//!   through [`SPIN_POLLS`] yields — staying runnable is what lets a
//!   barger outrace the woken writer at a release point, the §5.1
//!   dynamic under study — and then backs off with `sleep(1)`. The
//!   bounded spin is load-bearing twice over: sleeping pollers leave
//!   the ready set, so the permit holder always gets dispatched within
//!   a bounded number of steps even when a PCT change point demotes it
//!   (an unbounded spin would turn the demotion into a livelock, an
//!   artifact of the harness rather than a bug of the mechanism), and
//!   it keeps a burst's step cost proportional to the burst size, not
//!   the population size.
//! * **Contention windows scale with the active set.** The writer's
//!   patience schedule and the kernel watchdog bound are derived from
//!   the workload's expected concurrently-active client count
//!   ([`active_hint`]), preserving R2's calibration logic: the bound
//!   sits far above any wait a FIFO discipline can produce, far below
//!   the barge-forever horizon.
//!
//! Holders *sleep inside the critical section*. A holder that merely
//! yields is redispatched immediately under a priority sampler (it is
//! still the best ready process), so no other process ever observes the
//! permit held and the run serializes into zero contention. Sleeping
//! forces the holder off the CPU for a tick, which is what creates the
//! release-point races the scenario exists to measure.
//!
//! Under the strong semaphore the writer still structurally cannot
//! starve: it is the only *queued* waiter (pollers never enqueue),
//! queued waiters make `try_p` fail, and `V` is a direct hand-off — the
//! first release after the writer enqueues transfers the permit to it
//! no matter which barger is runnable. Giving up would need the whole
//! 15×base retry budget to elapse with no release at all, impossible
//! while readers still cycle the permit. The measured strong-semaphore
//! violation rate is therefore exactly 0, and the weak rate is pure
//! barging probability — the paper's §5.1 distinction, now
//! quantitative.

use crate::events::{READ, USE, WRITE};
use crate::liveness::LiveMechanism;
use crate::workload::WorkloadSpec;
use bloom_core::events::{enter, exit, request};
use bloom_core::laws::{no_failure, starvation_free, LawSet};
use bloom_monitor::{Cond, Monitor};
use bloom_semaphore::{Semaphore, TryResult};
use bloom_sim::{Sim, SimConfig};
use std::sync::Arc;

/// Expected concurrently-active client count of a workload: the burst
/// size for bursty arrivals, the whole population when everybody arrives
/// together, and a small constant for trickle arrivals. The contention
/// calibration below scales with this, not with the population.
pub fn active_hint(spec: &WorkloadSpec) -> usize {
    use crate::workload::Arrival;
    match spec.arrival_pattern() {
        Arrival::Together => spec.client_count(),
        Arrival::Bursts { size, .. } => size.min(spec.client_count()),
        Arrival::Staggered { .. } | Arrival::Poisson { .. } => 8.min(spec.client_count().max(1)),
    }
}

/// Failed polls a reader retries while staying runnable before backing
/// off with `sleep(1)` (see the module docs for why the spin must be
/// bounded and why it must exist at all).
pub const SPIN_POLLS: u32 = 6;

/// One honest service interval for a workload's active set, the unit
/// the patience schedule and watchdog bound are calibrated in. Timers
/// fire only when the ready set drains, and the ready set drains once
/// per critical section — after every active poller has burned its
/// [`SPIN_POLLS`] spin budget — so the shortest wait a *served* writer
/// experiences is about `(SPIN_POLLS + 1) × active` ticks, plus slack
/// for the holder's own steps. A patience below this misreads FIFO
/// hand-off latency as starvation (the strong semaphore would "time
/// out" while being served in order); everything below sits above it.
fn service_interval(spec: &WorkloadSpec) -> u64 {
    (SPIN_POLLS as u64 + 2) * active_hint(spec) as u64 + 16
}

/// The writer's patience schedule for a workload: four exponentially
/// growing attempts starting at one [`service_interval`] — R2's
/// `ATTEMPTS = [4, 8, 16, 32]` re-derived for populations where a
/// single hand-off costs the active set's whole spin budget.
pub fn writer_attempts(spec: &WorkloadSpec) -> [u64; 4] {
    let base = service_interval(spec);
    [base, 2 * base, 4 * base, 8 * base]
}

/// The kernel starvation-watchdog bound for a workload: 6× the patience
/// base, preserving R2's calibration ratio — several service intervals
/// above any wait a FIFO hand-off can produce (one interval, two when a
/// priority sampler demotes the holder), below the writer's total retry
/// budget (15× base).
pub fn starvation_bound(spec: &WorkloadSpec) -> u64 {
    6 * service_interval(spec)
}

fn scale_config(spec: &WorkloadSpec) -> SimConfig {
    SimConfig {
        // Room for a thousand-client population's polling; the default
        // budget is calibrated for the R1/R2 miniatures.
        max_steps: 4_000_000 + 4_000 * spec.client_count() as u64,
        // Scheduler events and footprint quanta are exploration/debug
        // aids; at 1000 clients they dominate memory for no R3 benefit.
        record_sched_events: false,
        ..SimConfig::default()
    }
}

/// Builds the scaled weak/strong-semaphore starvation scenario: the
/// population of readers described by `spec` cycles a one-permit
/// semaphore as polling bargers (sleep-backoff, see the module docs)
/// while a single writer runs the [`writer_attempts`] retry schedule
/// under a [`starvation_bound`] watchdog, emitting `retry:res` per
/// timeout and `gave-up:res` when the budget runs dry.
///
/// Check it against [`starvation_laws`].
pub fn starvation_at_scale(mech: LiveMechanism, spec: &WorkloadSpec) -> Sim {
    let mut sim = Sim::with_config(scale_config(spec));
    sim.set_record_quanta(false);
    sim.set_starvation_bound(starvation_bound(spec));
    let sem = Arc::new(match mech {
        LiveMechanism::SemaphoreWeak => Semaphore::weak("res", 1),
        _ => Semaphore::strong("res", 1),
    });
    for plan in spec.plans() {
        let s = Arc::clone(&sem);
        sim.spawn(&format!("reader{}", plan.index), move |ctx| {
            if plan.start > 0 {
                ctx.sleep(plan.start);
            }
            for (round, &think) in plan.thinks.iter().enumerate() {
                request(ctx, READ, &[round as i64]);
                // A polling barger: spin a bounded number of yields (so a
                // release point can be outraced), then back off with a
                // sleep (so a demoted holder can still run).
                let mut failed = 0u32;
                while !s.try_p() {
                    failed += 1;
                    if failed.is_multiple_of(SPIN_POLLS) {
                        ctx.sleep(1);
                    } else {
                        ctx.yield_now();
                    }
                }
                enter(ctx, READ, &[round as i64]);
                // Hold across a *sleep*, not a yield: the holder must
                // leave the CPU so contenders can observe the permit
                // held (see the module docs).
                ctx.sleep(1);
                exit(ctx, READ, &[round as i64]);
                s.v(ctx);
                if think > 0 {
                    ctx.sleep(think);
                } else {
                    ctx.yield_now();
                }
            }
        });
    }
    let s = Arc::clone(&sem);
    let attempts = writer_attempts(spec);
    sim.spawn("writer", move |ctx| {
        // Request under *steady-state* contention, not during the
        // cold-start transient. When a burst of fresh clients activates
        // under a priority sampler, each newly scheduled client burns
        // its spin budget and sleeps while a fresh ready client always
        // remains, so no timer drain occurs until the whole burst has
        // activated — a one-off hand-off latency of the whole
        // activation chain that is startup cost, not starvation.
        // Sleeping here parks the writer until the first drain, which
        // is exactly the end of that transient.
        ctx.sleep(1);
        request(ctx, WRITE, &[]);
        for (attempt, &patience) in attempts.iter().enumerate() {
            match s.p_by(ctx, patience) {
                TryResult::Acquired => {
                    enter(ctx, WRITE, &[]);
                    ctx.yield_now();
                    exit(ctx, WRITE, &[]);
                    s.v(ctx);
                    return;
                }
                TryResult::TimedOut => {
                    ctx.emit("retry:res", &[attempt as i64 + 1]);
                }
            }
        }
        ctx.emit("gave-up:res", &[]);
    });
    sim
}

/// The invariants the starvation scenario is sampled against:
/// starvation-freedom (watchdog flags, `gave-up:`) and run success.
pub fn starvation_laws() -> LawSet {
    LawSet::new().with(starvation_free()).with(no_failure())
}

/// Builds the scaled nested-monitor scenario: Lister's nester/helper
/// race from R2. If the nester takes the outer monitor first, it waits
/// on the inner condition *while keeping outer possession* and the
/// helper blocks behind it on outer entry — the signal that would free
/// the nester can never be delivered, and the cycle is closed. If the
/// helper wins the race it sets the flag first and both complete. The
/// race is embedded in a `spec`-shaped population of bystander workers,
/// with **deadlock recovery off** so a closed cycle reports
/// [`bloom_sim::SimErrorKind::Deadlock`]; the sampled no-deadlock
/// violation rate is the probability the nester wins the race, measured
/// across the population's schedule noise.
///
/// Check it against [`nested_monitor_laws`].
pub fn nested_monitor_at_scale(spec: &WorkloadSpec) -> Sim {
    let mut sim = Sim::with_config(scale_config(spec));
    sim.set_record_quanta(false);
    let outer = Arc::new(Monitor::mesa("outer", ()));
    let inner = Arc::new(Monitor::mesa("inner", false));
    let ready = Arc::new(Cond::new("ready"));
    inner.register_cond(&ready);
    let (o, i, c) = (Arc::clone(&outer), Arc::clone(&inner), Arc::clone(&ready));
    sim.spawn("nester", move |ctx| {
        request(ctx, USE, &[0]);
        o.enter(ctx, |_| {
            i.enter(ctx, |ic| {
                while !ic.state(|b| *b) {
                    ic.wait(&c);
                }
            });
            enter(ctx, USE, &[0]);
            exit(ctx, USE, &[0]);
        });
    });
    let (o, i, c) = (Arc::clone(&outer), Arc::clone(&inner), Arc::clone(&ready));
    sim.spawn("helper", move |ctx| {
        ctx.yield_now();
        let _ = o.try_enter(ctx, |_| {
            i.enter(ctx, |ic| {
                ic.state(|b| *b = true);
                ic.signal(&c);
            });
        });
    });
    // The population: bystander workers whose arrival and think noise is
    // what perturbs the nester/helper race at scale.
    for plan in spec.plans() {
        sim.spawn(&format!("worker{}", plan.index), move |ctx| {
            if plan.start > 0 {
                ctx.sleep(plan.start);
            }
            for &think in &plan.thinks {
                ctx.yield_now();
                if think > 0 {
                    ctx.sleep(think);
                }
            }
        });
    }
    sim
}

/// The invariant the nested-monitor scenario is sampled against: the
/// run must not deadlock.
pub fn nested_monitor_laws() -> LawSet {
    LawSet::new().with(no_failure())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Arrival, Think};
    use bloom_sim::{replay_exact, ExploreConfig, SampleStrategy};

    fn small_spec() -> WorkloadSpec {
        // Back-to-back operations (no think time) keep the released
        // reader runnable at the very release points the writer races.
        WorkloadSpec::new(21)
            .clients(6)
            .ops(8)
            .arrival(Arrival::Together)
            .think(Think::None)
    }

    #[test]
    fn strong_semaphore_never_violates_at_small_scale() {
        let spec = small_spec();
        let laws = starvation_laws();
        let (_, stats) = ExploreConfig::new(0).sample(
            SampleStrategy::Walk,
            20,
            77,
            || starvation_at_scale(LiveMechanism::SemaphoreStrong, &spec),
            |_, result| ((), laws.violated(result)),
        );
        let sampling = stats.sampling.expect("sampler stats");
        assert_eq!(sampling.runs, 20);
        assert_eq!(
            sampling.distinct_violations(),
            0,
            "strong hand-off must defeat every sampled barging schedule: {:?}",
            sampling.violations
        );
    }

    #[test]
    fn weak_semaphore_starves_under_some_sampled_schedule() {
        let spec = small_spec();
        let laws = starvation_laws();
        let (journal, stats) = ExploreConfig::new(0).sample(
            SampleStrategy::Pct {
                change_points: 4,
                depth_hint: 256,
            },
            40,
            1,
            || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
            |_, result| ((), laws.violated(result)),
        );
        let sampling = stats.sampling.expect("sampler stats");
        let hits = sampling
            .violations
            .get("starvation-free")
            .copied()
            .unwrap_or(0);
        assert!(
            hits > 0,
            "PCT must find writer starvation; got {:?}",
            sampling.violations
        );
        // Every journaled schedule replays exactly (hard-error contract).
        for record in journal.iter().take(3) {
            replay_exact(
                || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
                &record.choices,
            )
            .expect("scenario completes");
        }
    }

    #[test]
    fn nested_monitor_race_deadlocks_at_a_sampled_rate() {
        let spec = WorkloadSpec::new(5)
            .clients(4)
            .ops(2)
            .think(Think::Fixed(2));
        let laws = nested_monitor_laws();
        let (_, stats) = ExploreConfig::new(0).sample(
            SampleStrategy::Walk,
            40,
            3,
            || nested_monitor_at_scale(&spec),
            |_, result| ((), laws.violated(result)),
        );
        let sampling = stats.sampling.expect("sampler stats");
        let hits = sampling.violations.get("no-deadlock").copied().unwrap_or(0);
        assert!(hits > 0, "the race must close in some sampled schedule");
        assert!(
            hits < sampling.runs as u64,
            "and stay open in others ({hits}/{})",
            sampling.runs
        );
    }

    #[test]
    fn calibration_scales_with_the_active_set_not_the_population() {
        let burst = WorkloadSpec::new(1)
            .clients(1000)
            .arrival(Arrival::Bursts { size: 16, gap: 500 });
        assert_eq!(active_hint(&burst), 16);
        let together = WorkloadSpec::new(1).clients(100);
        assert_eq!(active_hint(&together), 100);
        assert!(writer_attempts(&burst)[0] < writer_attempts(&together)[0]);
        assert!(starvation_bound(&burst) > writer_attempts(&burst)[1]);
        assert!(starvation_bound(&burst) < writer_attempts(&burst).iter().sum::<u64>());
    }
}
