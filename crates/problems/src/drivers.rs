//! Scenario drivers: spawn workloads against a solution and return the
//! trace for checking.
//!
//! Every driver is deterministic given its arguments: `seed = None` uses
//! the FIFO policy, `Some(s)` the seeded random policy. Tests sweep seeds;
//! benches fix one.

use crate::{alarm, buffer, disk, fcfs, oneslot, rw};
use bloom_core::MechanismId;
use bloom_sim::{RandomPolicy, Sim, SimReport};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn new_sim(seed: Option<u64>) -> Sim {
    let mut sim = Sim::new();
    if let Some(s) = seed {
        sim.set_policy(RandomPolicy::new(s));
    }
    sim
}

/// One producer deposits `0..n_values`, one consumer removes them all.
pub fn oneslot_scenario(mech: MechanismId, n_values: i64, seed: Option<u64>) -> SimReport {
    let mut sim = new_sim(seed);
    let buf = oneslot::make(mech);
    let b = Arc::clone(&buf);
    sim.spawn("consumer", move |ctx| {
        for _ in 0..n_values {
            b.remove(ctx);
            ctx.yield_now();
        }
    });
    let b = Arc::clone(&buf);
    sim.spawn("producer", move |ctx| {
        for v in 0..n_values {
            b.deposit(ctx, v);
            ctx.yield_now();
        }
    });
    sim.run()
        .unwrap_or_else(|e| panic!("oneslot/{mech} (seed {seed:?}): {e}"))
}

/// `producers`×`per_producer` deposits against matching removes over a
/// buffer of `capacity`. Returns the report and the multiset check data
/// `(sent, received)`.
pub fn buffer_scenario(
    mech: MechanismId,
    capacity: usize,
    producers: usize,
    consumers: usize,
    per_producer: usize,
    seed: Option<u64>,
) -> (SimReport, Vec<i64>, Vec<i64>) {
    assert_eq!(
        producers * per_producer % consumers,
        0,
        "consumers must evenly divide total items"
    );
    let mut sim = new_sim(seed);
    let buf = buffer::make(mech, capacity);
    let sent = Arc::new(Mutex::new(Vec::new()));
    let received = Arc::new(Mutex::new(Vec::new()));
    for p in 0..producers {
        let b = Arc::clone(&buf);
        let sent = Arc::clone(&sent);
        sim.spawn(&format!("producer{p}"), move |ctx| {
            for i in 0..per_producer {
                let v = (p * per_producer + i) as i64;
                b.deposit(ctx, v);
                sent.lock().push(v);
                ctx.yield_now();
            }
        });
    }
    let per_consumer = producers * per_producer / consumers;
    for c in 0..consumers {
        let b = Arc::clone(&buf);
        let received = Arc::clone(&received);
        sim.spawn(&format!("consumer{c}"), move |ctx| {
            for _ in 0..per_consumer {
                let v = b.remove(ctx);
                received.lock().push(v);
                ctx.yield_now();
            }
        });
    }
    let report = sim
        .run()
        .unwrap_or_else(|e| panic!("buffer/{mech} (seed {seed:?}): {e}"));
    let sent = sent.lock().clone();
    let received = received.lock().clone();
    (report, sent, received)
}

/// `n_workers` each use the FCFS resource `uses_each` times with varying
/// think times.
pub fn fcfs_scenario(
    mech: MechanismId,
    n_workers: usize,
    uses_each: usize,
    seed: Option<u64>,
) -> SimReport {
    let mut sim = new_sim(seed);
    let res = fcfs::make(mech);
    for w in 0..n_workers {
        let r = Arc::clone(&res);
        sim.spawn(&format!("worker{w}"), move |ctx| {
            for _ in 0..uses_each {
                r.with_resource(ctx, &mut || {
                    ctx.yield_now(); // hold the resource across a quantum
                });
                for _ in 0..(w % 3) {
                    ctx.yield_now(); // staggered think time
                }
            }
        });
    }
    sim.run()
        .unwrap_or_else(|e| panic!("fcfs/{mech} (seed {seed:?}): {e}"))
}

/// Mixed readers/writers workload against a given variant's solution.
pub fn rw_scenario(
    mech: MechanismId,
    variant: rw::RwVariant,
    readers: usize,
    writers: usize,
    ops_each: usize,
    seed: Option<u64>,
) -> SimReport {
    let mut sim = new_sim(seed);
    let db = rw::make(mech, variant);
    for r in 0..readers {
        let db = Arc::clone(&db);
        sim.spawn(&format!("reader{r}"), move |ctx| {
            for _ in 0..ops_each {
                db.read(ctx, &mut || ctx.yield_now());
                for _ in 0..(r % 2) {
                    ctx.yield_now();
                }
            }
        });
    }
    for w in 0..writers {
        let db = Arc::clone(&db);
        sim.spawn(&format!("writer{w}"), move |ctx| {
            for _ in 0..ops_each {
                db.write(ctx, &mut || ctx.yield_now());
                ctx.yield_now();
            }
        });
    }
    sim.run()
        .unwrap_or_else(|e| panic!("rw-{variant:?}/{mech} (seed {seed:?}): {e}"))
}

/// `n_requests` seeks at seeded-random tracks, issued by several processes
/// with random pauses, against the disk scheduler.
pub fn disk_scenario(
    mech: MechanismId,
    n_processes: usize,
    seeks_each: usize,
    workload_seed: u64,
    sched_seed: Option<u64>,
) -> SimReport {
    let mut sim = new_sim(sched_seed);
    let disk = disk::make(mech);
    for p in 0..n_processes {
        let d = Arc::clone(&disk);
        let mut rng = StdRng::seed_from_u64(workload_seed.wrapping_add(p as u64));
        sim.spawn(&format!("client{p}"), move |ctx| {
            for _ in 0..seeks_each {
                let track = rng.gen_range(0..200);
                d.seek(ctx, track, &mut || {});
                let pause = rng.gen_range(0..3);
                for _ in 0..pause {
                    ctx.yield_now();
                }
            }
        });
    }
    sim.run()
        .unwrap_or_else(|e| panic!("disk/{mech} (workload {workload_seed}): {e}"))
}

/// Sleepers request seeded-random wake-up delays while a ticker advances
/// the logical clock.
pub fn alarm_scenario(
    mech: MechanismId,
    n_sleepers: usize,
    workload_seed: u64,
    sched_seed: Option<u64>,
) -> SimReport {
    let mut sim = new_sim(sched_seed);
    let clock = alarm::make(mech);
    let mut rng = StdRng::seed_from_u64(workload_seed);
    for s in 0..n_sleepers {
        let c = Arc::clone(&clock);
        let delay = rng.gen_range(1..30i64);
        sim.spawn(&format!("sleeper{s}"), move |ctx| {
            c.wake_me(ctx, delay);
        });
    }
    let c = Arc::clone(&clock);
    sim.spawn_daemon("ticker", move |ctx| loop {
        ctx.sleep(2);
        c.tick(ctx);
    });
    sim.run()
        .unwrap_or_else(|e| panic!("alarm/{mech} (workload {workload_seed}): {e}"))
}
