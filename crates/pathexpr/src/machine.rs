//! The multi-path runtime: [`PathResource`].
//!
//! A resource is governed by the *conjunction* of several paths: an
//! operation may start only when **every** path naming it has an enabled
//! occurrence, and starting consumes tokens in all of them atomically.
//! Blocked requests wait in one global FIFO; whenever the machine state
//! changes, the queue is re-scanned in arrival order and the
//! longest-waiting request whose operation became startable is resumed —
//! implementing the selection assumption Bloom makes explicit in §5.1
//! ("the selection operator always chooses the process that has been
//! waiting longest").

use crate::ast::Path;
use crate::compile::{compile, CompiledPath, PathState};
use crate::parse::{parse_paths, ParseError};
use bloom_sim::{Access, Ctx, Deadline, ObjId, Pid, Poisoned};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// The occurrence choice made in each path when an operation started;
/// needed again at exit to apply the matching put ports.
type Activation = Vec<(usize, usize)>;

#[derive(Debug)]
struct Blocked {
    pid: Pid,
    op: String,
}

/// Synchronization-state snapshot passed to version-3 predicates.
///
/// This is the Andler extension the paper cites as the version "closest
/// to satisfying our requirements": boolean predicates over counts and
/// state variables attached to operations. Note that [`PredicateView::blocked`]
/// counts the requesting process itself once it has been queued (i.e.
/// during re-scans), but not on its first admission attempt.
#[derive(Debug)]
pub struct PredicateView<'a> {
    active: &'a BTreeMap<String, usize>,
    blocked: &'a VecDeque<Blocked>,
    completed: &'a BTreeMap<String, u64>,
    vars: &'a BTreeMap<String, i64>,
}

impl PredicateView<'_> {
    /// Executions of `op` currently in progress.
    pub fn active(&self, op: &str) -> usize {
        self.active.get(op).copied().unwrap_or(0)
    }

    /// Requests for `op` currently blocked.
    pub fn blocked(&self, op: &str) -> usize {
        self.blocked.iter().filter(|b| b.op == op).count()
    }

    /// Executions of `op` completed so far (history information).
    pub fn completed(&self, op: &str) -> u64 {
        self.completed.get(op).copied().unwrap_or(0)
    }

    /// A state variable's value (0 if never written).
    pub fn var(&self, name: &str) -> i64 {
        self.vars.get(name).copied().unwrap_or(0)
    }
}

type Predicate = Box<dyn Fn(&PredicateView<'_>) -> bool + Send>;
type VarUpdate = Box<dyn Fn(&mut BTreeMap<String, i64>) + Send>;

struct Machine {
    compiled: Vec<CompiledPath>,
    states: Vec<PathState>,
    /// Global FIFO of blocked requests, in arrival order.
    blocked: VecDeque<Blocked>,
    /// Stack of open activations per process (operations nest: a path
    /// procedure may invoke further operations of the same resource).
    open: HashMap<Pid, Vec<(String, Activation)>>,
    /// Number of executions of each operation currently in progress.
    active: BTreeMap<String, usize>,
    /// Completed executions per operation (for v3 predicates).
    completed: BTreeMap<String, u64>,
    /// Andler state variables (v3).
    vars: BTreeMap<String, i64>,
    /// v3 predicates per operation: all must hold for the op to start.
    predicates: HashMap<String, Vec<Predicate>>,
    /// v3 state-variable updates, run at enter/exit of their operation.
    on_enter: HashMap<String, Vec<VarUpdate>>,
    on_exit: HashMap<String, Vec<VarUpdate>>,
}

impl Machine {
    /// Finds an enabled occurrence in every path that names `op`, subject
    /// to the operation's v3 predicates.
    fn try_activation(&self, op: &str) -> Option<Activation> {
        if let Some(preds) = self.predicates.get(op) {
            let view = PredicateView {
                active: &self.active,
                blocked: &self.blocked,
                completed: &self.completed,
                vars: &self.vars,
            };
            if !preds.iter().all(|p| p(&view)) {
                return None;
            }
        }
        let mut act = Vec::new();
        for (pi, compiled) in self.compiled.iter().enumerate() {
            if let Some(occs) = compiled.occurrences.get(op) {
                let state = &self.states[pi];
                let choice = occs
                    .iter()
                    .position(|occ| state.can_take(compiled, occ.take))?;
                act.push((pi, choice));
            }
        }
        Some(act)
    }

    fn apply_enter(&mut self, op: &str, act: &Activation) {
        for &(pi, oi) in act {
            let occ = self.compiled[pi].occurrences[op][oi];
            self.states[pi].take(&self.compiled[pi], occ.take);
        }
        *self.active.entry(op.to_string()).or_insert(0) += 1;
        if let Some(updates) = self.on_enter.get(op) {
            for update in updates {
                update(&mut self.vars);
            }
        }
    }

    fn apply_exit(&mut self, op: &str, act: &Activation) {
        for &(pi, oi) in act {
            let occ = self.compiled[pi].occurrences[op][oi];
            self.states[pi].put(&self.compiled[pi], occ.put);
        }
        let n = self
            .active
            .get_mut(op)
            .expect("exit of op that never started");
        *n -= 1;
        *self.completed.entry(op.to_string()).or_insert(0) += 1;
        if let Some(updates) = self.on_exit.get(op) {
            for update in updates {
                update(&mut self.vars);
            }
        }
    }

    /// Starts every blocked request that has become startable, oldest
    /// first, restarting the scan after each start (starting one request —
    /// e.g. opening a burst — can enable another). Returns the pids to
    /// unpark, in start order.
    ///
    /// `is_parked` guards against the timed-wait race: an entry whose
    /// process already woke by timeout (runnable, but not yet dispatched to
    /// withdraw its request) is *skipped, not granted* — the process will
    /// report the timeout and must not be charged an activation it will
    /// never finish. Its entry stays queued for its own withdrawal.
    fn drain_startable(&mut self, is_parked: &dyn Fn(Pid) -> bool) -> Vec<Pid> {
        let mut woken = Vec::new();
        loop {
            let found = self
                .blocked
                .iter()
                .enumerate()
                .filter(|(_, b)| is_parked(b.pid))
                .find_map(|(i, b)| self.try_activation(&b.op).map(|act| (i, act)));
            match found {
                Some((i, act)) => {
                    let b = self.blocked.remove(i).expect("index valid");
                    self.apply_enter(&b.op, &act);
                    self.open.entry(b.pid).or_default().push((b.op, act));
                    woken.push(b.pid);
                }
                None => return woken,
            }
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("paths", &self.compiled.len())
            .field("blocked", &self.blocked.len())
            .field("active", &self.active)
            .finish()
    }
}

/// A shared resource whose synchronization is specified by path expressions.
///
/// # Example
///
/// ```
/// use bloom_pathexpr::PathResource;
/// use bloom_sim::Sim;
/// use std::sync::Arc;
///
/// let mut sim = Sim::new();
/// // The paper's one-slot buffer: deposits and removes strictly alternate.
/// let buf = Arc::new(PathResource::parse("slot", "path deposit ; remove end").unwrap());
///
/// let b = Arc::clone(&buf);
/// sim.spawn("consumer", move |ctx| {
///     b.perform(ctx, "remove", || { /* take the value */ });
/// });
/// let b = Arc::clone(&buf);
/// sim.spawn("producer", move |ctx| {
///     b.perform(ctx, "deposit", || { /* store the value */ });
/// });
/// // The consumer arrived first but the path forces deposit before remove.
/// sim.run().unwrap();
/// ```
///
/// # Crash safety
///
/// A process dying (fault-plan kill or panic) *mid-operation* — between
/// the paths granting its start and its finish — poisons the resource:
/// the path states have consumed tokens that will never be put back, so
/// every constraint downstream of the dead operation is unsatisfiable.
/// The poison wakes all blocked requests; they (and later requesters)
/// observe a [`Poisoned`] verdict from [`PathResource::try_perform`],
/// while plain [`PathResource::perform`] panics, keeping the failure
/// loud. A process dying while *blocked* (its operation never started)
/// is simply removed from the request queue — the resource stays healthy.
#[derive(Debug)]
pub struct PathResource {
    name: String,
    /// Identity for object-granular dependency tracking.
    obj: ObjId,
    machine: Mutex<Machine>,
    /// Set when a process died mid-operation; sticky once set.
    poisoned: Mutex<Option<Poisoned>>,
}

impl PathResource {
    /// Builds a resource from already-parsed paths.
    pub fn from_paths(name: &str, paths: &[Path]) -> Self {
        let compiled: Vec<CompiledPath> = paths.iter().map(compile).collect();
        let states = compiled.iter().map(PathState::new).collect();
        PathResource {
            name: name.to_string(),
            obj: ObjId::new("pathexpr", name),
            machine: Mutex::new(Machine {
                compiled,
                states,
                blocked: VecDeque::new(),
                open: HashMap::new(),
                active: BTreeMap::new(),
                completed: BTreeMap::new(),
                vars: BTreeMap::new(),
                predicates: HashMap::new(),
                on_enter: HashMap::new(),
                on_exit: HashMap::new(),
            }),
            poisoned: Mutex::new(None),
        }
    }

    /// Parses one or more `path … end` declarations and builds the resource.
    pub fn parse(name: &str, source: &str) -> Result<Self, ParseError> {
        Ok(PathResource::from_paths(name, &parse_paths(source)?))
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executes `body` as operation `op`, blocking until every path
    /// naming `op` permits it to start.
    ///
    /// Operations may nest: `body` may itself call `perform` on the same
    /// resource (path procedures invoking other procedures, as in the
    /// paper's Figure 1 where `requestwrite = begin openwrite end`).
    /// An operation named in no path is unconstrained.
    ///
    /// # Panics
    ///
    /// Panics if the resource is poisoned (a process died mid-operation).
    /// Use [`PathResource::try_perform`] to handle poisoning as a value.
    pub fn perform<R>(&self, ctx: &Ctx, op: &str, body: impl FnOnce() -> R) -> R {
        match self.try_perform(ctx, op, body) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Like [`PathResource::perform`], but surfaces poisoning as a value
    /// instead of panicking. The operation is not started on a poisoned
    /// resource.
    pub fn try_perform<R>(
        &self,
        ctx: &Ctx,
        op: &str,
        body: impl FnOnce() -> R,
    ) -> Result<R, Poisoned> {
        self.begin_checked(ctx, op)?;
        // From here we hold an activation: dying inside the body leaves
        // tokens consumed forever, so the unwind must poison the resource.
        let cleanup = PoisonOnUnwind { res: self, ctx };
        let r = body();
        std::mem::forget(cleanup);
        self.finish(ctx, op);
        Ok(r)
    }

    /// Starts operation `op` (the first half of [`PathResource::perform`]).
    /// Prefer `perform`; `begin`/`finish` exist for callers whose operation
    /// body does not fit a closure. Note that the `begin`/`finish` form has
    /// no crash protection for the operation body — only `perform`/
    /// `try_perform` poison the resource when the body dies.
    ///
    /// # Panics
    ///
    /// Panics if the resource is (or becomes) poisoned.
    pub fn begin(&self, ctx: &Ctx, op: &str) {
        if let Err(p) = self.begin_checked(ctx, op) {
            panic!("{p}");
        }
    }

    fn begin_checked(&self, ctx: &Ctx, op: &str) -> Result<(), Poisoned> {
        if let Some(p) = self.observe_poison(ctx) {
            return Err(p);
        }
        // Starting (or queuing) mutates the machine.
        ctx.note_sync_obj(&self.obj, Access::Write);
        let started = {
            let mut m = self.machine.lock();
            match m.try_activation(op) {
                Some(act) => {
                    m.apply_enter(op, &act);
                    m.open
                        .entry(ctx.pid())
                        .or_default()
                        .push((op.to_string(), act));
                    true
                }
                None => {
                    m.blocked.push_back(Blocked {
                        pid: ctx.pid(),
                        op: op.to_string(),
                    });
                    false
                }
            }
        };
        if started {
            // Starting can enable blocked peers (opening a burst).
            self.wake_startable(ctx);
            return Ok(());
        }
        // If we die while parked here, our request must not linger in the
        // queue: it can never be granted and poisons nothing.
        let cleanup = UnblockOnUnwind { res: self, ctx };
        ctx.park(&format!("{}.{}", self.name, op));
        std::mem::forget(cleanup);
        // The resumed quantum re-reads the machine (grant-vs-poison
        // disambiguation below) and may dequeue, so it must be marked.
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        // A granting waker applied our enter effects, recorded our
        // activation, and *removed us from the blocked queue* before
        // unparking. A poison broadcast wakes us still-queued instead.
        let still_blocked = {
            let mut m = self.machine.lock();
            let me = ctx.pid();
            let was = m.blocked.iter().any(|b| b.pid == me);
            if was {
                m.blocked.retain(|b| b.pid != me);
            }
            was
        };
        if still_blocked {
            let p = self
                .observe_poison(ctx)
                .expect("woken without grant can only happen on poison");
            return Err(p);
        }
        Ok(())
    }

    /// Timed [`PathResource::begin`]: requests `op`, giving up at
    /// `deadline`. Accepts anything convertible into a [`Deadline`] — a
    /// tick count (`u64`), a `Duration`, or an explicit [`Deadline`].
    /// Returns `true` if the operation started (the caller owes a matching
    /// [`PathResource::finish`]), `false` on timeout — the request was
    /// withdrawn and the queue re-scanned, since `blocked()` predicate
    /// counts just changed and may have enabled another request (the same
    /// rescan a finish performs). An already-expired deadline degenerates
    /// to a single activation attempt: an operation the paths permit right
    /// now still starts, but nothing is queued and no scheduling point is
    /// consumed.
    ///
    /// # Panics
    ///
    /// Panics if the resource is (or becomes) poisoned; use
    /// [`PathResource::request_by_checked`] to handle that as a value.
    pub fn request_by(&self, ctx: &Ctx, op: &str, deadline: impl Into<Deadline>) -> bool {
        match self.request_by_checked(ctx, op, deadline) {
            Ok(started) => started,
            Err(p) => panic!("{p}"),
        }
    }

    /// Like [`PathResource::request_by`], but poisoning — whether it woke
    /// the parked request or arrived with the timeout — is returned as a
    /// value.
    pub fn request_by_checked(
        &self,
        ctx: &Ctx,
        op: &str,
        deadline: impl Into<Deadline>,
    ) -> Result<bool, Poisoned> {
        if let Some(p) = self.observe_poison(ctx) {
            return Err(p);
        }
        let Some(ticks) = ctx.remaining(deadline) else {
            ctx.note_sync_obj(&self.obj, Access::Write);
            let started = self.try_start_now(ctx, op);
            if started {
                self.wake_startable(ctx);
            }
            return Ok(started);
        };
        // Starting (or queuing) mutates the machine.
        ctx.note_sync_obj(&self.obj, Access::Write);
        let started = {
            let mut m = self.machine.lock();
            match m.try_activation(op) {
                Some(act) => {
                    m.apply_enter(op, &act);
                    m.open
                        .entry(ctx.pid())
                        .or_default()
                        .push((op.to_string(), act));
                    true
                }
                None => {
                    m.blocked.push_back(Blocked {
                        pid: ctx.pid(),
                        op: op.to_string(),
                    });
                    false
                }
            }
        };
        if started {
            self.wake_startable(ctx);
            return Ok(true);
        }
        let cleanup = UnblockOnUnwind { res: self, ctx };
        let woken = ctx.park_timeout(&format!("{}.{}", self.name, op), ticks);
        std::mem::forget(cleanup);
        if !woken {
            // Timed out: withdraw. A granting waker cannot have selected us
            // after the timer fired (`drain_startable` skips non-parked
            // entries), so the entry is still ours to remove.
            let me = ctx.pid();
            self.machine.lock().blocked.retain(|b| b.pid != me);
            self.wake_startable(ctx);
            if let Some(p) = self.observe_poison(ctx) {
                return Err(p);
            }
            return Ok(false);
        }
        let still_blocked = {
            let mut m = self.machine.lock();
            let me = ctx.pid();
            let was = m.blocked.iter().any(|b| b.pid == me);
            if was {
                m.blocked.retain(|b| b.pid != me);
            }
            was
        };
        if still_blocked {
            let p = self
                .observe_poison(ctx)
                .expect("woken without grant can only happen on poison");
            return Err(p);
        }
        Ok(true)
    }

    /// Timed [`PathResource::perform`]: runs `body` as `op` if the paths
    /// permit it to start by `deadline`, returning `None` on timeout.
    /// Accepts anything convertible into a [`Deadline`]. Panics on poison
    /// like `perform`; use [`PathResource::try_perform_by`] for the
    /// checked form.
    pub fn perform_by<R>(
        &self,
        ctx: &Ctx,
        op: &str,
        deadline: impl Into<Deadline>,
        body: impl FnOnce() -> R,
    ) -> Option<R> {
        match self.try_perform_by(ctx, op, deadline, body) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Checked form of [`PathResource::perform_by`].
    pub fn try_perform_by<R>(
        &self,
        ctx: &Ctx,
        op: &str,
        deadline: impl Into<Deadline>,
        body: impl FnOnce() -> R,
    ) -> Result<Option<R>, Poisoned> {
        if !self.request_by_checked(ctx, op, deadline)? {
            return Ok(None);
        }
        let cleanup = PoisonOnUnwind { res: self, ctx };
        let r = body();
        std::mem::forget(cleanup);
        self.finish(ctx, op);
        Ok(Some(r))
    }

    /// A single activation attempt: starts `op` if the paths permit it
    /// right now, else changes nothing (no queue entry).
    fn try_start_now(&self, ctx: &Ctx, op: &str) -> bool {
        let mut m = self.machine.lock();
        match m.try_activation(op) {
            Some(act) => {
                m.apply_enter(op, &act);
                m.open
                    .entry(ctx.pid())
                    .or_default()
                    .push((op.to_string(), act));
                true
            }
            None => false,
        }
    }

    /// Finishes operation `op` (the second half of [`PathResource::perform`]).
    pub fn finish(&self, ctx: &Ctx, op: &str) {
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        {
            let mut m = self.machine.lock();
            let stack = m.open.get_mut(&ctx.pid()).expect("finish without begin");
            // Most recent matching activation: operations usually nest, but
            // gate patterns (begin inside one op, finish after it) overlap,
            // so search rather than require strict LIFO order.
            let pos = stack
                .iter()
                .rposition(|(open_op, _)| open_op == op)
                .unwrap_or_else(|| panic!("finish of {op} without a matching begin"));
            let (_, act) = stack.remove(pos);
            if stack.is_empty() {
                m.open.remove(&ctx.pid());
            }
            m.apply_exit(op, &act);
        }
        self.wake_startable(ctx);
    }

    fn wake_startable(&self, ctx: &Ctx) {
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        let woken = self
            .machine
            .lock()
            .drain_startable(&|pid| ctx.is_parked(pid));
        for pid in woken {
            ctx.unpark(pid);
        }
    }

    /// Whether a process died mid-operation, leaving the paths' token
    /// state unrecoverable.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.lock().is_some()
    }

    /// Clones the poison verdict, recording the observation in the trace.
    fn observe_poison(&self, ctx: &Ctx) -> Option<Poisoned> {
        // Reads shared state — and runs at every request entry point, so
        // it marks those quanta as impure for the explorer (see
        // `Ctx::note_sync_obj`).
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        let p = self.poisoned.lock().clone()?;
        ctx.emit(&format!("poison-seen:{}", self.name), &[]);
        Some(p)
    }

    /// Number of executions of `op` currently in progress.
    ///
    /// **Explore-unsafe probe**: records no footprint, so a process that
    /// branches on it during an explored schedule is invisible to the
    /// object-granular prune. Solution code must use
    /// [`PathResource::active_count_ctx`]; this bare form exists for test
    /// assertions and post-run inspection. (v3 predicates need no marking
    /// of their own — they are evaluated inside already-marked machine
    /// operations.)
    pub fn active_count(&self, op: &str) -> usize {
        self.machine.lock().active.get(op).copied().unwrap_or(0)
    }

    /// Instrumented [`PathResource::active_count`] (footprint-recorded).
    pub fn active_count_ctx(&self, ctx: &Ctx, op: &str) -> usize {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.active_count(op)
    }

    /// Number of requests currently blocked.
    ///
    /// **Explore-unsafe probe** — see [`PathResource::active_count`];
    /// solution code must use [`PathResource::blocked_count_ctx`].
    pub fn blocked_count(&self) -> usize {
        self.machine.lock().blocked.len()
    }

    /// Instrumented [`PathResource::blocked_count`] (footprint-recorded).
    pub fn blocked_count_ctx(&self, ctx: &Ctx) -> usize {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.blocked_count()
    }

    /// Whether `op` could start right now (no tokens are consumed).
    ///
    /// **Explore-unsafe probe** — see [`PathResource::active_count`];
    /// solution code must use [`PathResource::can_start_ctx`].
    pub fn can_start(&self, op: &str) -> bool {
        self.machine.lock().try_activation(op).is_some()
    }

    /// Instrumented [`PathResource::can_start`] (footprint-recorded).
    pub fn can_start_ctx(&self, ctx: &Ctx, op: &str) -> bool {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.can_start(op)
    }

    // -- Version-3 extensions (Andler: predicates and state variables) ---

    /// Attaches a predicate to `op`: the operation may start only when the
    /// predicate holds, in addition to the path constraints. Call before
    /// the simulation starts.
    ///
    /// Predicates see synchronization state the 1974 paths cannot express:
    /// active/blocked/completed counts per operation and user state
    /// variables. This is the extension the paper reports Andler added,
    /// "the version closest to satisfying our requirements" (§5.1) — and
    /// the version that can state readers priority correctly, fixing the
    /// footnote-3 anomaly (see `bloom-problems`).
    pub fn add_predicate(
        &self,
        op: &str,
        predicate: impl Fn(&PredicateView<'_>) -> bool + Send + 'static,
    ) {
        self.machine
            .lock()
            .predicates
            .entry(op.to_string())
            .or_default()
            .push(Box::new(predicate));
    }

    /// Registers a state-variable update to run whenever `op` starts.
    pub fn on_enter(
        &self,
        op: &str,
        update: impl Fn(&mut std::collections::BTreeMap<String, i64>) + Send + 'static,
    ) {
        self.machine
            .lock()
            .on_enter
            .entry(op.to_string())
            .or_default()
            .push(Box::new(update));
    }

    /// Registers a state-variable update to run whenever `op` finishes.
    pub fn on_exit(
        &self,
        op: &str,
        update: impl Fn(&mut std::collections::BTreeMap<String, i64>) + Send + 'static,
    ) {
        self.machine
            .lock()
            .on_exit
            .entry(op.to_string())
            .or_default()
            .push(Box::new(update));
    }

    /// Completed executions of `op` (v3 history information).
    pub fn completed_count(&self, op: &str) -> u64 {
        self.machine.lock().completed.get(op).copied().unwrap_or(0)
    }

    /// Current value of a v3 state variable (0 if never written).
    pub fn var(&self, name: &str) -> i64 {
        self.machine.lock().vars.get(name).copied().unwrap_or(0)
    }
}

/// Poisons a [`PathResource`] when an operation body unwinds (kill or
/// panic): the activation's tokens are consumed and can never be put
/// back. All blocked requests are woken — *without* removing their queue
/// entries, which is how they distinguish the poison broadcast from a
/// grant — so they observe the verdict instead of wedging.
struct PoisonOnUnwind<'a> {
    res: &'a PathResource,
    ctx: &'a Ctx,
}

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        if self.ctx.cancelling() {
            return;
        }
        *self.res.poisoned.lock() = Some(Poisoned {
            primitive: self.res.name.clone(),
            by: self.ctx.pid(),
        });
        self.ctx.emit(&format!("poison:{}", self.res.name), &[]);
        let blocked: Vec<Pid> = self
            .res
            .machine
            .lock()
            .blocked
            .iter()
            .map(|b| b.pid)
            .collect();
        for pid in blocked {
            self.ctx.try_unpark(pid);
        }
    }
}

/// Removes the parked process's own request from the blocked queue if the
/// park unwinds: a request whose process died can never be granted, and
/// leaving it would make `blocked()` predicate counts lie forever.
struct UnblockOnUnwind<'a> {
    res: &'a PathResource,
    ctx: &'a Ctx,
}

impl Drop for UnblockOnUnwind<'_> {
    fn drop(&mut self) {
        let me = self.ctx.pid();
        self.res.machine.lock().blocked.retain(|b| b.pid != me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_sim::{RandomPolicy, Sim};
    use std::sync::Arc;

    #[test]
    fn one_slot_buffer_forces_alternation() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("slot", "path deposit ; remove end").unwrap());
        let order = Arc::new(Mutex::new(Vec::new()));
        // Consumer arrives first; the path must hold it until a deposit.
        for (name, op, reps) in [("cons", "remove", 3), ("prod", "deposit", 3)] {
            let r = Arc::clone(&r);
            let order = Arc::clone(&order);
            sim.spawn(name, move |ctx| {
                for _ in 0..reps {
                    r.perform(ctx, op, || order.lock().push(op));
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(
            *order.lock(),
            vec!["deposit", "remove", "deposit", "remove", "deposit", "remove"]
        );
    }

    #[test]
    fn single_op_path_serializes() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("s", "path a end").unwrap());
        let peak = Arc::new(Mutex::new((0u32, 0u32)));
        for i in 0..4 {
            let r = Arc::clone(&r);
            let peak = Arc::clone(&peak);
            sim.spawn(&format!("p{i}"), move |ctx| {
                r.perform(ctx, "a", || {
                    {
                        let mut p = peak.lock();
                        p.0 += 1;
                        p.1 = p.1.max(p.0);
                    }
                    ctx.yield_now();
                    peak.lock().0 -= 1;
                });
            });
        }
        sim.run().unwrap();
        assert_eq!(peak.lock().1, 1);
    }

    #[test]
    fn burst_allows_concurrent_readers_excludes_writer() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("rw", "path { read } , write end").unwrap());
        let stats = Arc::new(Mutex::new((0i32, 0i32, 0i32, false))); // readers, writers, max_readers, violation
        for i in 0..3 {
            let r = Arc::clone(&r);
            let stats = Arc::clone(&stats);
            sim.spawn(&format!("r{i}"), move |ctx| {
                r.perform(ctx, "read", || {
                    {
                        let mut s = stats.lock();
                        s.0 += 1;
                        s.2 = s.2.max(s.0);
                        if s.1 > 0 {
                            s.3 = true;
                        }
                    }
                    ctx.yield_now();
                    ctx.yield_now();
                    stats.lock().0 -= 1;
                });
            });
        }
        let r2 = Arc::clone(&r);
        let stats2 = Arc::clone(&stats);
        sim.spawn("w", move |ctx| {
            r2.perform(ctx, "write", || {
                let mut s = stats2.lock();
                s.1 += 1;
                if s.0 > 0 {
                    s.3 = true;
                }
                s.1 -= 1;
            });
        });
        sim.run().unwrap();
        let s = stats.lock();
        assert!(s.2 > 1, "readers overlapped (burst worked): max={}", s.2);
        assert!(!s.3, "no reader/writer overlap");
    }

    #[test]
    fn blocked_requests_resume_longest_waiting_first() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("s", "path a end").unwrap());
        let order = Arc::new(Mutex::new(Vec::new()));
        let r0 = Arc::clone(&r);
        sim.spawn("holder", move |ctx| {
            r0.perform(ctx, "a", || {
                for _ in 0..5 {
                    ctx.yield_now(); // let the others queue up
                }
            });
        });
        for i in 0..3 {
            let r = Arc::clone(&r);
            let order = Arc::clone(&order);
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..i {
                    ctx.yield_now(); // stagger arrival order
                }
                r.perform(ctx, "a", || order.lock().push(i));
            });
        }
        sim.run().unwrap();
        assert_eq!(
            *order.lock(),
            vec![0, 1, 2],
            "FIFO service of blocked requests"
        );
    }

    #[test]
    fn conjunction_of_two_paths_constrains_both() {
        // `b` is serialized by path 1 and must follow `a` by path 2.
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("s", "path b end path a ; b end").unwrap());
        let order = Arc::new(Mutex::new(Vec::new()));
        let (r1, o1) = (Arc::clone(&r), Arc::clone(&order));
        sim.spawn("bee", move |ctx| {
            r1.perform(ctx, "b", || o1.lock().push("b"));
        });
        let (r2, o2) = (Arc::clone(&r), Arc::clone(&order));
        sim.spawn("ay", move |ctx| {
            ctx.yield_now();
            r2.perform(ctx, "a", || o2.lock().push("a"));
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["a", "b"]);
    }

    #[test]
    fn nested_operations_of_same_resource() {
        // outer's body performs inner; both are constrained.
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("s", "path outer end path inner end").unwrap());
        let r1 = Arc::clone(&r);
        sim.spawn("nest", move |ctx| {
            r1.perform(ctx, "outer", || {
                assert_eq!(r1.active_count("outer"), 1);
                r1.perform(ctx, "inner", || {
                    assert_eq!(r1.active_count("inner"), 1);
                });
            });
            assert_eq!(r1.active_count("outer"), 0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn unconstrained_op_runs_freely() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("s", "path a end").unwrap());
        let r1 = Arc::clone(&r);
        sim.spawn("free", move |ctx| {
            r1.perform(ctx, "unrelated", || {});
            r1.perform(ctx, "unrelated", || {});
        });
        sim.run().unwrap();
    }

    #[test]
    fn bounded_buffer_path_respects_capacity() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("buf", "path 2 : (deposit ; remove) end").unwrap());
        let fill = Arc::new(Mutex::new((0i32, 0i32))); // current, max
        let (r1, f1) = (Arc::clone(&r), Arc::clone(&fill));
        sim.spawn("prod", move |ctx| {
            for _ in 0..6 {
                r1.perform(ctx, "deposit", || {
                    let mut f = f1.lock();
                    f.0 += 1;
                    f.1 = f.1.max(f.0);
                });
            }
        });
        let (r2, f2) = (Arc::clone(&r), Arc::clone(&fill));
        sim.spawn("cons", move |ctx| {
            for _ in 0..6 {
                r2.perform(ctx, "remove", || f2.lock().0 -= 1);
                ctx.yield_now();
            }
        });
        sim.run().unwrap();
        let f = fill.lock();
        assert_eq!(f.0, 0);
        assert!(f.1 <= 2, "buffer bound respected: max fill {}", f.1);
    }

    #[test]
    fn waking_one_burst_member_wakes_the_rest() {
        // While `w` runs, several `r` requests block; when `w` exits, the
        // first `r` opens the burst and the others must be woken too.
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("rw", "path { r } , w end").unwrap());
        let concurrent = Arc::new(Mutex::new((0i32, 0i32)));
        let r0 = Arc::clone(&r);
        sim.spawn("writer", move |ctx| {
            r0.perform(ctx, "w", || {
                for _ in 0..4 {
                    ctx.yield_now();
                }
            });
        });
        for i in 0..3 {
            let r = Arc::clone(&r);
            let c = Arc::clone(&concurrent);
            sim.spawn(&format!("r{i}"), move |ctx| {
                r.perform(ctx, "r", || {
                    {
                        let mut s = c.lock();
                        s.0 += 1;
                        s.1 = s.1.max(s.0);
                    }
                    ctx.yield_now();
                    c.lock().0 -= 1;
                });
            });
        }
        sim.run().unwrap();
        assert_eq!(
            concurrent.lock().1,
            3,
            "all blocked readers resumed together"
        );
    }

    #[test]
    fn v3_predicate_gates_an_operation() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("s", "path a end path b end").unwrap());
        // `b` may only run after two `a`s have completed: history predicate.
        r.add_predicate("b", |v| v.completed("a") >= 2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (r1, o1) = (Arc::clone(&r), Arc::clone(&order));
        sim.spawn("bee", move |ctx| {
            r1.perform(ctx, "b", || o1.lock().push("b"));
        });
        let (r2, o2) = (Arc::clone(&r), Arc::clone(&order));
        sim.spawn("ayes", move |ctx| {
            ctx.yield_now();
            for _ in 0..2 {
                r2.perform(ctx, "a", || o2.lock().push("a"));
            }
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["a", "a", "b"]);
    }

    #[test]
    fn v3_blocked_count_implements_priority() {
        // Readers-priority in one predicate: write defers to waiting reads.
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("rw", "path { read } , write end").unwrap());
        r.add_predicate("write", |v| v.blocked("read") == 0);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (r0, o0) = (Arc::clone(&r), Arc::clone(&order));
        sim.spawn("writer1", move |ctx| {
            r0.perform(ctx, "write", || {
                for _ in 0..4 {
                    ctx.yield_now();
                }
                o0.lock().push("w1");
            });
        });
        let (r1, o1) = (Arc::clone(&r), Arc::clone(&order));
        sim.spawn("writer2", move |ctx| {
            ctx.yield_now();
            r1.perform(ctx, "write", || o1.lock().push("w2"));
        });
        let (r2, o2) = (Arc::clone(&r), Arc::clone(&order));
        sim.spawn("reader", move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            r2.perform(ctx, "read", || o2.lock().push("r"));
        });
        sim.run().unwrap();
        // Without the predicate this is the footnote-3 order [w1, w2, r].
        assert_eq!(*order.lock(), vec!["w1", "r", "w2"]);
    }

    #[test]
    fn v3_state_variables_update_on_enter_and_exit() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("s", "path a end").unwrap());
        r.on_enter("a", |vars| *vars.entry("entered".into()).or_insert(0) += 1);
        r.on_exit("a", |vars| *vars.entry("exited".into()).or_insert(0) += 1);
        // Limit total runs via a state variable: at most 3 `a`s ever.
        r.add_predicate("a", |v| v.var("entered") < 3);
        let r1 = Arc::clone(&r);
        sim.spawn("worker", move |ctx| {
            for _ in 0..3 {
                r1.perform(ctx, "a", || {});
            }
            assert_eq!(r1.var("entered"), 3);
            assert_eq!(r1.var("exited"), 3);
            assert_eq!(r1.completed_count("a"), 3);
        });
        let r2 = Arc::clone(&r);
        sim.spawn("late", move |ctx| {
            for _ in 0..4 {
                ctx.yield_now();
            }
            // A fourth `a` is blocked forever by the predicate; just check
            // we can observe that without running it.
            assert!(!r2.can_start("a"));
        });
        sim.run().unwrap();
    }

    #[test]
    fn deadlock_when_operation_can_never_start() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("s", "path a ; b end").unwrap());
        let r1 = Arc::clone(&r);
        sim.spawn("stuck", move |ctx| {
            r1.perform(ctx, "b", || {}); // b needs a first; nobody does a
        });
        let err = sim.run().expect_err("deadlock");
        assert!(err.is_deadlock());
        assert!(err.to_string().contains("s.b"));
    }

    /// A timed request for an operation the paths never enable gives up at
    /// the bound, leaves the queue clean, and the resource keeps serving
    /// other operations.
    #[test]
    fn request_by_withdraws_cleanly() {
        let mut sim = Sim::new();
        let r = Arc::new(PathResource::parse("s", "path a ; b end").unwrap());
        let r1 = Arc::clone(&r);
        sim.spawn("impatient", move |ctx| {
            // b needs an a first; nobody performs a yet.
            assert_eq!(r1.perform_by(ctx, "b", 5u64, || unreachable!()), None);
            assert_eq!(r1.blocked_count(), 0, "request withdrawn");
            ctx.emit("timed-out", &[]);
        });
        let r2 = Arc::clone(&r);
        sim.spawn("worker", move |ctx| {
            ctx.sleep(10);
            r2.perform(ctx, "a", || {});
            r2.perform(ctx, "b", || {});
        });
        let report = sim.run().expect("timeout avoids the deadlock");
        assert_eq!(report.trace.count_user("timed-out"), 1);
    }

    /// Withdrawal re-scans the queue: a predicate counting `blocked()`
    /// can flip from false to true when a timed-out request leaves, and
    /// the waiter it was blocking must be started by that rescan (without
    /// it, this scenario deadlocks).
    #[test]
    fn withdrawal_rescan_unblocks_predicate_waiters() {
        let mut sim = Sim::new();
        // r can never start (needs a first); w defers to queued r requests.
        let r = Arc::new(PathResource::parse("s", "path a ; r end path w end").unwrap());
        r.add_predicate("w", |v| v.blocked("r") == 0);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (r1, o1) = (Arc::clone(&r), Arc::clone(&order));
        sim.spawn("reader", move |ctx| {
            assert!(!r1.request_by(ctx, "r", 6u64));
            o1.lock().push("r-gave-up");
        });
        let (r2, o2) = (Arc::clone(&r), Arc::clone(&order));
        sim.spawn("writer", move |ctx| {
            ctx.yield_now(); // let the reader queue first
            r2.perform(ctx, "w", || o2.lock().push("w"));
        });
        sim.run().expect("withdrawal rescan frees the writer");
        assert_eq!(*order.lock(), vec!["r-gave-up", "w"]);
    }

    /// The grant-vs-timeout race, explored exhaustively: a holder's finish
    /// may rescan while the timed requester's timer has already fired. The
    /// `drain_startable` parked-only guard must skip the stale entry in
    /// every schedule — granting it would charge an activation the
    /// requester never observes.
    #[test]
    fn grant_timeout_race_explored_exhaustively() {
        let explorer = bloom_sim::Explorer::new(20_000);
        let stats = explorer.run(
            || {
                let mut sim = Sim::new();
                let r = Arc::new(PathResource::parse("s", "path a end").unwrap());
                let r1 = Arc::clone(&r);
                sim.spawn("holder", move |ctx| {
                    r1.perform(ctx, "a", || ctx.sleep(3));
                });
                let r2 = Arc::clone(&r);
                sim.spawn("timed", move |ctx| {
                    if r2.request_by(ctx, "a", 2u64) {
                        r2.finish(ctx, "a");
                    }
                });
                sim
            },
            |decisions, result| {
                let report = result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("schedule {decisions:?}: {e}"));
                for p in &report.processes {
                    assert_eq!(
                        p.status,
                        bloom_sim::ProcessStatus::Finished,
                        "schedule {decisions:?}: {} did not finish",
                        p.name
                    );
                }
            },
        );
        assert!(stats.complete, "decision space fully explored");
    }

    #[test]
    fn invariants_hold_under_random_schedules() {
        for seed in 0..8 {
            let mut sim = Sim::new();
            sim.set_policy(RandomPolicy::new(seed));
            let r = Arc::new(PathResource::parse("rw", "path { read } , write end").unwrap());
            let bad = Arc::new(Mutex::new(false));
            let active = Arc::new(Mutex::new((0i32, 0i32)));
            for i in 0..3 {
                let (r, bad, active) = (Arc::clone(&r), Arc::clone(&bad), Arc::clone(&active));
                sim.spawn(&format!("r{i}"), move |ctx| {
                    for _ in 0..4 {
                        r.perform(ctx, "read", || {
                            {
                                let mut a = active.lock();
                                a.0 += 1;
                                if a.1 > 0 {
                                    *bad.lock() = true;
                                }
                            }
                            ctx.yield_now();
                            active.lock().0 -= 1;
                        });
                    }
                });
            }
            for i in 0..2 {
                let (r, bad, active) = (Arc::clone(&r), Arc::clone(&bad), Arc::clone(&active));
                sim.spawn(&format!("w{i}"), move |ctx| {
                    for _ in 0..4 {
                        r.perform(ctx, "write", || {
                            {
                                let mut a = active.lock();
                                a.1 += 1;
                                if a.0 > 0 || a.1 > 1 {
                                    *bad.lock() = true;
                                }
                            }
                            ctx.yield_now();
                            active.lock().1 -= 1;
                        });
                    }
                });
            }
            sim.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!*bad.lock(), "seed {seed}: exclusion violated");
        }
    }
}
