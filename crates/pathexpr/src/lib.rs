#![forbid(unsafe_code)]
#![deny(deprecated)]
//! Campbell–Habermann path expressions over the `bloom-sim` simulator.
//!
//! Path expressions ("The Specification of Process Synchronization by Path
//! Expressions", 1974) are the non-procedural mechanism Bloom's paper
//! analyzes in depth (§5.1): synchronization is specified as the set of
//! allowable orderings of resource operations, written
//!
//! ```text
//! path { requestread } , requestwrite end
//! ```
//!
//! with sequencing `;`, selection `,`, concurrent repetition `{ e }`, and
//! the implicit cyclic repetition of `path … end`. A process invoking an
//! operation that cannot occur next in every path is blocked until it can;
//! when several blocked requests become startable, the longest-waiting one
//! is resumed first (the selection assumption Bloom states explicitly).
//!
//! The crate provides:
//!
//! * [`Path`]/[`PathExpr`] — the AST, with pretty-printing;
//! * [`parse_path`]/[`parse_paths`] — the parser;
//! * [`PathResource`] — the runtime: a resource whose operations are
//!   guarded by the conjunction of several compiled paths;
//! * the **version-2 numeric operator** `n : ( e )` (Flon & Habermann),
//!   which Bloom reports was added to fix expressiveness weaknesses — used
//!   by the ablation experiments to contrast mechanism versions.
//!
//! The compilation scheme (a token machine generalizing the original
//! semaphore encoding) is documented in the private `compile` module; the
//! scheduling discipline in [`PathResource`].
//!
//! Both of the paper's figures — the readers-priority (Figure 1) and
//! writers-priority (Figure 2) path solutions, *including the footnote-3
//! priority anomaly of Figure 1* — are reproduced with this crate in
//! `bloom-problems` and the workspace integration tests.

mod ast;
mod compile;
mod machine;
mod parse;

pub use ast::{Path, PathExpr};
pub use machine::{PathResource, PredicateView};
pub use parse::{parse_path, parse_paths, ParseError};

/// Compiler internals shared with the real-thread backend.
///
/// `bloom-rt` re-implements the *runtime* (blocking, FIFO selection,
/// poisoning) on OS threads, but the path grammar and the token-machine
/// semantics of `take`/`put` must be the single source of truth — a
/// divergence there would make the differential conformance suite
/// compare two different languages. These items are re-exported for that
/// one consumer; they are not a stable public API.
#[doc(hidden)]
pub mod backend {
    pub use crate::compile::{
        compile, BurstDef, CompiledPath, Occurrence, PathState, PutPort, TakePort,
    };
}
