//! Parser for the `path … end` notation.
//!
//! Grammar (selection binds tighter than sequencing, matching the
//! parenthesization in the paper's figures):
//!
//! ```text
//! path      := 'path' expr 'end'
//! expr      := selection ( ';' selection )*
//! selection := primary ( ',' primary )*
//! primary   := IDENT
//!            | '{' expr '}'
//!            | '(' expr ')'
//!            | NUMBER ':' primary          -- version-2 numeric operator
//! ```

use crate::ast::{Path, PathExpr};
use std::fmt;

/// A parse failure, with a byte offset into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the error was detected.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Path,
    End,
    Ident(String),
    Number(u32),
    Comma,
    Semi,
    Colon,
    LBrace,
    RBrace,
    LParen,
    RParen,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            ';' => {
                out.push((i, Tok::Semi));
                i += 1;
            }
            ':' => {
                out.push((i, Tok::Colon));
                i += 1;
            }
            '{' => {
                out.push((i, Tok::LBrace));
                i += 1;
            }
            '}' => {
                out.push((i, Tok::RBrace));
                i += 1;
            }
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: u32 = text.parse().map_err(|_| ParseError {
                    at: start,
                    message: format!("number out of range: {text}"),
                })?;
                out.push((start, Tok::Number(n)));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                out.push((
                    start,
                    match word {
                        "path" => Tok::Path,
                        "end" => Tok::End,
                        _ => Tok::Ident(word.to_string()),
                    },
                ));
            }
            other => {
                return Err(ParseError {
                    at: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks.get(self.pos).map_or(self.src_len, |(at, _)| *at)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError {
                at: self.at(),
                message: format!("expected {what}"),
            })
        }
    }

    /// expr := selection (';' selection)*
    fn expr(&mut self) -> Result<PathExpr, ParseError> {
        let first = self.selection()?;
        let mut items = vec![first];
        while self.peek() == Some(&Tok::Semi) {
            self.pos += 1;
            items.push(self.selection()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("nonempty")
        } else {
            PathExpr::Seq(items)
        })
    }

    /// selection := primary (',' primary)*
    fn selection(&mut self) -> Result<PathExpr, ParseError> {
        let first = self.primary()?;
        let mut items = vec![first];
        while self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            items.push(self.primary()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("nonempty")
        } else {
            PathExpr::Sel(items)
        })
    }

    fn primary(&mut self) -> Result<PathExpr, ParseError> {
        let at = self.at();
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(PathExpr::Op(name)),
            Some(Tok::LBrace) => {
                let inner = self.expr()?;
                self.expect(&Tok::RBrace, "'}'")?;
                Ok(PathExpr::Burst(Box::new(inner)))
            }
            Some(Tok::LParen) => {
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::Number(n)) => {
                if n == 0 {
                    return Err(ParseError {
                        at,
                        message: "numeric bound must be at least 1".to_string(),
                    });
                }
                self.expect(&Tok::Colon, "':' after numeric bound")?;
                let inner = self.primary()?;
                Ok(PathExpr::Bounded(n, Box::new(inner)))
            }
            other => Err(ParseError {
                at,
                message: format!(
                    "expected an operation, '{{', '(' or a number, found {}",
                    describe(other.as_ref())
                ),
            }),
        }
    }
}

/// Human-readable description of a token for error messages.
fn describe(tok: Option<&Tok>) -> String {
    match tok {
        None => "end of input".to_string(),
        Some(Tok::Path) => "'path'".to_string(),
        Some(Tok::End) => "'end'".to_string(),
        Some(Tok::Ident(name)) => format!("'{name}'"),
        Some(Tok::Number(n)) => format!("'{n}'"),
        Some(Tok::Comma) => "','".to_string(),
        Some(Tok::Semi) => "';'".to_string(),
        Some(Tok::Colon) => "':'".to_string(),
        Some(Tok::LBrace) => "'{'".to_string(),
        Some(Tok::RBrace) => "'}'".to_string(),
        Some(Tok::LParen) => "'('".to_string(),
        Some(Tok::RParen) => "')'".to_string(),
    }
}

/// Parses a single `path … end` declaration.
pub fn parse_path(src: &str) -> Result<Path, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        src_len: src.len(),
    };
    p.expect(&Tok::Path, "'path'")?;
    let body = p.expr()?;
    p.expect(&Tok::End, "'end'")?;
    if p.pos != p.toks.len() {
        return Err(ParseError {
            at: p.at(),
            message: "trailing input after 'end'".to_string(),
        });
    }
    Ok(Path::new(body))
}

/// Parses several `path … end` declarations from one source string.
pub fn parse_paths(src: &str) -> Result<Vec<Path>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        src_len: src.len(),
    };
    let mut out = Vec::new();
    while p.peek().is_some() {
        p.expect(&Tok::Path, "'path'")?;
        let body = p.expr()?;
        p.expect(&Tok::End, "'end'")?;
        out.push(Path::new(body));
    }
    if out.is_empty() {
        return Err(ParseError {
            at: 0,
            message: "no path declarations found".to_string(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_op() {
        let p = parse_path("path writeattempt end").unwrap();
        assert_eq!(p.to_string(), "path writeattempt end");
    }

    #[test]
    fn parses_paper_figure_1() {
        let src = "
            path writeattempt end
            path { requestread } , requestwrite end
            path { read } , (openwrite ; write) end
        ";
        let paths = parse_paths(src).unwrap();
        assert_eq!(paths.len(), 3);
        assert_eq!(
            paths[1].to_string(),
            "path { requestread } , requestwrite end"
        );
        assert_eq!(
            paths[2].to_string(),
            "path { read } , (openwrite ; write) end"
        );
    }

    #[test]
    fn parses_paper_figure_2() {
        let src = "
            path readattempt end
            path requestread , { requestwrite } end
            path { openread ; read } , write end
        ";
        let paths = parse_paths(src).unwrap();
        assert_eq!(paths.len(), 3);
        assert_eq!(
            paths[1].to_string(),
            "path requestread , { requestwrite } end"
        );
        assert_eq!(paths[2].to_string(), "path { openread ; read } , write end");
    }

    #[test]
    fn selection_binds_tighter_than_sequence() {
        let p = parse_path("path a , b ; c end").unwrap();
        assert_eq!(
            p.body,
            PathExpr::Seq(vec![
                PathExpr::Sel(vec![
                    PathExpr::Op("a".to_string()),
                    PathExpr::Op("b".to_string())
                ]),
                PathExpr::Op("c".to_string()),
            ])
        );
    }

    #[test]
    fn parens_override_precedence() {
        let p = parse_path("path a , (b ; c) end").unwrap();
        assert_eq!(
            p.body,
            PathExpr::Sel(vec![
                PathExpr::Op("a".to_string()),
                PathExpr::Seq(vec![
                    PathExpr::Op("b".to_string()),
                    PathExpr::Op("c".to_string())
                ]),
            ])
        );
    }

    #[test]
    fn parses_numeric_bound() {
        let p = parse_path("path 5 : (deposit ; remove) end").unwrap();
        assert!(p.uses_numeric());
        assert_eq!(p.to_string(), "path 5 : (deposit ; remove) end");
    }

    #[test]
    fn zero_bound_is_rejected() {
        let err = parse_path("path 0 : (x) end").unwrap_err();
        assert!(err.message.contains("at least 1"));
    }

    #[test]
    fn reports_missing_end() {
        let err = parse_path("path a ; b").unwrap_err();
        assert!(err.message.contains("end") || err.message.contains("expected"));
    }

    #[test]
    fn reports_unexpected_character() {
        let err = parse_path("path a & b end").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.at, 7);
    }

    #[test]
    fn reports_trailing_garbage() {
        let err = parse_path("path a end extra").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn nested_bursts_parse() {
        let p = parse_path("path { a ; { b } } end").unwrap();
        assert_eq!(p.to_string(), "path { a ; { b } } end");
    }

    #[test]
    fn display_parse_round_trip() {
        for src in [
            "path a end",
            "path a ; b ; c end",
            "path a , b , c end",
            "path { a } , (b ; c) end",
            "path 2 : ({ a } ; b) end",
            "path (a , b) ; { c ; d } end",
        ] {
            let parsed = parse_path(src).unwrap();
            let reparsed = parse_path(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "round trip failed for {src}");
        }
    }
}
