//! Abstract syntax of path expressions.
//!
//! The grammar follows Campbell & Habermann 1974 as used in Bloom's paper:
//! sequencing `;`, selection `,`, concurrent repetition (burst) `{ e }`,
//! and the implicit cyclic repetition of `path … end`. Selection binds
//! tighter than sequencing, which is why Figure 1 of the paper needs
//! parentheses in `path { read } , (openwrite ; write) end`.
//!
//! As an extension (the *numeric operator* Bloom reports was added in the
//! second version of the mechanism [Flon & Habermann 1976]), the grammar
//! also accepts `n : ( e )` — a counted burst admitting at most `n`
//! concurrent executions of `e`.

use std::collections::BTreeSet;
use std::fmt;

/// A node of a path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathExpr {
    /// A named operation on the resource.
    Op(String),
    /// `e1 ; e2 ; …` — the elements execute in order within one cycle.
    Seq(Vec<PathExpr>),
    /// `e1 , e2 , …` — exactly one alternative executes per activation.
    Sel(Vec<PathExpr>),
    /// `{ e }` — a *burst*: any number of concurrent executions of `e`;
    /// the group occupies the enclosing position from the first entry to
    /// the last exit (first-in/last-out).
    Burst(Box<PathExpr>),
    /// `n : ( e )` — a counted burst admitting at most `n` concurrent
    /// executions (version-2 numeric operator).
    Bounded(u32, Box<PathExpr>),
}

impl PathExpr {
    /// Collects every operation name mentioned, in sorted order.
    pub fn alphabet(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        self.collect_ops(&mut set);
        set
    }

    fn collect_ops(&self, set: &mut BTreeSet<String>) {
        match self {
            PathExpr::Op(name) => {
                set.insert(name.clone());
            }
            PathExpr::Seq(items) | PathExpr::Sel(items) => {
                for item in items {
                    item.collect_ops(set);
                }
            }
            PathExpr::Burst(inner) | PathExpr::Bounded(_, inner) => inner.collect_ops(set),
        }
    }

    /// Whether the expression uses the version-2 numeric operator.
    pub fn uses_numeric(&self) -> bool {
        match self {
            PathExpr::Op(_) => false,
            PathExpr::Seq(items) | PathExpr::Sel(items) => items.iter().any(Self::uses_numeric),
            PathExpr::Burst(inner) => inner.uses_numeric(),
            PathExpr::Bounded(..) => true,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_is_sel: bool) -> fmt::Result {
        match self {
            PathExpr::Op(name) => write!(f, "{name}"),
            PathExpr::Seq(items) => {
                // Sequencing is weaker than selection: parenthesize when a
                // sequence appears where a selection operand is expected.
                if parent_is_sel {
                    write!(f, "(")?;
                }
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ; ")?;
                    }
                    item.fmt_prec(f, false)?;
                }
                if parent_is_sel {
                    write!(f, ")")?;
                }
                Ok(())
            }
            PathExpr::Sel(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " , ")?;
                    }
                    item.fmt_prec(f, true)?;
                }
                Ok(())
            }
            PathExpr::Burst(inner) => {
                write!(f, "{{ ")?;
                inner.fmt_prec(f, false)?;
                write!(f, " }}")
            }
            PathExpr::Bounded(n, inner) => {
                write!(f, "{n} : (")?;
                inner.fmt_prec(f, false)?;
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, false)
    }
}

/// A complete `path … end` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// The path body; the whole body repeats cyclically.
    pub body: PathExpr,
}

impl Path {
    /// Creates a path from a body expression.
    pub fn new(body: PathExpr) -> Self {
        Path { body }
    }

    /// Operations named in this path.
    pub fn alphabet(&self) -> BTreeSet<String> {
        self.body.alphabet()
    }

    /// Whether the path uses the version-2 numeric operator.
    pub fn uses_numeric(&self) -> bool {
        self.body.uses_numeric()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path {} end", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str) -> PathExpr {
        PathExpr::Op(name.to_string())
    }

    #[test]
    fn alphabet_collects_unique_sorted_names() {
        let e = PathExpr::Seq(vec![
            op("b"),
            PathExpr::Sel(vec![op("a"), PathExpr::Burst(Box::new(op("b")))]),
        ]);
        let names: Vec<String> = e.alphabet().into_iter().collect();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn display_round_trips_paper_figures() {
        let fig1_path3 = Path::new(PathExpr::Sel(vec![
            PathExpr::Burst(Box::new(op("read"))),
            PathExpr::Seq(vec![op("openwrite"), op("write")]),
        ]));
        assert_eq!(
            fig1_path3.to_string(),
            "path { read } , (openwrite ; write) end"
        );
    }

    #[test]
    fn display_does_not_over_parenthesize() {
        let p = Path::new(PathExpr::Seq(vec![op("a"), op("b")]));
        assert_eq!(p.to_string(), "path a ; b end");
        let q = Path::new(PathExpr::Sel(vec![op("a"), op("b")]));
        assert_eq!(q.to_string(), "path a , b end");
    }

    #[test]
    fn numeric_detection() {
        let bounded = Path::new(PathExpr::Bounded(3, Box::new(op("x"))));
        assert!(bounded.uses_numeric());
        assert!(!Path::new(op("x")).uses_numeric());
        assert_eq!(bounded.to_string(), "path 3 : (x) end");
    }
}
