//! Compilation of a [`Path`] into a token machine.
//!
//! The translation generalizes Campbell & Habermann's semaphore encoding
//! into a small Petri-net-like structure:
//!
//! * `path e end` — a *root place* holding one token; the body takes from
//!   and returns to it, which makes the path cyclic.
//! * `e1 ; e2` — an internal place between the elements: finishing `e1`
//!   deposits a token that starting `e2` consumes.
//! * `e1 , e2` — the alternatives share the same entry/exit ports, so
//!   exactly one of them consumes each cycle's token.
//! * `{ e }` — a *burst* counter: the first process to start `e` consumes
//!   the enclosing token and opens the burst; further processes join while
//!   the counter is positive; the last to finish closes the burst and
//!   returns the enclosing token (first-in/last-out).
//! * `n : ( e )` — a burst whose counter is capped at `n` (the version-2
//!   numeric operator).
//!
//! Each operation occurrence compiles to a pair of *ports*: starting the
//! operation performs a `take` through its entry port, finishing performs a
//! `put` through its exit port. Ports recurse through nested bursts.

use crate::ast::{Path, PathExpr};
use std::collections::BTreeMap;
use std::fmt;

/// Where a transition takes its token from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TakePort {
    /// Consume one token from a place.
    Place(usize),
    /// Join a burst (consuming the burst's outer token if it is closed).
    Burst(usize),
}

/// Where a transition puts its token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutPort {
    /// Deposit one token into a place.
    Place(usize),
    /// Leave a burst (returning the outer token if this empties it).
    Burst(usize),
}

/// A burst (`{e}` or `n:(e)`) within one path.
#[derive(Debug, Clone, Copy)]
pub struct BurstDef {
    /// Entry port of the burst as a whole (consumed by the first joiner).
    pub outer_take: TakePort,
    /// Exit port of the burst as a whole (produced by the last leaver).
    pub outer_put: PutPort,
    /// Maximum concurrent members (`None` for the unbounded `{e}` form).
    pub cap: Option<u32>,
}

/// One syntactic occurrence of an operation in a path.
#[derive(Debug, Clone, Copy)]
pub struct Occurrence {
    pub take: TakePort,
    pub put: PutPort,
}

/// A path compiled to its token machine.
#[derive(Debug, Clone)]
pub struct CompiledPath {
    /// Initial token count per place (index = place id).
    pub initial: Vec<u32>,
    /// Burst definitions (index = burst id).
    pub bursts: Vec<BurstDef>,
    /// Occurrences per operation name, in syntactic order.
    pub occurrences: BTreeMap<String, Vec<Occurrence>>,
    /// Pretty-printed source, for diagnostics.
    pub source: String,
}

impl fmt::Display for CompiledPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} places, {} bursts, {} ops]",
            self.source,
            self.initial.len(),
            self.bursts.len(),
            self.occurrences.len()
        )
    }
}

struct Compiler {
    initial: Vec<u32>,
    bursts: Vec<BurstDef>,
    occurrences: BTreeMap<String, Vec<Occurrence>>,
}

impl Compiler {
    fn new_place(&mut self, tokens: u32) -> usize {
        self.initial.push(tokens);
        self.initial.len() - 1
    }

    fn new_burst(&mut self, outer_take: TakePort, outer_put: PutPort, cap: Option<u32>) -> usize {
        self.bursts.push(BurstDef {
            outer_take,
            outer_put,
            cap,
        });
        self.bursts.len() - 1
    }

    fn go(&mut self, e: &PathExpr, take: TakePort, put: PutPort) {
        match e {
            PathExpr::Op(name) => {
                self.occurrences
                    .entry(name.clone())
                    .or_default()
                    .push(Occurrence { take, put });
            }
            PathExpr::Seq(items) => {
                let mut current_take = take;
                let last = items.len() - 1;
                for (i, item) in items.iter().enumerate() {
                    if i == last {
                        self.go(item, current_take, put);
                    } else {
                        let mid = self.new_place(0);
                        self.go(item, current_take, PutPort::Place(mid));
                        current_take = TakePort::Place(mid);
                    }
                }
            }
            PathExpr::Sel(items) => {
                for item in items {
                    self.go(item, take, put);
                }
            }
            PathExpr::Burst(inner) => {
                let b = self.new_burst(take, put, None);
                self.go(inner, TakePort::Burst(b), PutPort::Burst(b));
            }
            PathExpr::Bounded(n, inner) => {
                let b = self.new_burst(take, put, Some(*n));
                self.go(inner, TakePort::Burst(b), PutPort::Burst(b));
            }
        }
    }
}

/// Compiles one path declaration.
pub fn compile(path: &Path) -> CompiledPath {
    let mut c = Compiler {
        initial: Vec::new(),
        bursts: Vec::new(),
        occurrences: BTreeMap::new(),
    };
    let root = c.new_place(1);
    c.go(&path.body, TakePort::Place(root), PutPort::Place(root));
    CompiledPath {
        initial: c.initial,
        bursts: c.bursts,
        occurrences: c.occurrences,
        source: path.to_string(),
    }
}

/// Mutable token state of one compiled path.
#[derive(Debug, Clone)]
pub struct PathState {
    pub tokens: Vec<u32>,
    pub counters: Vec<u32>,
}

impl PathState {
    pub fn new(compiled: &CompiledPath) -> Self {
        PathState {
            tokens: compiled.initial.clone(),
            counters: vec![0; compiled.bursts.len()],
        }
    }

    /// Whether a `take` through `port` is currently possible.
    pub fn can_take(&self, compiled: &CompiledPath, port: TakePort) -> bool {
        match port {
            TakePort::Place(p) => self.tokens[p] > 0,
            TakePort::Burst(b) => {
                let def = &compiled.bursts[b];
                let below_cap = def.cap.is_none_or(|cap| self.counters[b] < cap);
                below_cap && (self.counters[b] > 0 || self.can_take(compiled, def.outer_take))
            }
        }
    }

    /// Performs a `take` through `port`.
    ///
    /// # Panics
    ///
    /// Panics if the take is not possible; call [`PathState::can_take`]
    /// first.
    pub fn take(&mut self, compiled: &CompiledPath, port: TakePort) {
        match port {
            TakePort::Place(p) => {
                assert!(self.tokens[p] > 0, "take from empty place {p}");
                self.tokens[p] -= 1;
            }
            TakePort::Burst(b) => {
                if self.counters[b] == 0 {
                    let outer = compiled.bursts[b].outer_take;
                    self.take(compiled, outer);
                }
                self.counters[b] += 1;
            }
        }
    }

    /// Performs a `put` through `port`.
    pub fn put(&mut self, compiled: &CompiledPath, port: PutPort) {
        match port {
            PutPort::Place(p) => self.tokens[p] += 1,
            PutPort::Burst(b) => {
                assert!(self.counters[b] > 0, "leaving an empty burst {b}");
                self.counters[b] -= 1;
                if self.counters[b] == 0 {
                    let outer = compiled.bursts[b].outer_put;
                    self.put(compiled, outer);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_path;

    fn compiled(src: &str) -> (CompiledPath, PathState) {
        let c = compile(&parse_path(src).unwrap());
        let s = PathState::new(&c);
        (c, s)
    }

    fn occ(c: &CompiledPath, op: &str, i: usize) -> Occurrence {
        c.occurrences[op][i]
    }

    #[test]
    fn single_op_cycles() {
        let (c, mut s) = compiled("path a end");
        let a = occ(&c, "a", 0);
        assert!(s.can_take(&c, a.take));
        s.take(&c, a.take);
        assert!(!s.can_take(&c, a.take), "only one `a` at a time");
        s.put(&c, a.put);
        assert!(s.can_take(&c, a.take), "cycle restored");
    }

    #[test]
    fn sequence_orders_operations() {
        let (c, mut s) = compiled("path a ; b end");
        let (a, b) = (occ(&c, "a", 0), occ(&c, "b", 0));
        assert!(s.can_take(&c, a.take));
        assert!(!s.can_take(&c, b.take), "b must wait for a");
        s.take(&c, a.take);
        s.put(&c, a.put);
        assert!(!s.can_take(&c, a.take), "a cannot restart mid-cycle");
        assert!(s.can_take(&c, b.take));
        s.take(&c, b.take);
        s.put(&c, b.put);
        assert!(s.can_take(&c, a.take), "cycle complete");
    }

    #[test]
    fn selection_consumes_one_alternative() {
        let (c, mut s) = compiled("path a , b end");
        let (a, b) = (occ(&c, "a", 0), occ(&c, "b", 0));
        assert!(s.can_take(&c, a.take) && s.can_take(&c, b.take));
        s.take(&c, a.take);
        assert!(!s.can_take(&c, b.take), "a's activation excludes b");
        s.put(&c, a.put);
        assert!(s.can_take(&c, b.take));
    }

    #[test]
    fn burst_admits_many_then_closes() {
        let (c, mut s) = compiled("path { r } , w end");
        let (r, w) = (occ(&c, "r", 0), occ(&c, "w", 0));
        s.take(&c, r.take); // opens the burst
        assert!(s.can_take(&c, r.take), "burst open: more readers join");
        s.take(&c, r.take);
        assert!(!s.can_take(&c, w.take), "writer excluded during burst");
        s.put(&c, r.put);
        assert!(!s.can_take(&c, w.take), "one reader still inside");
        s.put(&c, r.put);
        assert!(s.can_take(&c, w.take), "burst closed, writer may go");
        s.take(&c, w.take);
        assert!(!s.can_take(&c, r.take), "writer excludes readers");
        s.put(&c, w.put);
        assert!(s.can_take(&c, r.take));
    }

    #[test]
    fn burst_over_sequence_is_first_in_last_out() {
        // Figure 2's third path shape: path { openread ; read } , write end
        let (c, mut s) = compiled("path { a ; b } , w end");
        let (a, b, w) = (occ(&c, "a", 0), occ(&c, "b", 0), occ(&c, "w", 0));
        s.take(&c, a.take); // first member joins
        s.take(&c, a.take); // second member joins
        s.put(&c, a.put); // first finishes a, token waits between a and b
        assert!(!s.can_take(&c, w.take));
        s.take(&c, b.take);
        s.put(&c, b.put); // first member leaves
        assert!(!s.can_take(&c, w.take), "second member still inside");
        s.put(&c, a.put);
        s.take(&c, b.take);
        s.put(&c, b.put); // second leaves: burst closes
        assert!(s.can_take(&c, w.take));
    }

    #[test]
    fn bounded_burst_caps_concurrency() {
        let (c, mut s) = compiled("path 2 : (x) end");
        let x = occ(&c, "x", 0);
        s.take(&c, x.take);
        s.take(&c, x.take);
        assert!(!s.can_take(&c, x.take), "cap of 2 reached");
        s.put(&c, x.put);
        assert!(s.can_take(&c, x.take), "slot freed");
    }

    #[test]
    fn bounded_sequence_is_a_bounded_buffer() {
        let (c, mut s) = compiled("path 3 : (deposit ; remove) end");
        let (d, r) = (occ(&c, "deposit", 0), occ(&c, "remove", 0));
        assert!(!s.can_take(&c, r.take), "nothing to remove yet");
        for _ in 0..3 {
            assert!(s.can_take(&c, d.take));
            s.take(&c, d.take);
            s.put(&c, d.put);
        }
        assert!(!s.can_take(&c, d.take), "buffer full at 3");
        s.take(&c, r.take);
        s.put(&c, r.put);
        assert!(s.can_take(&c, d.take), "slot recycled");
    }

    #[test]
    fn multiple_occurrences_are_tracked_separately() {
        let (c, _) = compiled("path a ; b ; a end");
        assert_eq!(c.occurrences["a"].len(), 2);
        assert_eq!(c.occurrences["b"].len(), 1);
    }

    #[test]
    fn one_slot_buffer_alternates() {
        // The paper's history-information example: path deposit ; remove end.
        let (c, mut s) = compiled("path deposit ; remove end");
        let (d, r) = (occ(&c, "deposit", 0), occ(&c, "remove", 0));
        for _ in 0..3 {
            assert!(s.can_take(&c, d.take) && !s.can_take(&c, r.take));
            s.take(&c, d.take);
            s.put(&c, d.put);
            assert!(!s.can_take(&c, d.take) && s.can_take(&c, r.take));
            s.take(&c, r.take);
            s.put(&c, r.put);
        }
    }
}
