//! Crash-safety of path-expression resources under fault injection:
//! mid-operation death poisons, blocked-request death is cleaned up.

#![deny(deprecated)]

use bloom_pathexpr::PathResource;
use bloom_sim::{FaultPlan, Pid, Sim};
use std::sync::Arc;

/// Dying inside an operation body consumes tokens forever: the resource
/// is poisoned, blocked requests wake, and they observe the verdict.
#[test]
fn death_mid_operation_poisons_and_wakes_blocked() {
    let mut sim = Sim::new();
    // The victim's first scheduling point is the yield inside its body.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let r = Arc::new(PathResource::parse("s", "path a end").unwrap());
    let r1 = Arc::clone(&r);
    sim.spawn("victim", move |ctx| {
        let _ = r1.try_perform(ctx, "a", || {
            ctx.yield_now(); // killed mid-operation
            ctx.emit("victim-finished", &[]);
        });
    });
    let r2 = Arc::clone(&r);
    sim.spawn("waiter", move |ctx| {
        let p = r2
            .try_perform(ctx, "a", || ())
            .expect_err("the dead operation poisoned the resource");
        assert_eq!(p.primitive, "s");
        assert_eq!(p.by, Pid(0));
        ctx.emit("poison-observed", &[]);
    });
    let report = sim.run().expect("poisoning contains the crash");
    assert!(r.is_poisoned());
    assert_eq!(report.killed(), vec![Pid(0)]);
    assert_eq!(report.trace.count_user("victim-finished"), 0);
    assert_eq!(report.trace.count_user("poison:s"), 1);
    assert_eq!(report.trace.count_user("poison-observed"), 1);
    assert_eq!(
        r.blocked_count(),
        0,
        "the poison-woken request deregistered"
    );
}

/// Dying while *blocked* starts nothing: the request is removed, the
/// resource stays healthy, and `blocked()` predicates see the truth.
#[test]
fn death_while_blocked_is_removed_without_poison() {
    let mut sim = Sim::new();
    // The victim's park on the blocked queue is its first stop.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let r = Arc::new(PathResource::parse("slot", "path deposit ; remove end").unwrap());
    let r1 = Arc::clone(&r);
    sim.spawn("victim", move |ctx| {
        // `remove` cannot start before a deposit: the victim parks.
        r1.perform(ctx, "remove", || ctx.emit("victim-removed", &[]));
    });
    let r2 = Arc::clone(&r);
    sim.spawn("producer", move |ctx| {
        ctx.yield_now();
        assert_eq!(r2.blocked_count(), 0, "the dead request was removed");
        r2.perform(ctx, "deposit", || {});
        r2.perform(ctx, "remove", || ctx.emit("producer-removed", &[]));
    });
    let report = sim.run().expect("healthy: the corpse never started");
    assert!(!r.is_poisoned());
    assert_eq!(report.trace.count_user("victim-removed"), 0);
    assert_eq!(report.trace.count_user("producer-removed"), 1);
}

/// Poison is sticky: requesters arriving after the crash are refused
/// immediately, without ever parking.
#[test]
fn poison_is_sticky_for_late_requesters() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let r = Arc::new(PathResource::parse("s", "path a end").unwrap());
    let r1 = Arc::clone(&r);
    sim.spawn("victim", move |ctx| {
        let _ = r1.try_perform(ctx, "a", || ctx.yield_now());
    });
    for i in 0..2 {
        let r = Arc::clone(&r);
        sim.spawn(&format!("late{i}"), move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            assert!(r.try_perform(ctx, "a", || ()).is_err());
            ctx.emit("refused", &[]);
        });
    }
    let report = sim.run().expect("no wedge");
    assert_eq!(report.trace.count_user("refused"), 2);
    assert_eq!(report.trace.count_user("poison-seen:s"), 2);
}
