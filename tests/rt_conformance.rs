//! R4: the differential conformance suite — real-thread executions of
//! the five mechanisms must stay inside the simulator's exhaustively
//! explored verdict envelope, and injected mid-protocol panics must
//! classify as contained or poisoned, never wedged.
//!
//! Iteration count: `RT_CONFORMANCE_ITERS` (default 100 per scenario).
//! These tests are *inherently nondeterministic* (real OS scheduling
//! under seeded jitter) and therefore assert only envelope containment,
//! never timing or specific interleavings; they are quarantined from
//! every golden/byte-identity test in the repo.

#![deny(deprecated)]

use bloom_bench::rt_conformance::{
    crash_scenarios, rt_crash_run, rt_verdict, scenarios, sim_crash_envelope, sim_envelope,
    stress_iters,
};
use bloom_core::CrashOutcome;

/// Seed base: arbitrary, fixed so failures report a reproducible seed
/// (reproducible in *intent* — the OS schedule under a seed is still
/// nondeterministic; the seed pins the jitter stream, not the run).
const SEED_BASE: u64 = 0xB100_0004;

#[test]
fn rt_verdicts_fall_inside_the_sim_envelope() {
    let iters = stress_iters();
    for s in scenarios() {
        let envelope = sim_envelope(&s);
        assert!(
            !envelope.is_empty(),
            "scenario {}: empty envelope cannot contain anything",
            s.name
        );
        for i in 0..iters {
            let seed = SEED_BASE.wrapping_add(i as u64);
            let verdict = rt_verdict(&s, seed);
            assert!(
                envelope.contains(&verdict),
                "scenario {} ({}), iteration {i} (jitter seed {seed:#x}): real-thread \
                 verdict {verdict:?} is outside the simulator envelope {envelope:?}",
                s.name,
                s.mechanism,
            );
        }
    }
}

#[test]
fn every_scenario_is_law_clean_in_some_schedule() {
    // Sanity on the suite itself: an envelope of pure violations would
    // make containment meaningless (a broken mechanism conforming to a
    // broken envelope). Every scenario must have at least one law-clean
    // verdict on the simulator side.
    for s in scenarios() {
        let envelope = sim_envelope(&s);
        assert!(
            envelope.iter().any(|v| v.starts_with("law-clean")),
            "scenario {}: no law-clean verdict in {envelope:?}",
            s.name
        );
    }
}

#[test]
fn injected_panics_never_wedge_on_either_backend() {
    let iters = stress_iters();
    for c in crash_scenarios() {
        let envelope = sim_crash_envelope(&c);
        assert!(
            !envelope.contains(&CrashOutcome::Wedged),
            "crash scenario {}: the simulator sweep itself wedges ({envelope:?}) — \
             the scenario is not built from poisoning/withdrawing forms",
            c.name
        );
        for i in 0..iters {
            let seed = SEED_BASE.wrapping_add(0x1000 + i as u64);
            // Cycle the sweep so every kill point gets iters/max_points
            // jittered samples.
            let point = 1 + (i as u64 % c.max_points);
            let run = rt_crash_run(&c, point, seed);
            assert_ne!(
                run.outcome,
                CrashOutcome::Wedged,
                "crash scenario {} ({}), kill point {point}, iteration {i} (seed \
                 {seed:#x}): a mid-protocol panic wedged the real-thread run",
                c.name,
                c.mechanism,
            );
            assert!(
                envelope.contains(&run.outcome),
                "crash scenario {}, kill point {point}, iteration {i}: real outcome \
                 {:?} is outside the simulator envelope {envelope:?}",
                c.name,
                run.outcome,
            );
            assert!(
                run.protocol.is_empty(),
                "crash scenario {}, kill point {point}, iteration {i}: the real trace \
                 violates the poison protocol: {:?}",
                c.name,
                run.protocol,
            );
        }
    }
}
