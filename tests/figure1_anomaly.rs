//! Experiment F1/F1a/F2: the paper's Figures 1 & 2 under **exhaustive
//! schedule exploration**.
//!
//! Bloom's footnote 3 argues, by exhibiting one interleaving, that the
//! Figure-1 path-expression solution does not implement readers priority.
//! The deterministic simulator lets us upgrade that argument from "one
//! hand-traced interleaving" to a machine-checked quantifier: over *every*
//! schedule of the footnote-3 scenario,
//!
//! * the Figure-1 solution violates the readers-priority constraint in at
//!   least one schedule (and exclusion in none) — the anomaly is real;
//! * the monitor, serializer and semaphore readers-priority solutions
//!   violate it in *no* schedule — the anomaly is Figure 1's, not the
//!   scenario's;
//! * the Figure-2 writers-priority solution never lets a later reader
//!   overtake a waiting writer.

#![deny(deprecated)]

use bloom_core::checks::{check_exclusion, check_no_later_overtake, check_priority_over};
use bloom_core::events::extract;
use bloom_core::MechanismId;
use bloom_problems::rw::{self, RwVariant};
use bloom_sim::prelude::*;
use std::sync::Arc;

const READ: &str = "read";
const WRITE: &str = "write";

/// The footnote-3 scenario: two writers and one reader, one operation
/// each. (Every interleaving is explored, so no yields are needed to
/// steer the schedule.)
fn footnote3_scenario(mech: MechanismId) -> Sim {
    let mut sim = Sim::new();
    let db = rw::make(mech, RwVariant::ReadersPriority);
    for i in 0..2 {
        let db = Arc::clone(&db);
        sim.spawn(&format!("writer{i}"), move |ctx| {
            db.write(ctx, &mut || ctx.yield_now());
        });
    }
    let db2 = Arc::clone(&db);
    sim.spawn("reader", move |ctx| {
        db2.read(ctx, &mut || ctx.yield_now());
    });
    sim
}

struct ExplorationOutcome {
    schedules: usize,
    complete: bool,
    priority_violations: usize,
    exclusion_violations: usize,
    failures: usize,
}

fn explore_readers_priority(mech: MechanismId, cap: usize) -> ExplorationOutcome {
    // (failed, priority violation, exclusion violation) per schedule.
    let (journal, stats) = ExploreConfig::new(cap).engine(Engine::Parallel).run(
        || footnote3_scenario(mech),
        |_, result| {
            let report = match result {
                Ok(r) => r,
                Err(_) => return (true, false, false),
            };
            let events = extract(&report.trace);
            (
                false,
                !check_priority_over(&events, READ, WRITE).is_empty(),
                !check_exclusion(&events, &[(READ, WRITE), (WRITE, WRITE)]).is_empty(),
            )
        },
    );
    ExplorationOutcome {
        schedules: journal.len(),
        complete: stats.complete,
        priority_violations: journal.iter().filter(|r| r.value.1).count(),
        exclusion_violations: journal.iter().filter(|r| r.value.2).count(),
        failures: journal.iter().filter(|r| r.value.0).count(),
    }
}

#[test]
fn figure1_violates_readers_priority_in_some_schedule() {
    let out = explore_readers_priority(MechanismId::PathV1, 200_000);
    assert!(
        out.complete,
        "exploration must cover the whole schedule tree"
    );
    assert_eq!(out.failures, 0, "no deadlocks or panics");
    assert!(
        out.priority_violations > 0,
        "footnote 3: some schedule must show a writer beating a waiting reader \
         ({} schedules explored)",
        out.schedules
    );
    assert_eq!(
        out.exclusion_violations, 0,
        "the anomaly is purely a priority bug; exclusion holds in all {} schedules",
        out.schedules
    );
    println!(
        "figure-1: {} of {} schedules violate readers priority",
        out.priority_violations, out.schedules
    );
}

#[test]
fn monitor_solution_is_anomaly_free_over_all_schedules() {
    let out = explore_readers_priority(MechanismId::Monitor, 400_000);
    assert!(out.complete);
    assert_eq!(out.failures, 0);
    assert_eq!(
        out.priority_violations, 0,
        "monitor readers-priority must hold in all {} schedules",
        out.schedules
    );
    assert_eq!(out.exclusion_violations, 0);
}

#[test]
fn serializer_solution_is_anomaly_free_over_all_schedules() {
    let out = explore_readers_priority(MechanismId::Serializer, 400_000);
    assert!(out.complete);
    assert_eq!(out.failures, 0);
    assert_eq!(out.priority_violations, 0);
    assert_eq!(out.exclusion_violations, 0);
}

#[test]
fn semaphore_solution_is_anomaly_free_over_all_schedules() {
    let out = explore_readers_priority(MechanismId::Semaphore, 400_000);
    assert!(out.complete);
    assert_eq!(out.failures, 0);
    assert_eq!(out.priority_violations, 0);
    assert_eq!(out.exclusion_violations, 0);
}

/// The Andler (v3) predicate solution — `path {read},write end` plus the
/// predicate `blocked(read) == 0` on `write` — fixes the anomaly: the
/// paper's remark that Andler's version "comes closest to satisfying our
/// requirements" made checkable.
#[test]
fn path_v3_predicates_fix_the_anomaly() {
    let out = explore_readers_priority(MechanismId::PathV3, 400_000);
    assert!(out.complete);
    assert_eq!(out.failures, 0);
    assert_eq!(
        out.priority_violations, 0,
        "v3 predicates must eliminate the footnote-3 anomaly          ({} schedules explored)",
        out.schedules
    );
    assert_eq!(out.exclusion_violations, 0);
}

/// The CSP server solution (§6 future work): the guard
/// `start_read.pending_senders() == 0` on the write alternative plays the
/// same role as the v3 predicate — no anomaly in any schedule.
#[test]
fn csp_server_is_anomaly_free_over_all_schedules() {
    let out = explore_readers_priority(MechanismId::Csp, 400_000);
    assert!(out.complete);
    assert_eq!(out.failures, 0);
    assert_eq!(out.priority_violations, 0, "{} schedules", out.schedules);
    assert_eq!(out.exclusion_violations, 0);
}

/// Figure 2, same scenario shape but writers-priority semantics: no
/// reader that requests after a waiting writer may overtake it, in any
/// schedule.
#[test]
fn figure2_never_lets_later_readers_overtake() {
    let (journal, stats) = ExploreConfig::new(400_000).engine(Engine::Parallel).run(
        || {
            let mut sim = Sim::new();
            let db = rw::make(MechanismId::PathV1, RwVariant::WritersPriority);
            for i in 0..2 {
                let db = Arc::clone(&db);
                sim.spawn(&format!("writer{i}"), move |ctx| {
                    db.write(ctx, &mut || ctx.yield_now());
                });
            }
            let db2 = Arc::clone(&db);
            sim.spawn("reader", move |ctx| {
                db2.read(ctx, &mut || ctx.yield_now());
            });
            sim
        },
        |_, result| {
            let report = result.as_ref().expect("figure 2 must not deadlock");
            let events = extract(&report.trace);
            !check_no_later_overtake(&events, WRITE, READ).is_empty()
        },
    );
    assert!(stats.complete);
    let schedules = journal.len();
    let violations = journal.iter().filter(|r| r.value).count();
    assert_eq!(violations, 0, "figure 2 holds in all {schedules} schedules");
}
