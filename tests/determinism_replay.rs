//! Cross-crate determinism and replay guarantees.
//!
//! Every behavioral claim in this reproduction rests on the simulator
//! being deterministic: same policy → same trace, recorded decisions →
//! identical replay. These tests exercise that over full problem
//! workloads (not just toy processes).

#![deny(deprecated)]

use bloom_core::events::extract;
use bloom_core::MechanismId;
use bloom_problems::drivers::rw_scenario;
use bloom_problems::rw::{self, RwVariant};
use bloom_sim::prelude::*;
use std::sync::Arc;

fn signature(report: &SimReport) -> Vec<String> {
    extract(&report.trace)
        .iter()
        .map(|e| format!("{}:{}:{:?}:{:?}", e.seq, e.pid, e.phase, e.op))
        .collect()
}

#[test]
fn identical_seeds_produce_identical_traces() {
    for mech in rw::MECHANISMS {
        let a = rw_scenario(mech, RwVariant::Fcfs, 4, 2, 3, Some(12345));
        let b = rw_scenario(mech, RwVariant::Fcfs, 4, 2, 3, Some(12345));
        assert_eq!(
            signature(&a),
            signature(&b),
            "{mech}: same seed, same trace"
        );
    }
}

#[test]
fn different_seeds_usually_differ() {
    // At least one pair of seeds must differ for a contended workload —
    // otherwise the policy is not actually consulted.
    let mut distinct = std::collections::BTreeSet::new();
    for seed in 0..5 {
        let r = rw_scenario(
            MechanismId::Monitor,
            RwVariant::ReadersPriority,
            4,
            2,
            3,
            Some(seed),
        );
        distinct.insert(signature(&r));
    }
    assert!(
        distinct.len() > 1,
        "five seeds produced identical schedules"
    );
}

#[test]
fn recorded_decisions_replay_full_problem_runs() {
    let build = || {
        let mut sim = Sim::new();
        let db = rw::make(MechanismId::Serializer, RwVariant::WritersPriority);
        for i in 0..3 {
            let db = Arc::clone(&db);
            sim.spawn(&format!("reader{i}"), move |ctx| {
                for _ in 0..3 {
                    db.read(ctx, &mut || ctx.yield_now());
                }
            });
        }
        for i in 0..2 {
            let db = Arc::clone(&db);
            sim.spawn(&format!("writer{i}"), move |ctx| {
                for _ in 0..3 {
                    db.write(ctx, &mut || ctx.yield_now());
                }
            });
        }
        sim
    };
    let mut original = build();
    original.set_policy(RandomPolicy::new(777));
    let report = original.run().expect("clean run");
    let script: Vec<u32> = report.decisions.iter().map(|d| d.chosen).collect();

    let mut replayed = build();
    replayed.set_policy(ReplayPolicy::new(script));
    let replay_report = replayed.run().expect("replay runs");
    assert_eq!(signature(&report), signature(&replay_report));
    assert_eq!(report.final_time, replay_report.final_time);
    assert_eq!(report.steps, replay_report.steps);
}

#[test]
fn virtual_time_is_stable_across_runs() {
    let a = rw_scenario(MechanismId::PathV1, RwVariant::Fcfs, 3, 2, 2, None);
    let b = rw_scenario(MechanismId::PathV1, RwVariant::Fcfs, 3, 2, 2, None);
    let times_a: Vec<u64> = a.trace.events().iter().map(|e| e.time.0).collect();
    let times_b: Vec<u64> = b.trace.events().iter().map(|e| e.time.0).collect();
    assert_eq!(times_a, times_b);
}
