//! Soundness oracle for the explorers' equivalence pruning.
//!
//! proptest generates small random workloads — processes taking
//! semaphore-protected critical sections on a shared or private semaphore,
//! with pure stutter quanta mixed in — and the pruned exploration must
//! observe **exactly** the behaviors the unpruned one does:
//!
//! * the set of distinct per-run journals (liveness verdict + full
//!   user-event trace) is identical — pruning may skip a schedule only
//!   when an equivalent one is already in the set;
//! * every checker verdict is identical — here, mutual exclusion of the
//!   critical sections, which holds in every schedule of either mode;
//! * the pruned exploration never visits *more* schedules.
//!
//! This is the workload family the object-granular footprint prune was
//! built for (disjoint semaphores commute; a shared one does not), so the
//! oracle exercises both the sleep-set machinery and its conservative
//! fallbacks.
//!
//! The revisit mode (DESIGN.md §2.14) is held to the same oracle across
//! the full execution matrix — serial and 1/2/4/8 worker threads, each
//! under whole-prefix replay and both checkpoint spacings — plus its own
//! accounting cross-check (`ExploreStats::assert_consistent`).
//!
//! A second generator adds *data* nondeterminism (`Ctx::choose_value`,
//! DESIGN.md §2.15): a chooser process draws a value and either observes
//! it exactly (no collapse is sound — the symbolic engine must enumerate
//! the domain) or only compares it against a threshold (the constraint
//! classes must collapse, strictly beating brute-force enumeration). The
//! revisit engine's behavior set must equal the brute-force one, and its
//! journals must stay byte-identical across the same matrix.

#![deny(deprecated)]

use bloom_core::checks::{check_exclusion, expect_clean};
use bloom_core::events::extract;
use bloom_semaphore::Semaphore;
use bloom_sim::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const BUDGET: usize = 30_000;

/// One step of a generated process program.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `p`, emit `enter:c<k>`, yield once, emit `exit:c<k>`, `v` on
    /// semaphore `k` — a critical section with a preemption window inside.
    Crit(usize),
    /// `try_p_ctx` on semaphore `k`: the critical section if a permit was
    /// free, an observable `miss` note otherwise. The branch's outcome
    /// depends on the schedule, so the attempt must be footprint-visible
    /// to the prune — the regression case for the bare `try_p` blind spot.
    TryCrit(usize),
    /// A user event with no synchronization at all.
    Note(u8),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..2).prop_map(Step::Crit),
        (0usize..2).prop_map(Step::TryCrit),
        (0u8..3).prop_map(Step::Note),
    ]
}

/// Two full programs plus an optional one-note third process: enough to
/// contest every dispatch, small enough that the *unpruned* tree stays
/// well under budget.
fn workload() -> impl Strategy<Value = (Vec<Step>, Vec<Step>, Option<u8>)> {
    (
        prop::collection::vec(step(), 1..3),
        prop::collection::vec(step(), 1..3),
        prop_oneof![Just(None), (0u8..3).prop_map(Some)],
    )
}

fn exec_step(ctx: &Ctx, sems: &[Semaphore; 2], i: usize, op: Step) {
    match op {
        Step::Crit(k) => {
            sems[k].p(ctx);
            ctx.emit(&format!("enter:c{k}"), &[]);
            ctx.yield_now();
            ctx.emit(&format!("exit:c{k}"), &[]);
            sems[k].v(ctx);
        }
        Step::TryCrit(k) => {
            if sems[k].try_p_ctx(ctx) {
                ctx.emit(&format!("enter:c{k}"), &[]);
                ctx.yield_now();
                ctx.emit(&format!("exit:c{k}"), &[]);
                sems[k].v(ctx);
            } else {
                ctx.emit(&format!("miss:{k}"), &[]);
            }
        }
        Step::Note(tag) => ctx.emit(&format!("note:{i}:{tag}"), &[]),
    }
}

fn build_sim(workload: &(Vec<Step>, Vec<Step>, Option<u8>)) -> Sim {
    let mut sim = Sim::new();
    let sems: Arc<[Semaphore; 2]> =
        Arc::new([Semaphore::strong("s0", 1), Semaphore::strong("s1", 1)]);
    let programs = [workload.0.clone(), workload.1.clone()];
    for (i, program) in programs.into_iter().enumerate() {
        let sems = Arc::clone(&sems);
        sim.spawn(&format!("p{i}"), move |ctx| {
            for op in program {
                exec_step(ctx, &sems, i, op);
            }
        });
    }
    if let Some(tag) = workload.2 {
        sim.spawn("p2", move |ctx| ctx.emit(&format!("note:2:{tag}"), &[]));
    }
    sim
}

/// Journal line for one schedule: liveness verdict plus the full ordered
/// user-event trace. Also asserts the exclusion checker is clean — the
/// semaphores guard the critical sections in *every* schedule, pruned or
/// not, so a prune that manufactured a violation would fail here first.
fn line(result: &Result<SimReport, SimError>) -> String {
    let report = match result {
        Ok(report) => report,
        Err(err) => &err.report,
    };
    let events = extract(&report.trace);
    expect_clean(
        &check_exclusion(&events, &[("c0", "c0"), ("c1", "c1")]),
        "critical sections are semaphore-protected",
    );
    // Behavior = the ordered (process, label, params) sequence. Timestamps
    // are deliberately excluded: commuting a pure quantum shifts the
    // timestamps of everything after it — that is exactly the
    // unobservable difference the prune collapses (reading the clock via
    // `Ctx::now` voids the prune for this very reason).
    let trace: Vec<String> = report
        .trace
        .user_events()
        .map(|(e, label, params)| format!("{}:{label}:{params:?}", e.pid))
        .collect();
    format!("{} {}", result.is_ok(), trace.join(","))
}

/// The `try_p` footprint blind spot, pinned as a deterministic case: a
/// nonblocking attempt races a `v`, so the hit/miss branch depends on the
/// schedule. The probe sits alone in its quantum — the `yield_now`
/// separates it from the branch's emission, so nothing *else* in that
/// quantum leaves a footprint. The bare `Semaphore::try_p` records none
/// either: the probing quantum looks pure, the prune commutes it past the
/// `v`, and the pruned exploration loses one of the two behaviors (swap
/// in `try_p` and this test fails). The instrumented `try_p_ctx` marks
/// the access; both explorations must observe both behaviors.
#[test]
fn instrumented_try_p_is_visible_to_the_prune() {
    let build = || {
        let mut sim = Sim::new();
        let sem = Arc::new(Semaphore::strong("s", 0));
        let s1 = Arc::clone(&sem);
        sim.spawn("taker", move |ctx| {
            let got = s1.try_p_ctx(ctx);
            ctx.yield_now();
            if got {
                ctx.emit("got", &[]);
                s1.v(ctx);
            } else {
                ctx.emit("missed", &[]);
            }
        });
        let s2 = Arc::clone(&sem);
        sim.spawn("giver", move |ctx| s2.v(ctx));
        sim
    };
    let collect = |prune: bool| {
        let (journal, stats) = ExploreConfig::new(BUDGET)
            .prune(prune)
            .run(build, |_, result| {
                let report = result.as_ref().expect("no deadlock possible");
                let labels: Vec<String> = report
                    .trace
                    .user_events()
                    .map(|(_, label, _)| label.to_string())
                    .collect();
                labels.join(",")
            });
        assert!(stats.complete, "tiny tree must be fully explored");
        journal
            .into_iter()
            .map(|r| r.value)
            .collect::<BTreeSet<_>>()
    };
    let unpruned = collect(false);
    assert_eq!(
        unpruned.len(),
        2,
        "the race has exactly two behaviors: {unpruned:?}"
    );
    assert_eq!(collect(true), unpruned, "prune must keep both behaviors");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn pruned_exploration_observes_every_behavior(w in workload()) {
        let behaviors = |journal: Vec<bloom_sim::ScheduleRecord<String>>| -> BTreeSet<String> {
            journal.into_iter().map(|r| r.value).collect()
        };
        let (unpruned_journal, unpruned_stats) = ExploreConfig::new(BUDGET)
            .run(|| build_sim(&w), |_, result| line(result));
        prop_assert!(unpruned_stats.complete, "workload exceeds the budget");
        let unpruned = behaviors(unpruned_journal);

        let (pruned_journal, pruned_stats) = ExploreConfig::new(BUDGET)
            .prune(true)
            .run(|| build_sim(&w), |_, result| line(result));
        prop_assert!(pruned_stats.complete);
        let pruned = behaviors(pruned_journal);

        prop_assert!(
            pruned_stats.schedules <= unpruned_stats.schedules,
            "pruning visited more schedules ({} > {})",
            pruned_stats.schedules,
            unpruned_stats.schedules,
        );
        prop_assert_eq!(
            &pruned, &unpruned,
            "pruned and unpruned explorations must observe the same \
             behavior set (schedules: {} pruned vs {} unpruned)",
            pruned_stats.schedules, unpruned_stats.schedules,
        );

        // The same oracle through the checkpointed execution path: the
        // prune decisions feed on footprints recorded during runs that now
        // resume from held branch-point checkpoints (DESIGN.md §2.13), so
        // the densest spacing must reproduce the pruned exploration —
        // schedule count and behavior set — exactly.
        let (ckpt_journal, ckpt_stats) = ExploreConfig::new(BUDGET)
            .prune(true)
            .checkpoint(CheckpointSpacing::Dense { budget: 2 })
            .run(|| build_sim(&w), |_, result| line(result));
        prop_assert!(ckpt_stats.complete);
        prop_assert_eq!(
            ckpt_stats.schedules, pruned_stats.schedules,
            "checkpointed pruning changed the schedule count"
        );
        prop_assert_eq!(
            ckpt_stats.pruned, pruned_stats.pruned,
            "checkpointed pruning changed the prune count"
        );
        prop_assert_eq!(
            &behaviors(ckpt_journal), &unpruned,
            "checkpointed pruned exploration must observe the same \
             behavior set"
        );

        // The revisit mode against the same oracle, across the full
        // execution matrix: serial and 1/2/4/8 worker threads, each under
        // whole-prefix replay and both checkpoint spacings. The race
        // analysis is a different soundness argument from the sleep sets
        // (it *reverses* observed conflicts instead of skipping commuting
        // siblings), so it gets the same behavior-set, schedule-count, and
        // accounting scrutiny on every workload the generator produces.
        // The unified verbs return journals sorted by decision vector, so
        // every entry below is directly byte-comparable.
        let revisit = ExploreConfig::new(BUDGET).mode(PruneMode::Revisit);
        let (revisit_journal, revisit_stats) =
            revisit.run(|| build_sim(&w), |_, result| line(result));
        prop_assert!(revisit_stats.complete);
        revisit_stats.assert_consistent();
        prop_assert!(
            revisit_stats.schedules <= unpruned_stats.schedules,
            "revisit visited more schedules than exhaustive ({} > {})",
            revisit_stats.schedules,
            unpruned_stats.schedules,
        );
        let revisit_behaviors: BTreeSet<String> =
            revisit_journal.iter().map(|r| r.value.clone()).collect();
        prop_assert_eq!(
            &revisit_behaviors, &unpruned,
            "revisit exploration must observe the same behavior set \
             (schedules: {} revisit vs {} unpruned)",
            revisit_stats.schedules, unpruned_stats.schedules,
        );

        for spacing in [
            CheckpointSpacing::Replay,
            CheckpointSpacing::Dense { budget: 2 },
            CheckpointSpacing::Geometric { budget: 4 },
        ] {
            let spaced = revisit.clone().checkpoint(spacing);
            if spacing != CheckpointSpacing::Replay {
                let (journal, stats) =
                    spaced.run(|| build_sim(&w), |_, result| line(result));
                prop_assert!(stats.complete);
                stats.assert_consistent();
                prop_assert_eq!(stats.schedules, revisit_stats.schedules);
                prop_assert_eq!(stats.pruned, revisit_stats.pruned);
                prop_assert_eq!(stats.revisits, revisit_stats.revisits);
                prop_assert_eq!(
                    &journal, &revisit_journal,
                    "{:?}: checkpointed revisit journal diverged from replay",
                    spacing,
                );
            }
            for threads in [1, 2, 4, 8] {
                let (records, stats) = spaced
                    .clone()
                    .threads(threads)
                    .run(|| build_sim(&w), |_, result| line(result));
                prop_assert!(stats.complete);
                stats.assert_consistent();
                prop_assert_eq!(stats.schedules, revisit_stats.schedules);
                prop_assert_eq!(stats.pruned, revisit_stats.pruned);
                prop_assert_eq!(
                    stats.revisit_requests,
                    revisit_stats.revisit_requests
                );
                prop_assert_eq!(stats.revisits, revisit_stats.revisits);
                prop_assert_eq!(
                    &records, &revisit_journal,
                    "{:?} x {} threads: revisit journal diverged from serial",
                    spacing, threads,
                );
            }
        }
    }
}

/// One data-nondeterminism step for the symbolic oracle (DESIGN.md §2.15).
#[derive(Debug, Clone, Copy)]
enum DataStep {
    /// `choose_value` over `0..n`, observed exactly via `SymValue::get`:
    /// every value is behaviorally distinct, so no collapse is sound and
    /// the symbolic engine must enumerate the whole domain.
    Pick(i64),
    /// `choose_value` over `1..=3` compared against `threshold`: the
    /// behavior depends only on the comparison class, so the class with
    /// two members must collapse to one representative — strictly fewer
    /// runs than brute-force enumeration.
    Guard { sem: usize, threshold: i64 },
}

fn data_step() -> impl Strategy<Value = DataStep> {
    prop_oneof![
        (2i64..4).prop_map(DataStep::Pick),
        ((0usize..2), (1i64..3)).prop_map(|(sem, threshold)| DataStep::Guard { sem, threshold }),
    ]
}

/// One scheduler-nondeterministic program racing one data-choosing
/// process (plus an optional pure-note third): every data decision point
/// appears under several scheduling contexts, so the collapse has to be
/// correct at *every* tree position, not just the root.
fn data_workload() -> impl Strategy<Value = (Vec<Step>, DataStep, Option<u8>)> {
    (
        prop::collection::vec(step(), 1..3),
        data_step(),
        prop_oneof![Just(None), (0u8..3).prop_map(Some)],
    )
}

fn build_data_sim(w: &(Vec<Step>, DataStep, Option<u8>)) -> Sim {
    let mut sim = Sim::new();
    let sems: Arc<[Semaphore; 2]> =
        Arc::new([Semaphore::strong("s0", 1), Semaphore::strong("s1", 1)]);
    let program = w.0.clone();
    let psems = Arc::clone(&sems);
    sim.spawn("p0", move |ctx| {
        for op in program {
            exec_step(ctx, &psems, 0, op);
        }
    });
    let data = w.1;
    sim.spawn("chooser", move |ctx| {
        ctx.yield_now();
        match data {
            DataStep::Pick(n) => {
                let v = ctx.choose_value("pick", 0..n);
                ctx.emit("pick", &[v.get()]);
            }
            DataStep::Guard { sem, threshold } => {
                let v = ctx.choose_value("load", 1..=3);
                if v.gt(threshold) {
                    sems[sem].p(ctx);
                    ctx.emit(&format!("enter:c{sem}"), &[]);
                    ctx.yield_now();
                    ctx.emit(&format!("exit:c{sem}"), &[]);
                    sems[sem].v(ctx);
                } else {
                    ctx.emit("light", &[]);
                }
            }
        }
    });
    if let Some(tag) = w.2 {
        sim.spawn("p2", move |ctx| ctx.emit(&format!("note:2:{tag}"), &[]));
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The symbolic collapse against brute force: the revisit engine's
    /// behavior set over a workload with data decisions must equal the
    /// plain DFS enumeration of every concrete value, its accounting must
    /// balance, and (when the data step only *compares* the value) it
    /// must get there in strictly fewer runs. Journals and statistics
    /// stay byte-identical across serial and 1/2/4/8 worker threads under
    /// all three checkpoint spacings.
    #[test]
    fn symbolic_exploration_matches_brute_force(w in data_workload()) {
        let (brute_journal, brute_stats) = ExploreConfig::new(BUDGET)
            .run(|| build_data_sim(&w), |_, result| line(result));
        prop_assert!(brute_stats.complete, "workload exceeds the budget");
        let brute: BTreeSet<String> =
            brute_journal.into_iter().map(|r| r.value).collect();

        let revisit = ExploreConfig::new(BUDGET).mode(PruneMode::Revisit);
        let (reference, ref_stats) =
            revisit.run(|| build_data_sim(&w), |_, result| line(result));
        prop_assert!(ref_stats.complete);
        ref_stats.assert_consistent();
        prop_assert!(
            ref_stats.sym_grants > 0,
            "a 2+-value domain always grants at least one value sibling"
        );
        let symbolic: BTreeSet<String> =
            reference.iter().map(|r| r.value.clone()).collect();
        prop_assert_eq!(
            &symbolic, &brute,
            "symbolic behavior set must equal brute-force enumeration \
             (schedules: {} symbolic vs {} brute)",
            ref_stats.schedules, brute_stats.schedules,
        );
        prop_assert!(
            ref_stats.schedules <= brute_stats.schedules,
            "the symbolic engine never runs more than brute force \
             ({} > {})",
            ref_stats.schedules,
            brute_stats.schedules,
        );
        if matches!(w.1, DataStep::Guard { .. }) {
            prop_assert!(
                ref_stats.schedules < brute_stats.schedules,
                "comparison-only observation must collapse the two-member \
                 class ({} vs {})",
                ref_stats.schedules,
                brute_stats.schedules,
            );
        }

        for spacing in [
            CheckpointSpacing::Replay,
            CheckpointSpacing::Dense { budget: 2 },
            CheckpointSpacing::Geometric { budget: 4 },
        ] {
            let spaced = revisit.clone().checkpoint(spacing);
            if spacing != CheckpointSpacing::Replay {
                let (journal, stats) =
                    spaced.run(|| build_data_sim(&w), |_, result| line(result));
                prop_assert!(stats.complete);
                stats.assert_consistent();
                prop_assert_eq!(stats.schedules, ref_stats.schedules);
                prop_assert_eq!(stats.sym_requests, ref_stats.sym_requests);
                prop_assert_eq!(stats.sym_grants, ref_stats.sym_grants);
                prop_assert_eq!(
                    &journal, &reference,
                    "{:?}: checkpointed symbolic journal diverged",
                    spacing,
                );
            }
            for threads in [1, 2, 4, 8] {
                let (records, stats) = spaced
                    .clone()
                    .threads(threads)
                    .run(|| build_data_sim(&w), |_, result| line(result));
                prop_assert!(stats.complete);
                stats.assert_consistent();
                prop_assert_eq!(stats.schedules, ref_stats.schedules);
                prop_assert_eq!(stats.pruned, ref_stats.pruned);
                prop_assert_eq!(stats.revisits, ref_stats.revisits);
                prop_assert_eq!(stats.sym_requests, ref_stats.sym_requests);
                prop_assert_eq!(stats.sym_grants, ref_stats.sym_grants);
                prop_assert_eq!(
                    &records, &reference,
                    "{:?} x {} threads: symbolic journal diverged from serial",
                    spacing, threads,
                );
            }
        }
    }
}
