//! Soundness oracle for the explorers' equivalence pruning.
//!
//! proptest generates small random workloads — processes taking
//! semaphore-protected critical sections on a shared or private semaphore,
//! with pure stutter quanta mixed in — and the pruned exploration must
//! observe **exactly** the behaviors the unpruned one does:
//!
//! * the set of distinct per-run journals (liveness verdict + full
//!   user-event trace) is identical — pruning may skip a schedule only
//!   when an equivalent one is already in the set;
//! * every checker verdict is identical — here, mutual exclusion of the
//!   critical sections, which holds in every schedule of either mode;
//! * the pruned exploration never visits *more* schedules.
//!
//! This is the workload family the object-granular footprint prune was
//! built for (disjoint semaphores commute; a shared one does not), so the
//! oracle exercises both the sleep-set machinery and its conservative
//! fallbacks.
//!
//! The revisit mode (DESIGN.md §2.14) is held to the same oracle across
//! the full execution matrix — serial and 1/2/4/8 worker threads, each
//! under whole-prefix replay and both checkpoint spacings — plus its own
//! accounting cross-check (`ExploreStats::assert_consistent`).

#![deny(deprecated)]

use bloom_core::checks::{check_exclusion, expect_clean};
use bloom_core::events::extract;
use bloom_semaphore::Semaphore;
use bloom_sim::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

const BUDGET: usize = 30_000;

/// One step of a generated process program.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `p`, emit `enter:c<k>`, yield once, emit `exit:c<k>`, `v` on
    /// semaphore `k` — a critical section with a preemption window inside.
    Crit(usize),
    /// `try_p_ctx` on semaphore `k`: the critical section if a permit was
    /// free, an observable `miss` note otherwise. The branch's outcome
    /// depends on the schedule, so the attempt must be footprint-visible
    /// to the prune — the regression case for the bare `try_p` blind spot.
    TryCrit(usize),
    /// A user event with no synchronization at all.
    Note(u8),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..2).prop_map(Step::Crit),
        (0usize..2).prop_map(Step::TryCrit),
        (0u8..3).prop_map(Step::Note),
    ]
}

/// Two full programs plus an optional one-note third process: enough to
/// contest every dispatch, small enough that the *unpruned* tree stays
/// well under budget.
fn workload() -> impl Strategy<Value = (Vec<Step>, Vec<Step>, Option<u8>)> {
    (
        prop::collection::vec(step(), 1..3),
        prop::collection::vec(step(), 1..3),
        prop_oneof![Just(None), (0u8..3).prop_map(Some)],
    )
}

fn build_sim(workload: &(Vec<Step>, Vec<Step>, Option<u8>)) -> Sim {
    let mut sim = Sim::new();
    let sems: Arc<[Semaphore; 2]> =
        Arc::new([Semaphore::strong("s0", 1), Semaphore::strong("s1", 1)]);
    let programs = [workload.0.clone(), workload.1.clone()];
    for (i, program) in programs.into_iter().enumerate() {
        let sems = Arc::clone(&sems);
        sim.spawn(&format!("p{i}"), move |ctx| {
            for op in program {
                match op {
                    Step::Crit(k) => {
                        sems[k].p(ctx);
                        ctx.emit(&format!("enter:c{k}"), &[]);
                        ctx.yield_now();
                        ctx.emit(&format!("exit:c{k}"), &[]);
                        sems[k].v(ctx);
                    }
                    Step::TryCrit(k) => {
                        if sems[k].try_p_ctx(ctx) {
                            ctx.emit(&format!("enter:c{k}"), &[]);
                            ctx.yield_now();
                            ctx.emit(&format!("exit:c{k}"), &[]);
                            sems[k].v(ctx);
                        } else {
                            ctx.emit(&format!("miss:{k}"), &[]);
                        }
                    }
                    Step::Note(tag) => ctx.emit(&format!("note:{i}:{tag}"), &[]),
                }
            }
        });
    }
    if let Some(tag) = workload.2 {
        sim.spawn("p2", move |ctx| ctx.emit(&format!("note:2:{tag}"), &[]));
    }
    sim
}

/// Journal line for one schedule: liveness verdict plus the full ordered
/// user-event trace. Also asserts the exclusion checker is clean — the
/// semaphores guard the critical sections in *every* schedule, pruned or
/// not, so a prune that manufactured a violation would fail here first.
fn line(result: &Result<SimReport, SimError>) -> String {
    let report = match result {
        Ok(report) => report,
        Err(err) => &err.report,
    };
    let events = extract(&report.trace);
    expect_clean(
        &check_exclusion(&events, &[("c0", "c0"), ("c1", "c1")]),
        "critical sections are semaphore-protected",
    );
    // Behavior = the ordered (process, label, params) sequence. Timestamps
    // are deliberately excluded: commuting a pure quantum shifts the
    // timestamps of everything after it — that is exactly the
    // unobservable difference the prune collapses (reading the clock via
    // `Ctx::now` voids the prune for this very reason).
    let trace: Vec<String> = report
        .trace
        .user_events()
        .map(|(e, label, params)| format!("{}:{label}:{params:?}", e.pid))
        .collect();
    format!("{} {}", result.is_ok(), trace.join(","))
}

/// The `try_p` footprint blind spot, pinned as a deterministic case: a
/// nonblocking attempt races a `v`, so the hit/miss branch depends on the
/// schedule. The probe sits alone in its quantum — the `yield_now`
/// separates it from the branch's emission, so nothing *else* in that
/// quantum leaves a footprint. The bare `Semaphore::try_p` records none
/// either: the probing quantum looks pure, the prune commutes it past the
/// `v`, and the pruned exploration loses one of the two behaviors (swap
/// in `try_p` and this test fails). The instrumented `try_p_ctx` marks
/// the access; both explorations must observe both behaviors.
#[test]
fn instrumented_try_p_is_visible_to_the_prune() {
    let build = || {
        let mut sim = Sim::new();
        let sem = Arc::new(Semaphore::strong("s", 0));
        let s1 = Arc::clone(&sem);
        sim.spawn("taker", move |ctx| {
            let got = s1.try_p_ctx(ctx);
            ctx.yield_now();
            if got {
                ctx.emit("got", &[]);
                s1.v(ctx);
            } else {
                ctx.emit("missed", &[]);
            }
        });
        let s2 = Arc::clone(&sem);
        sim.spawn("giver", move |ctx| s2.v(ctx));
        sim
    };
    let collect = |prune: bool| {
        let mut behaviors = BTreeSet::new();
        let stats = ExploreConfig::new(BUDGET)
            .prune(prune)
            .serial()
            .run(build, |_, result| {
                let report = result.as_ref().expect("no deadlock possible");
                let labels: Vec<String> = report
                    .trace
                    .user_events()
                    .map(|(_, label, _)| label.to_string())
                    .collect();
                behaviors.insert(labels.join(","));
            });
        assert!(stats.complete, "tiny tree must be fully explored");
        behaviors
    };
    let unpruned = collect(false);
    assert_eq!(
        unpruned.len(),
        2,
        "the race has exactly two behaviors: {unpruned:?}"
    );
    assert_eq!(collect(true), unpruned, "prune must keep both behaviors");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn pruned_exploration_observes_every_behavior(w in workload()) {
        let mut unpruned = BTreeSet::new();
        let unpruned_stats = ExploreConfig::new(BUDGET)
            .serial()
            .run(|| build_sim(&w), |_, result| {
                unpruned.insert(line(result));
            });
        prop_assert!(unpruned_stats.complete, "workload exceeds the budget");

        let mut pruned = BTreeSet::new();
        let pruned_stats = ExploreConfig::new(BUDGET)
            .prune(true)
            .serial()
            .run(|| build_sim(&w), |_, result| {
                pruned.insert(line(result));
            });
        prop_assert!(pruned_stats.complete);

        prop_assert!(
            pruned_stats.schedules <= unpruned_stats.schedules,
            "pruning visited more schedules ({} > {})",
            pruned_stats.schedules,
            unpruned_stats.schedules,
        );
        prop_assert_eq!(
            &pruned, &unpruned,
            "pruned and unpruned explorations must observe the same \
             behavior set (schedules: {} pruned vs {} unpruned)",
            pruned_stats.schedules, unpruned_stats.schedules,
        );

        // The same oracle through the checkpointed execution path: the
        // prune decisions feed on footprints recorded during runs that now
        // resume from held branch-point checkpoints (DESIGN.md §2.13), so
        // the densest spacing must reproduce the pruned exploration —
        // schedule count and behavior set — exactly.
        let mut ckpt = BTreeSet::new();
        let ckpt_stats = ExploreConfig::new(BUDGET)
            .prune(true)
            .checkpoint(CheckpointSpacing::Dense { budget: 2 })
            .serial()
            .run(|| build_sim(&w), |_, result| {
                ckpt.insert(line(result));
            });
        prop_assert!(ckpt_stats.complete);
        prop_assert_eq!(
            ckpt_stats.schedules, pruned_stats.schedules,
            "checkpointed pruning changed the schedule count"
        );
        prop_assert_eq!(
            ckpt_stats.pruned, pruned_stats.pruned,
            "checkpointed pruning changed the prune count"
        );
        prop_assert_eq!(
            &ckpt, &unpruned,
            "checkpointed pruned exploration must observe the same \
             behavior set"
        );

        // The revisit mode against the same oracle, across the full
        // execution matrix: serial and 1/2/4/8 worker threads, each under
        // whole-prefix replay and both checkpoint spacings. The race
        // analysis is a different soundness argument from the sleep sets
        // (it *reverses* observed conflicts instead of skipping commuting
        // siblings), so it gets the same behavior-set, schedule-count, and
        // accounting scrutiny on every workload the generator produces.
        let revisit = ExploreConfig::new(BUDGET).mode(PruneMode::Revisit);
        let mut revisit_journal = Vec::new();
        let revisit_stats = revisit.serial().run(|| build_sim(&w), |decisions, result| {
            revisit_journal.push((
                decisions.iter().map(|d| d.chosen).collect::<Vec<u32>>(),
                line(result),
            ));
        });
        prop_assert!(revisit_stats.complete);
        revisit_stats.assert_consistent();
        prop_assert!(
            revisit_stats.schedules <= unpruned_stats.schedules,
            "revisit visited more schedules than exhaustive ({} > {})",
            revisit_stats.schedules,
            unpruned_stats.schedules,
        );
        let revisit_behaviors: BTreeSet<String> =
            revisit_journal.iter().map(|(_, l)| l.clone()).collect();
        prop_assert_eq!(
            &revisit_behaviors, &unpruned,
            "revisit exploration must observe the same behavior set \
             (schedules: {} revisit vs {} unpruned)",
            revisit_stats.schedules, unpruned_stats.schedules,
        );
        // The serial worklist visit order is not the parallel merge
        // order; canonicalise before the byte-identity comparisons.
        revisit_journal.sort();
        let revisit_journal: Vec<String> =
            revisit_journal.into_iter().map(|(_, l)| l).collect();

        for spacing in [
            CheckpointSpacing::Replay,
            CheckpointSpacing::Dense { budget: 2 },
            CheckpointSpacing::Geometric { budget: 4 },
        ] {
            let spaced = revisit.clone().checkpoint(spacing);
            if spacing != CheckpointSpacing::Replay {
                let mut journal = Vec::new();
                let stats = spaced.serial().run(|| build_sim(&w), |decisions, result| {
                    journal.push((
                        decisions.iter().map(|d| d.chosen).collect::<Vec<u32>>(),
                        line(result),
                    ));
                });
                prop_assert!(stats.complete);
                stats.assert_consistent();
                prop_assert_eq!(stats.schedules, revisit_stats.schedules);
                prop_assert_eq!(stats.pruned, revisit_stats.pruned);
                prop_assert_eq!(stats.revisits, revisit_stats.revisits);
                journal.sort();
                let journal: Vec<String> = journal.into_iter().map(|(_, l)| l).collect();
                prop_assert_eq!(
                    &journal, &revisit_journal,
                    "{:?}: checkpointed revisit journal diverged from replay",
                    spacing,
                );
            }
            for threads in [1, 2, 4, 8] {
                let (records, stats) = spaced
                    .clone()
                    .threads(threads)
                    .parallel()
                    .run(|| build_sim(&w), |_, result| line(result));
                prop_assert!(stats.complete);
                stats.assert_consistent();
                prop_assert_eq!(stats.schedules, revisit_stats.schedules);
                prop_assert_eq!(stats.pruned, revisit_stats.pruned);
                prop_assert_eq!(
                    stats.revisit_requests,
                    revisit_stats.revisit_requests
                );
                prop_assert_eq!(stats.revisits, revisit_stats.revisits);
                let merged: Vec<String> =
                    records.into_iter().map(|r| r.value).collect();
                prop_assert_eq!(
                    &merged, &revisit_journal,
                    "{:?} x {} threads: revisit journal diverged from serial",
                    spacing, threads,
                );
            }
        }
    }
}
