//! Compatibility contract of the deprecated timed-wait shims.
//!
//! Every pre-unification name (`*_timeout`, `*_deadline`) is a one-line
//! shim over its unified `*_by` method. These tests call each shim and its
//! replacement in byte-identical scenarios and assert the full user-event
//! journal — return values included — matches, so a shim can never drift
//! from the method it deprecates.
//!
//! This file is the one place in the repository allowed to call the
//! deprecated names.
#![allow(deprecated)]

use bloom_channel::{select_by, select_timeout, Channel};
use bloom_monitor::{Cond, Monitor};
use bloom_pathexpr::PathResource;
use bloom_semaphore::Semaphore;
use bloom_serializer::Serializer;
use bloom_sim::prelude::*;
use std::sync::Arc;

/// Runs `scenario` in a fresh sim and returns its user-event journal.
fn journal(scenario: impl FnOnce(&mut Sim)) -> Vec<String> {
    let mut sim = Sim::new();
    scenario(&mut sim);
    let report = sim.run().expect("clean run");
    report
        .trace
        .user_events()
        .map(|(pid, label, _)| format!("{pid} {label}"))
        .collect()
}

fn semaphore(shim: bool) -> Vec<String> {
    journal(|sim| {
        let s = Arc::new(Semaphore::strong("gate", 0));
        sim.spawn("waiter", move |ctx| {
            let timed = if shim {
                s.p_timeout(ctx, 3)
            } else {
                s.p_by(ctx, 3u64)
            };
            let expired = if shim {
                s.p_deadline(ctx, Deadline::at(Time::ZERO))
            } else {
                s.p_by(ctx, Deadline::at(Time::ZERO))
            };
            ctx.emit(&format!("res:{timed:?}:{expired:?}"), &[]);
        });
    })
}

#[test]
fn semaphore_shims_match_unified() {
    assert_eq!(semaphore(true), semaphore(false));
}

fn wait_queue(shim: bool) -> Vec<String> {
    journal(|sim| {
        let q = Arc::new(WaitQueue::new("q"));
        sim.spawn("waiter", move |ctx| {
            let timed = if shim {
                q.wait_timeout(ctx, 3)
            } else {
                q.wait_by(ctx, 3u64)
            };
            let expired = if shim {
                q.wait_deadline(ctx, Deadline::at(Time::ZERO))
            } else {
                q.wait_by(ctx, Deadline::at(Time::ZERO))
            };
            ctx.emit(&format!("res:{timed}:{expired}"), &[]);
        });
    })
}

#[test]
fn wait_queue_shims_match_unified() {
    assert_eq!(wait_queue(true), wait_queue(false));
}

fn monitor(shim: bool) -> Vec<String> {
    journal(|sim| {
        let m = Arc::new(Monitor::mesa("m", ()));
        let c = Arc::new(Cond::new("c"));
        sim.spawn("waiter", move |ctx| {
            m.enter(ctx, |mc| {
                let timed = if shim {
                    mc.wait_timeout(&c, 3)
                } else {
                    mc.wait_by(&c, 3u64)
                };
                let checked = if shim {
                    mc.wait_timeout_checked(&c, 2)
                } else {
                    mc.wait_by_checked(&c, 2u64)
                };
                let expired = if shim {
                    mc.wait_deadline(&c, Deadline::at(Time::ZERO))
                } else {
                    mc.wait_by(&c, Deadline::at(Time::ZERO))
                };
                mc.ctx()
                    .emit(&format!("res:{timed}:{checked:?}:{expired}"), &[]);
            });
        });
    })
}

#[test]
fn monitor_shims_match_unified() {
    assert_eq!(monitor(true), monitor(false));
}

fn serializer(shim: bool) -> Vec<String> {
    journal(|sim| {
        let s = Arc::new(Serializer::new("s", ()));
        let q = s.queue("q");
        sim.spawn("waiter", move |ctx| {
            s.enter(ctx, |sc| {
                let timed = if shim {
                    sc.enqueue_timeout(q, 3, |_| false)
                } else {
                    sc.enqueue_by(q, 3u64, |_| false)
                };
                let expired = if shim {
                    sc.enqueue_deadline(q, Deadline::at(Time::ZERO), |_| false)
                } else {
                    sc.enqueue_by(q, Deadline::at(Time::ZERO), |_| false)
                };
                sc.ctx().emit(&format!("res:{timed}:{expired}"), &[]);
            });
        });
    })
}

#[test]
fn serializer_shims_match_unified() {
    assert_eq!(serializer(true), serializer(false));
}

fn channel(shim: bool) -> Vec<String> {
    journal(|sim| {
        let ch = Arc::new(Channel::<i32>::new("ch"));
        sim.spawn("loner", move |ctx| {
            let sent = if shim {
                ch.send_timeout(ctx, 7, 2)
            } else {
                ch.send_by(ctx, 7, 2u64)
            };
            let received = if shim {
                ch.recv_timeout(ctx, 2)
            } else {
                ch.recv_by(ctx, 2u64)
            };
            let selected = if shim {
                select_timeout(ctx, &mut [(&*ch, true)], 2)
            } else {
                select_by(ctx, &mut [(&*ch, true)], 2u64)
            };
            ctx.emit(&format!("res:{sent:?}:{received:?}:{selected:?}"), &[]);
        });
    })
}

#[test]
fn channel_shims_match_unified() {
    assert_eq!(channel(true), channel(false));
}

fn pathexpr(shim: bool) -> Vec<String> {
    journal(|sim| {
        let r = Arc::new(PathResource::parse("s", "path a end").unwrap());
        let r2 = Arc::clone(&r);
        // Park timers fire only when nothing else is runnable, so the
        // holder must *block* (not spin) while inside `a` for the waiter's
        // timed requests to actually expire.
        let gate = Arc::new(Semaphore::strong("gate", 0));
        let g2 = Arc::clone(&gate);
        sim.spawn("holder", move |ctx| {
            r2.perform(ctx, "a", || g2.p(ctx));
        });
        sim.spawn("waiter", move |ctx| {
            ctx.yield_now(); // let the holder start `a`
            let requested = if shim {
                r.request_timeout(ctx, "a", 2)
            } else {
                r.request_by(ctx, "a", 2u64)
            };
            assert!(!requested, "holder still inside: request must time out");
            let checked = if shim {
                r.request_timeout_checked(ctx, "a", 2)
            } else {
                r.request_by_checked(ctx, "a", 2u64)
            };
            let performed = if shim {
                r.perform_timeout(ctx, "a", 2, || 1)
            } else {
                r.perform_by(ctx, "a", 2u64, || 1)
            };
            let tried = if shim {
                r.try_perform_timeout(ctx, "a", 2, || 1)
            } else {
                r.try_perform_by(ctx, "a", 2u64, || 1)
            };
            ctx.emit(
                &format!("res:{requested}:{checked:?}:{performed:?}:{tried:?}"),
                &[],
            );
            gate.v(ctx); // release the holder so the run ends cleanly
        });
    })
}

#[test]
fn pathexpr_shims_match_unified() {
    assert_eq!(pathexpr(true), pathexpr(false));
}
