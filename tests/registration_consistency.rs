//! Guards the workspace convention that root-level `tests/` and
//! `examples/` are targets of the `bloom-bench` crate: every `*.rs` file
//! in those directories must have a matching `[[test]]`/`[[example]]`
//! entry in `crates/bench/Cargo.toml`, or cargo silently never builds or
//! runs it.

#![deny(deprecated)]

use std::collections::BTreeSet;
use std::path::Path;

/// Stems of `*.rs` files directly under `dir` (no recursion — neither
/// directory nests).
fn rs_stems(dir: &Path) -> BTreeSet<String> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "rs"))
        .map(|p| p.file_stem().unwrap().to_str().unwrap().to_string())
        .collect()
}

/// Every stem must appear in the manifest as `path = ".../{kind}/<stem>.rs"`.
fn assert_registered(manifest: &str, repo_root: &Path, kind: &str) {
    let missing: Vec<String> = rs_stems(&repo_root.join(kind))
        .into_iter()
        .filter(|stem| !manifest.contains(&format!("path = \"../../{kind}/{stem}.rs\"")))
        .collect();
    assert!(
        missing.is_empty(),
        "root {kind}/ files not registered in crates/bench/Cargo.toml \
         (add a [[{}]] entry per CLAUDE.md): {missing:?}",
        kind.trim_end_matches('s'),
    );
}

#[test]
fn every_root_test_and_example_is_registered() {
    let bench_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let repo_root = bench_dir.parent().unwrap().parent().unwrap();
    let manifest = std::fs::read_to_string(bench_dir.join("Cargo.toml")).expect("bench manifest");
    assert_registered(&manifest, repo_root, "tests");
    assert_registered(&manifest, repo_root, "examples");
}
