//! Experiment T6: the §2 modularity requirements and the nested monitor
//! call problem (§5.2, Lister [18]).
//!
//! The paper prescribes a structure — `protected resource = resource +
//! synchronizer` — and claims (a) monitors used naively on a hierarchical
//! resource deadlock on nested calls, (b) the prescribed structure avoids
//! it because each monitor is released before the lower-level operation is
//! invoked, and (c) serializers provide the structure automatically via
//! `join_crowd`. All three claims are demonstrated here.

#![deny(deprecated)]

use bloom_monitor::{Cond, Monitor};
use bloom_serializer::Serializer;
use bloom_sim::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

/// (a) The naive hierarchy: the high-level monitor invokes the low-level
/// monitor's operation *inside* its own critical section; the low level
/// waits; nobody can come through the high level to signal → deadlock.
#[test]
fn naive_hierarchical_monitors_deadlock() {
    let mut sim = Sim::new();
    let high = Arc::new(Monitor::hoare("high", ()));
    let low = Arc::new(Monitor::hoare("low", false));
    let ready = Arc::new(Cond::new("low.ready"));

    let (h1, l1, c1) = (Arc::clone(&high), Arc::clone(&low), Arc::clone(&ready));
    sim.spawn("consumer", move |ctx| {
        h1.enter(ctx, |_| {
            // Nested call while holding `high`.
            l1.enter(ctx, |mc| {
                while !mc.state(|s| *s) {
                    mc.wait(&c1); // releases `low` but NOT `high`
                }
            });
        });
    });
    let (h2, l2, c2) = (Arc::clone(&high), Arc::clone(&low), Arc::clone(&ready));
    sim.spawn("producer", move |ctx| {
        ctx.yield_now();
        // The producer must also come through the high-level monitor.
        h2.enter(ctx, |_| {
            l2.enter(ctx, |mc| {
                mc.state(|s| *s = true);
                mc.signal(&c2);
            });
        });
    });
    let err = sim.run().expect_err("nested monitor calls must deadlock");
    assert!(err.is_deadlock());
}

/// (b) The §2 structure: the shared-resource module's operation takes the
/// synchronizer (monitor) only to decide admission, *releases it*, then
/// invokes the resource operation. The same producer/consumer workload
/// completes.
#[test]
fn structured_shared_resource_does_not_deadlock() {
    struct StructuredSlot {
        /// The synchronizer: admission state only.
        monitor: Monitor<bool>, // full?
        not_full: Cond,
        not_empty: Cond,
        /// The unsynchronized resource, *outside* the monitor.
        value: Mutex<Option<i64>>,
    }

    impl StructuredSlot {
        fn put(&self, ctx: &bloom_sim::Ctx, v: i64) {
            // Synchronize…
            self.monitor.enter(ctx, |mc| {
                while mc.state(|full| *full) {
                    mc.wait(&self.not_full);
                }
                mc.state(|full| *full = true);
            });
            // …then access the resource with the monitor released.
            *self.value.lock() = Some(v);
            self.monitor.enter(ctx, |mc| mc.signal(&self.not_empty));
        }

        fn get(&self, ctx: &bloom_sim::Ctx) -> i64 {
            self.monitor.enter(ctx, |mc| {
                while !mc.state(|full| *full) {
                    mc.wait(&self.not_empty);
                }
            });
            let v = self.value.lock().take().expect("synchronized");
            self.monitor.enter(ctx, |mc| {
                mc.state(|full| *full = false);
                mc.signal(&self.not_full);
            });
            v
        }
    }

    let mut sim = Sim::new();
    let slot = Arc::new(StructuredSlot {
        monitor: Monitor::hoare("slot", false),
        not_full: Cond::new("slot.not_full"),
        not_empty: Cond::new("slot.not_empty"),
        value: Mutex::new(None),
    });
    let got = Arc::new(Mutex::new(Vec::new()));

    let (s1, g1) = (Arc::clone(&slot), Arc::clone(&got));
    sim.spawn("consumer", move |ctx| {
        for _ in 0..5 {
            g1.lock().push(s1.get(ctx));
        }
    });
    let s2 = Arc::clone(&slot);
    sim.spawn("producer", move |ctx| {
        for v in 0..5 {
            s2.put(ctx, v);
        }
    });
    sim.run().expect("structured resource must not deadlock");
    assert_eq!(*got.lock(), vec![0, 1, 2, 3, 4]);
}

/// (c) Serializers give the same safety *automatically*: `join_crowd`
/// leaves the serializer while the (possibly blocking, hierarchical)
/// resource operation runs, so the equivalent nested scenario completes
/// without any structuring discipline from the implementor.
#[test]
fn serializer_join_crowd_avoids_nested_blocking() {
    let mut sim = Sim::new();
    // High-level serializer wraps a low-level one-slot resource built from
    // a second serializer.
    let low = Arc::new(Serializer::new("low", Option::<i64>::None));
    let low_dep = low.queue("low.depositors");
    let low_rem = low.queue("low.removers");
    let high = Arc::new(Serializer::new("high", ()));
    let hq = high.queue("high.requests");
    let crowd = high.crowd("high.users");

    let (h1, l1) = (Arc::clone(&high), Arc::clone(&low));
    sim.spawn("consumer", move |ctx| {
        h1.enter(ctx, |sc| {
            sc.enqueue(hq, |_| true);
            // The low-level (blocking!) operation runs inside the crowd,
            // with the high-level serializer released.
            sc.join_crowd(crowd, || {
                l1.enter(ctx, |lc| {
                    lc.enqueue(low_rem, |v| v.state().is_some());
                    let v = lc.state(|s| s.take());
                    ctx.emit("got", &[v.expect("guarded")]);
                });
            });
        });
    });
    let (h2, l2) = (Arc::clone(&high), Arc::clone(&low));
    sim.spawn("producer", move |ctx| {
        ctx.yield_now();
        h2.enter(ctx, |sc| {
            sc.enqueue(hq, |_| true);
            sc.join_crowd(crowd, || {
                l2.enter(ctx, |lc| {
                    lc.enqueue(low_dep, |v| v.state().is_none());
                    lc.state(|s| *s = Some(42));
                });
            });
        });
    });
    let report = sim
        .run()
        .expect("join_crowd releases the high-level serializer");
    assert!(report.trace.first_user("got").is_some());
}

/// The profiles encode these findings: serializers support the structure
/// automatically, monitors only by convention, paths not at all.
#[test]
fn modularity_profile_matches_demonstrations() {
    use bloom_core::{paper_profile, MechanismId, Support};
    assert_eq!(
        paper_profile(MechanismId::Serializer).modularity.separable,
        Support::Automatic
    );
    assert_eq!(
        paper_profile(MechanismId::Monitor).modularity.separable,
        Support::ByConvention
    );
    assert_eq!(
        paper_profile(MechanismId::PathV1).modularity.separable,
        Support::No
    );
}
