//! Experiment T4: constraint independence (§4.2, §5.1.2).
//!
//! The paper's ease-of-use test: compare solutions to similar problems —
//! the three readers/writers variants share the `rw-exclusion` constraint
//! and differ in the priority constraint — and check whether the shared
//! constraint's implementation survives the change. Its findings:
//!
//! * path expressions: "the path implementing the exclusion constraint is
//!   different in the writers-priority solution … a modification to one
//!   constraint involves changing the entire solution" — independence 0;
//! * monitors and serializers: "constraints were independent in most
//!   cases" — the exclusion components are identical across variants;
//! * changing the priority *information type* (readers-priority →
//!   FCFS, request type → request time) is costlier than flipping the
//!   priority direction, but still leaves the exclusion constraint intact
//!   for monitors and serializers.

#![deny(deprecated)]

use bloom_core::{independence, modification_cost, MechanismId, SolutionDesc};
use bloom_problems::rw::{self, RwVariant};

fn desc(mech: MechanismId, variant: RwVariant) -> SolutionDesc {
    rw::make(mech, variant).desc()
}

#[test]
fn monitor_and_serializer_preserve_exclusion_across_priority_flip() {
    for mech in [MechanismId::Monitor, MechanismId::Serializer] {
        let rp = desc(mech, RwVariant::ReadersPriority);
        let wp = desc(mech, RwVariant::WritersPriority);
        let report = independence(&rp, &wp);
        assert_eq!(
            report.score,
            Some(1.0),
            "{mech}: shared exclusion must be implemented identically, got {report:?}"
        );
        assert!(report.preserved.contains(&"rw-exclusion".to_string()));
    }
}

#[test]
fn path_and_semaphore_rewrite_exclusion_when_priority_changes() {
    for mech in [MechanismId::PathV1, MechanismId::Semaphore] {
        let rp = desc(mech, RwVariant::ReadersPriority);
        let wp = desc(mech, RwVariant::WritersPriority);
        let report = independence(&rp, &wp);
        assert_eq!(
            report.score,
            Some(0.0),
            "{mech}: the paper's finding is that the exclusion implementation differs, \
             got {report:?}"
        );
        assert!(report.disturbed.contains(&"rw-exclusion".to_string()));
    }
}

#[test]
fn exclusion_survives_even_an_information_type_change_for_monitors() {
    // readers-priority → FCFS changes the priority *information type*
    // (request type → request time); the exclusion component must still be
    // untouched for the independent mechanisms.
    for mech in [MechanismId::Monitor, MechanismId::Serializer] {
        let rp = desc(mech, RwVariant::ReadersPriority);
        let fc = desc(mech, RwVariant::Fcfs);
        let report = independence(&rp, &fc);
        assert_eq!(report.score, Some(1.0), "{mech} rp→fcfs: {report:?}");
    }
}

#[test]
fn modification_costs_rank_mechanisms_as_the_paper_does() {
    // Flipping readers→writers priority: paths change *every* unit
    // ("every synchronization procedure and every path"), monitors and
    // serializers only the priority unit.
    let cost = |mech: MechanismId, a: RwVariant, b: RwVariant| {
        modification_cost(&desc(mech, a), &desc(mech, b)).fraction()
    };
    let path_flip = cost(
        MechanismId::PathV1,
        RwVariant::ReadersPriority,
        RwVariant::WritersPriority,
    );
    let mon_flip = cost(
        MechanismId::Monitor,
        RwVariant::ReadersPriority,
        RwVariant::WritersPriority,
    );
    let ser_flip = cost(
        MechanismId::Serializer,
        RwVariant::ReadersPriority,
        RwVariant::WritersPriority,
    );
    let sem_flip = cost(
        MechanismId::Semaphore,
        RwVariant::ReadersPriority,
        RwVariant::WritersPriority,
    );

    assert_eq!(
        path_flip, 1.0,
        "paths: a modification to one constraint changes everything"
    );
    assert!(
        mon_flip < path_flip,
        "monitor flip ({mon_flip}) cheaper than path ({path_flip})"
    );
    assert!(
        ser_flip < path_flip,
        "serializer flip ({ser_flip}) cheaper than path"
    );
    assert_eq!(
        sem_flip, 1.0,
        "semaphore baton solutions are monolithic too"
    );
}

#[test]
fn changing_information_type_is_harder_than_flipping_priority() {
    // The paper: "the overall change [to FCFS] can be expected to be more
    // difficult than a change from readers to writers priority" — visible
    // for monitors in the units that must change (the FCFS variant
    // replaces the wake policy *and* adds the ticket machinery; we measure
    // it as cost(rp→fcfs) >= cost(rp→wp)).
    for mech in [MechanismId::Monitor, MechanismId::Serializer] {
        let rp = desc(mech, RwVariant::ReadersPriority);
        let wp = desc(mech, RwVariant::WritersPriority);
        let fc = desc(mech, RwVariant::Fcfs);
        let flip = modification_cost(&rp, &wp).fraction();
        let retype = modification_cost(&rp, &fc).fraction();
        assert!(
            retype >= flip,
            "{mech}: rp→fcfs ({retype}) should cost at least rp→wp ({flip})"
        );
    }
}

#[test]
fn fcfs_path_solution_uses_the_isolated_exclusion_form() {
    // §5.1.1: "in isolation, [the exclusion constraint] would be
    // implemented as: path { read } , write end". The FCFS gate solution
    // achieves exactly that; Figure 1 could not.
    let fcfs = desc(MechanismId::PathV1, RwVariant::Fcfs);
    let components = fcfs.components_of("rw-exclusion");
    assert!(
        components.contains("path:{read},write"),
        "FCFS path solution keeps the isolated exclusion path: {components:?}"
    );
    let fig1 = desc(MechanismId::PathV1, RwVariant::ReadersPriority);
    assert!(
        !fig1
            .components_of("rw-exclusion")
            .contains("path:{read},write"),
        "Figure 1 had to deform the exclusion path to coordinate with the priority gates"
    );
}

#[test]
fn every_solution_attributes_every_catalog_constraint() {
    // Sanity for the whole registry: each solution covers the constraints
    // of its problem spec (names match the catalog).
    for desc in bloom_problems::registry::all_descs() {
        let spec = bloom_core::spec(desc.problem);
        for constraint in &spec.constraints {
            assert!(
                desc.constraints().contains(constraint.name.as_str()),
                "{}/{}: constraint {} not attributed",
                desc.mechanism,
                desc.problem,
                constraint.name
            );
        }
    }
}
