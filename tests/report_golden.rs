//! Golden test: `docs/report.txt` is the archived output of the report
//! binary. Whenever a solution, checker, or report section changes the
//! findings, regenerate the archive:
//!
//! ```text
//! cargo run --release -p bloom-bench --bin report > docs/report.txt
//! ```
//!
//! `EXPERIMENTS.md` quotes this file; keeping it in lockstep with the code
//! means the prose can be trusted without rerunning anything.

#![deny(deprecated)]

#[test]
fn archived_report_matches_generated_report() {
    let archived = include_str!("../docs/report.txt");
    let generated = bloom_bench::full_report();
    assert!(
        archived == generated,
        "docs/report.txt is stale — regenerate with \
         `cargo run --release -p bloom-bench --bin report > docs/report.txt`"
    );
}
