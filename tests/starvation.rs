//! Starvation properties of the priority policies.
//!
//! The paper notes, in passing, that the readers-priority specification
//! "allows writers to starve". That is a *checkable* consequence of the
//! constraint taxonomy: a priority constraint conditioned on request type
//! alone is unbounded, while one conditioned on request time (FCFS) gives
//! bounded bypass. Both are demonstrated here on every mechanism, with
//! the identical overlapping-readers workload.

#![deny(deprecated)]

use bloom_core::checks::check_no_later_overtake;
use bloom_core::events::{extract, Phase};
use bloom_core::MechanismId;
use bloom_problems::rw::{self, RwVariant};
use bloom_sim::prelude::*;
use std::sync::Arc;

/// A relay of readers that keeps the database continuously read-locked
/// for a while (each reader's body spans the next reader's arrival), plus
/// one writer who requests early.
fn overlapping_readers_scenario(mech: MechanismId, variant: RwVariant) -> SimReport {
    let mut sim = Sim::new();
    let db = rw::make(mech, variant);
    for i in 0..6 {
        let db = Arc::clone(&db);
        sim.spawn(&format!("reader{i}"), move |ctx| {
            // Staggered arrivals, long bodies: intervals overlap.
            for _ in 0..(i * 2) {
                ctx.yield_now();
            }
            db.read(ctx, &mut || {
                for _ in 0..6 {
                    ctx.yield_now();
                }
            });
        });
    }
    let db2 = Arc::clone(&db);
    sim.spawn("writer", move |ctx| {
        ctx.yield_now(); // request just after reader0 starts
        db2.write(ctx, &mut || {});
    });
    sim.run().expect("workload terminates")
}

/// How many later-requested readers entered before the writer.
fn writer_bypass_count(report: &SimReport) -> usize {
    let events = extract(&report.trace);
    check_no_later_overtake(&events, "write", "read").len()
}

/// Did the writer enter only after every read had exited?
fn writer_entered_last(report: &SimReport) -> bool {
    let events = extract(&report.trace);
    let write_enter = events
        .iter()
        .find(|e| e.op == "write" && e.phase == Phase::Enter)
        .expect("writer served eventually")
        .seq;
    let last_read_exit = events
        .iter()
        .filter(|e| e.op == "read" && e.phase == Phase::Exit)
        .map(|e| e.seq)
        .max()
        .expect("reads happened");
    write_enter > last_read_exit
}

/// Under readers priority, the early writer is overtaken by *every*
/// later-arriving reader while the read-lock relay lasts — unbounded
/// bypass, i.e. starvation whenever readers keep coming.
#[test]
fn readers_priority_starves_the_writer_by_design() {
    for mech in [
        MechanismId::Monitor,
        MechanismId::Serializer,
        MechanismId::Semaphore,
    ] {
        let report = overlapping_readers_scenario(mech, RwVariant::ReadersPriority);
        let bypass = writer_bypass_count(&report);
        assert!(
            bypass >= 4,
            "{mech}: expected the reader relay to repeatedly overtake the writer, \
             got {bypass} overtakes"
        );
        assert!(
            writer_entered_last(&report),
            "{mech}: the writer should only enter once the relay ends"
        );
    }
}

/// The identical workload under FCFS: nobody who requested after the
/// writer gets in before it.
#[test]
fn fcfs_bounds_the_writers_bypass_to_zero() {
    for mech in rw::MECHANISMS {
        let report = overlapping_readers_scenario(mech, RwVariant::Fcfs);
        let bypass = writer_bypass_count(&report);
        assert_eq!(
            bypass, 0,
            "{mech}: FCFS must not let later readers overtake"
        );
        assert!(
            !writer_entered_last(&report),
            "{mech}: under FCFS the writer goes before the later readers"
        );
    }
}

/// Writers priority inverts the starvation: with a writer relay, readers
/// wait for all of it.
#[test]
fn writers_priority_starves_readers_symmetrically() {
    for mech in [
        MechanismId::Monitor,
        MechanismId::Serializer,
        MechanismId::Semaphore,
    ] {
        let mut sim = Sim::new();
        let db = rw::make(mech, RwVariant::WritersPriority);
        for i in 0..5 {
            let db = Arc::clone(&db);
            sim.spawn(&format!("writer{i}"), move |ctx| {
                for _ in 0..i {
                    ctx.yield_now();
                }
                db.write(ctx, &mut || {
                    for _ in 0..4 {
                        ctx.yield_now();
                    }
                });
            });
        }
        let db2 = Arc::clone(&db);
        sim.spawn("reader", move |ctx| {
            ctx.yield_now();
            db2.read(ctx, &mut || {});
        });
        let report = sim.run().expect("terminates");
        let events = extract(&report.trace);
        let overtakes = check_no_later_overtake(&events, "read", "write").len();
        assert!(
            overtakes >= 3,
            "{mech}: later writers should overtake the waiting reader, got {overtakes}"
        );
    }
}
