//! Experiment T1: the full solution matrix.
//!
//! Footnote 2's test suite (plus the readers/writers variants) × every
//! mechanism, each run under several schedulers and seeds and validated by
//! the constraint checkers — the machine-checked version of "use the
//! mechanism to implement solutions to a set of examples that covers all
//! information classes" (§4.1).

#![deny(deprecated)]

use bloom_core::checks::{
    check_alarm, check_all_served, check_alternation, check_buffer_bounds, check_elevator,
    check_exclusion, check_fifo, check_no_later_overtake, check_priority_over, expect_clean,
};
use bloom_core::events::extract;
use bloom_core::MechanismId;
use bloom_problems::drivers::{
    alarm_scenario, buffer_scenario, disk_scenario, fcfs_scenario, oneslot_scenario, rw_scenario,
};
use bloom_problems::rw::RwVariant;
use bloom_problems::{alarm, buffer, disk, fcfs, oneslot, rw};

fn seeds() -> Vec<Option<u64>> {
    std::iter::once(None)
        .chain((1000..1010).map(Some))
        .collect()
}

#[test]
fn matrix_one_slot_buffer() {
    for mech in oneslot::MECHANISMS {
        for seed in seeds() {
            let report = oneslot_scenario(mech, 8, seed);
            let events = extract(&report.trace);
            let tag = format!("one-slot/{mech} (seed {seed:?})");
            expect_clean(&check_alternation(&events, "deposit", "remove"), &tag);
            expect_clean(&check_buffer_bounds(&events, "deposit", "remove", 1), &tag);
            expect_clean(&check_all_served(&events), &tag);
        }
    }
}

#[test]
fn matrix_bounded_buffer() {
    for mech in buffer::MECHANISMS {
        for seed in seeds() {
            let (report, mut sent, mut received) = buffer_scenario(mech, 4, 3, 2, 4, seed);
            let events = extract(&report.trace);
            let tag = format!("buffer/{mech} (seed {seed:?})");
            expect_clean(&check_buffer_bounds(&events, "deposit", "remove", 4), &tag);
            expect_clean(&check_all_served(&events), &tag);
            sent.sort_unstable();
            received.sort_unstable();
            assert_eq!(sent, received, "{tag}: value conservation");
        }
    }
}

#[test]
fn matrix_fcfs_resource() {
    for mech in fcfs::MECHANISMS {
        for seed in seeds() {
            let report = fcfs_scenario(mech, 6, 3, seed);
            let events = extract(&report.trace);
            let tag = format!("fcfs/{mech} (seed {seed:?})");
            expect_clean(&check_fifo(&events, &["use"]), &tag);
            expect_clean(&check_exclusion(&events, &[("use", "use")]), &tag);
            expect_clean(&check_all_served(&events), &tag);
        }
    }
}

#[test]
fn matrix_readers_writers_all_variants() {
    for mech in rw::MECHANISMS {
        for variant in RwVariant::ALL {
            for seed in seeds() {
                let report = rw_scenario(mech, variant, 4, 2, 3, seed);
                let events = extract(&report.trace);
                let tag = format!("rw-{variant:?}/{mech} (seed {seed:?})");
                expect_clean(
                    &check_exclusion(&events, &[("read", "write"), ("write", "write")]),
                    &tag,
                );
                expect_clean(&check_all_served(&events), &tag);
                // Variant-specific guarantees (Figure 1 is exempt from the
                // priority check: its violation is the reproduced anomaly).
                match (variant, mech) {
                    (RwVariant::ReadersPriority, MechanismId::PathV1) => {}
                    (RwVariant::ReadersPriority, _) => {
                        expect_clean(&check_priority_over(&events, "read", "write"), &tag);
                    }
                    (RwVariant::WritersPriority, MechanismId::PathV1) => {
                        expect_clean(&check_no_later_overtake(&events, "write", "read"), &tag);
                    }
                    (RwVariant::WritersPriority, _) => {
                        expect_clean(&check_priority_over(&events, "write", "read"), &tag);
                    }
                    (RwVariant::Fcfs, _) => {
                        expect_clean(&check_fifo(&events, &["read", "write"]), &tag);
                    }
                }
            }
        }
    }
}

#[test]
fn matrix_disk_scheduler() {
    for mech in disk::MECHANISMS {
        for workload in 0..6u64 {
            for sched in [None, Some(7_000 + workload)] {
                let report = disk_scenario(mech, 5, 4, workload, sched);
                let events = extract(&report.trace);
                let tag = format!("disk/{mech} (workload {workload}, sched {sched:?})");
                expect_clean(&check_elevator(&events, "seek"), &tag);
                expect_clean(&check_exclusion(&events, &[("seek", "seek")]), &tag);
                expect_clean(&check_all_served(&events), &tag);
            }
        }
    }
}

#[test]
fn matrix_alarm_clock() {
    for mech in alarm::MECHANISMS {
        for workload in 0..6u64 {
            for sched in [None, Some(8_000 + workload)] {
                let report = alarm_scenario(mech, 6, workload, sched);
                let events = extract(&report.trace);
                let tag = format!("alarm/{mech} (workload {workload}, sched {sched:?})");
                expect_clean(&check_alarm(&events, "wake", 1), &tag);
                expect_clean(&check_all_served(&events), &tag);
            }
        }
    }
}

/// Larger stress configuration: more processes and operations than the
/// per-crate unit tests use.
#[test]
fn matrix_stress_scale() {
    for mech in rw::MECHANISMS {
        let report = rw_scenario(mech, RwVariant::Fcfs, 8, 4, 6, Some(99));
        let events = extract(&report.trace);
        let tag = format!("rw-stress/{mech}");
        expect_clean(
            &check_exclusion(&events, &[("read", "write"), ("write", "write")]),
            &tag,
        );
        expect_clean(&check_fifo(&events, &["read", "write"]), &tag);
        assert!(events.len() > 200, "{tag}: expected a substantial trace");
    }
}
