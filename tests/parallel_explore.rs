//! Determinism contract of the work-sharing [`ParallelExplorer`]: for any
//! worker count, the parallel exploration of a real problem tree is
//! *byte-identical* to the serial [`Explorer`]'s — same schedule count,
//! same set of decision vectors, same merged journal in the same order,
//! and (since the observability layer) the same `SimMetrics` and the same
//! exported JSONL/Chrome trace bytes for every schedule.
//!
//! The scenario is the experiment-R2 dining-philosophers deadlock-recovery
//! sim: a genuinely contested tree (thousands of schedules) whose runs
//! exercise deadlock detection, victim abort, and recovery bookkeeping —
//! the worst case for any scheme whose merged order could depend on which
//! worker got which subtree.
//!
//! The second test pins the same contract along the checkpointing axis:
//! resuming held runs from a spine of branch-point checkpoints (see
//! DESIGN.md §2.13) must be observably *nothing* — journals, stats, and
//! export bytes identical to whole-prefix replay, serial and at every
//! worker count.

#![deny(deprecated)]

use bloom_core::liveness::classify_liveness;
use bloom_problems::liveness::{deadlock_recovery_sim, LiveMechanism};
use bloom_sim::prelude::*;
use bloom_sim::{export, Decision};
use std::collections::BTreeSet;

const BUDGET: usize = 50_000;

/// FNV-1a 64: folds a whole exported document into one journal token, so
/// the byte-identity assertion covers every exported byte of every
/// schedule without holding thousands of full documents in memory.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One journal line per schedule: decision vector, victim count, verdict,
/// the run's metrics, and hashes of both export formats.
fn line(decisions: &[Decision], result: &Result<SimReport, SimError>) -> String {
    let report: &SimReport = match result {
        Ok(report) => report,
        Err(err) => &err.report,
    };
    let m = &report.metrics;
    assert!(
        !m.replay.diverged(),
        "exhaustive exploration must never diverge from its own decisions"
    );
    let jsonl = export::to_jsonl(&report.trace, m);
    let chrome = export::to_chrome_trace(&report.trace, m);
    let choices: Vec<u32> = decisions.iter().map(|d| d.chosen).collect();
    format!(
        "{choices:?} v{} {} d{} s{} p{} w{} q{} j{:016x} c{:016x}",
        report.recovered.len(),
        classify_liveness(result),
        m.dispatches,
        m.context_switches,
        m.total_parks(),
        m.total_wakes(),
        m.max_queue_depth(),
        fnv1a(jsonl.as_bytes()),
        fnv1a(chrome.as_bytes()),
    )
}

#[test]
fn parallel_matches_serial_on_recovery_tree_at_every_thread_count() {
    let mech = LiveMechanism::SemaphoreStrong;

    // Serial baseline through the unified verb: the journal comes back
    // in lexicographic decision-vector order — the canonical order the
    // parallel merge reproduces.
    let config = ExploreConfig::new(BUDGET);
    let (serial_records, serial_stats) = config.run(|| deadlock_recovery_sim(mech), line);
    assert!(serial_stats.complete, "budget too small for the tree");
    let serial_journal: Vec<String> = serial_records.into_iter().map(|r| r.value).collect();
    let serial_vectors: BTreeSet<String> = serial_journal.iter().cloned().collect();

    for threads in [1, 2, 4, 8] {
        let (records, stats): (Vec<ScheduleRecord<String>>, _) = config
            .clone()
            .threads(threads)
            .run(|| deadlock_recovery_sim(mech), line);
        assert_eq!(
            stats.schedules, serial_stats.schedules,
            "{threads} threads: schedule count diverged"
        );
        assert!(stats.complete, "{threads} threads: must exhaust the tree");
        assert_eq!(
            stats.depth_schedules, serial_stats.depth_schedules,
            "{threads} threads: depth histogram diverged"
        );
        assert_eq!(
            stats.depth_pruned, serial_stats.depth_pruned,
            "{threads} threads: prune histogram diverged"
        );
        match (&stats.first_error, &serial_stats.first_error) {
            (None, None) => {}
            (Some(parallel), Some(serial)) => assert_eq!(
                parallel.choices, serial.choices,
                "{threads} threads: canonical first error diverged"
            ),
            (parallel, serial) => panic!(
                "{threads} threads: first_error presence diverged \
                 (parallel: {:?}, serial: {:?})",
                parallel.is_some(),
                serial.is_some()
            ),
        }
        let vectors: BTreeSet<String> = records.iter().map(|r| r.value.clone()).collect();
        assert_eq!(
            vectors, serial_vectors,
            "{threads} threads: decision-vector set diverged"
        );
        let merged: Vec<String> = records.into_iter().map(|r| r.value).collect();
        assert_eq!(
            merged, serial_journal,
            "{threads} threads: merged journal (incl. metrics and export \
             hashes) is not byte-identical to serial"
        );
    }
}

/// The revisit prune on the recovery tree: strictly fewer schedules than
/// the granular prune, byte-identical journals (decision vectors,
/// verdicts, metrics, export hashes) across serial and 1/2/4/8 worker
/// threads and across checkpoint spacings, and every returned
/// [`ExploreStats`] passing its own accounting cross-check — the
/// regression net for the prune-tally drift this mode's bookkeeping
/// replaced (`depth_pruned` is settled from discovered-sibling capacity
/// minus grants, not incremented ad hoc).
#[test]
fn revisit_matches_serial_and_beats_granular_on_recovery_tree() {
    let mech = LiveMechanism::SemaphoreStrong;
    let (_, granular_stats) = ExploreConfig::new(BUDGET)
        .prune(true)
        .run(|| deadlock_recovery_sim(mech), |_, _| ());
    assert!(granular_stats.complete);
    granular_stats.assert_consistent();

    let config = ExploreConfig::new(BUDGET).mode(PruneMode::Revisit);
    let (serial_records, serial_stats) = config.run(|| deadlock_recovery_sim(mech), line);
    assert!(serial_stats.complete, "budget too small for the tree");
    serial_stats.assert_consistent();
    assert!(
        serial_stats.schedules < granular_stats.schedules,
        "revisit must beat granular on the recovery tree: {} vs {}",
        serial_stats.schedules,
        granular_stats.schedules
    );
    assert_eq!(
        serial_stats.schedules,
        serial_stats.revisits as usize + 1,
        "every schedule past the root run is a granted revisit"
    );
    // The unified verb already canonicalises by decision vector.
    let serial_journal: Vec<String> = serial_records.into_iter().map(|r| r.value).collect();

    for threads in [1, 2, 4, 8] {
        let (records, stats): (Vec<ScheduleRecord<String>>, _) = config
            .clone()
            .threads(threads)
            .run(|| deadlock_recovery_sim(mech), line);
        stats.assert_consistent();
        assert_eq!(stats.schedules, serial_stats.schedules, "{threads} threads");
        assert_eq!(stats.pruned, serial_stats.pruned, "{threads} threads");
        assert_eq!(
            stats.revisit_requests, serial_stats.revisit_requests,
            "{threads} threads: race-request tally diverged"
        );
        assert_eq!(stats.revisits, serial_stats.revisits, "{threads} threads");
        assert_eq!(stats.conflicts, serial_stats.conflicts, "{threads} threads");
        assert_eq!(
            stats.depth_pruned, serial_stats.depth_pruned,
            "{threads} threads: prune histogram diverged"
        );
        let merged: Vec<String> = records.into_iter().map(|r| r.value).collect();
        assert_eq!(
            merged, serial_journal,
            "{threads} threads: revisit journal is not byte-identical to serial"
        );
    }

    // The same tree through the checkpoint spine: the race analysis feeds
    // on footprints recorded during resumed held runs, so every spacing
    // must reproduce whole-prefix replay exactly.
    for spacing in [
        CheckpointSpacing::Dense { budget: 64 },
        CheckpointSpacing::Geometric { budget: 8 },
    ] {
        let (records, stats) = config
            .clone()
            .checkpoint(spacing)
            .run(|| deadlock_recovery_sim(mech), line);
        stats.assert_consistent();
        assert_eq!(stats.schedules, serial_stats.schedules, "{spacing:?}");
        assert_eq!(stats.pruned, serial_stats.pruned, "{spacing:?}");
        assert_eq!(stats.revisits, serial_stats.revisits, "{spacing:?}");
        let journal: Vec<String> = records.into_iter().map(|r| r.value).collect();
        assert_eq!(
            journal, serial_journal,
            "{spacing:?}: checkpointed revisit journal diverged from replay"
        );
    }
}

/// Checkpoint-vs-replay equivalence: under both non-replay
/// [`CheckpointSpacing`] policies, with and without pruning, the journal
/// (decision vectors, verdicts, metrics, and both export-format hashes),
/// the [`ExploreStats`] counters, and the merged order are byte-identical
/// to whole-prefix replay — serially and at 1/2/4/8 worker threads. The
/// recovery tree makes this a hostile fixture: held runs are parked and
/// resumed across schedules that deadlock, abort victims, and recover.
#[test]
fn checkpointed_matches_replay_at_every_thread_count() {
    let mech = LiveMechanism::SemaphoreStrong;
    for prune in [false, true] {
        let replay = ExploreConfig::new(BUDGET).prune(prune);
        let (replay_records, replay_stats) = replay.run(|| deadlock_recovery_sim(mech), line);
        assert!(replay_stats.complete, "budget too small for the tree");
        let replay_journal: Vec<String> = replay_records.into_iter().map(|r| r.value).collect();

        for spacing in [
            CheckpointSpacing::Dense { budget: 64 },
            CheckpointSpacing::Geometric { budget: 8 },
        ] {
            let config = replay.clone().checkpoint(spacing);
            let label = format!("prune={prune} {spacing:?}");

            let same_stats = |stats: &ExploreStats, what: &str| {
                assert_eq!(stats.schedules, replay_stats.schedules, "{what}: schedules");
                assert_eq!(stats.pruned, replay_stats.pruned, "{what}: pruned");
                assert!(stats.complete, "{what}: must exhaust the tree");
                assert_eq!(
                    stats.depth_schedules, replay_stats.depth_schedules,
                    "{what}: depth histogram"
                );
                assert_eq!(
                    stats.depth_pruned, replay_stats.depth_pruned,
                    "{what}: prune histogram"
                );
                assert_eq!(
                    stats.conflicts, replay_stats.conflicts,
                    "{what}: conflict tally"
                );
                assert_eq!(
                    stats.first_error.as_ref().map(|e| e.choices.clone()),
                    replay_stats.first_error.as_ref().map(|e| e.choices.clone()),
                    "{what}: canonical first error"
                );
            };

            let (serial_records, serial_stats) = config.run(|| deadlock_recovery_sim(mech), line);
            same_stats(&serial_stats, &format!("{label} serial"));
            let serial_journal: Vec<String> = serial_records.into_iter().map(|r| r.value).collect();
            assert_eq!(
                serial_journal, replay_journal,
                "{label} serial: checkpointed journal is not byte-identical \
                 to replay"
            );

            for threads in [1, 2, 4, 8] {
                let (records, stats): (Vec<ScheduleRecord<String>>, _) = config
                    .clone()
                    .threads(threads)
                    .run(|| deadlock_recovery_sim(mech), line);
                same_stats(&stats, &format!("{label} {threads} threads"));
                let merged: Vec<String> = records.into_iter().map(|r| r.value).collect();
                assert_eq!(
                    merged, replay_journal,
                    "{label} {threads} threads: checkpointed journal (incl. \
                     metrics and export hashes) is not byte-identical to replay"
                );
            }
        }
    }
}
