//! Determinism contract of the work-sharing [`ParallelExplorer`]: for any
//! worker count, the parallel exploration of a real problem tree is
//! *byte-identical* to the serial [`Explorer`]'s — same schedule count,
//! same set of decision vectors, same merged journal in the same order.
//!
//! The scenario is the experiment-R2 dining-philosophers deadlock-recovery
//! sim: a genuinely contested tree (thousands of schedules) whose runs
//! exercise deadlock detection, victim abort, and recovery bookkeeping —
//! the worst case for any scheme whose merged order could depend on which
//! worker got which subtree.

use bloom_core::liveness::classify_liveness;
use bloom_problems::liveness::{deadlock_recovery_sim, LiveMechanism};
use bloom_sim::{Decision, Explorer, ParallelExplorer, ScheduleRecord, SimError, SimReport};
use std::collections::BTreeSet;

const BUDGET: usize = 50_000;

/// One journal line per schedule: decision vector, victim count, verdict.
fn line(decisions: &[Decision], result: &Result<SimReport, SimError>) -> String {
    let recovered = match result {
        Ok(report) => report.recovered.len(),
        Err(err) => err.report.recovered.len(),
    };
    let choices: Vec<u32> = decisions.iter().map(|d| d.chosen).collect();
    format!("{choices:?} v{recovered} {}", classify_liveness(result))
}

#[test]
fn parallel_matches_serial_on_recovery_tree_at_every_thread_count() {
    let mech = LiveMechanism::SemaphoreStrong;

    // Serial baseline: journal in DFS visit order, which is lexicographic
    // decision-vector order — the canonical order the parallel merge
    // reproduces.
    let mut serial_journal = Vec::new();
    let serial_stats = Explorer::new(BUDGET).run(
        || deadlock_recovery_sim(mech),
        |decisions, result| serial_journal.push(line(decisions, result)),
    );
    assert!(serial_stats.complete, "budget too small for the tree");
    let serial_vectors: BTreeSet<String> = serial_journal.iter().cloned().collect();

    for threads in [1, 2, 4, 8] {
        let (records, stats): (Vec<ScheduleRecord<String>>, _) = ParallelExplorer::new(BUDGET)
            .threads(threads)
            .run(|| deadlock_recovery_sim(mech), line);
        assert_eq!(
            stats.schedules, serial_stats.schedules,
            "{threads} threads: schedule count diverged"
        );
        assert!(stats.complete, "{threads} threads: must exhaust the tree");
        let vectors: BTreeSet<String> = records.iter().map(|r| r.value.clone()).collect();
        assert_eq!(
            vectors, serial_vectors,
            "{threads} threads: decision-vector set diverged"
        );
        let merged: Vec<String> = records.into_iter().map(|r| r.value).collect();
        assert_eq!(
            merged, serial_journal,
            "{threads} threads: merged journal is not byte-identical to serial"
        );
    }
}
