//! Trace-export contract tests.
//!
//! * Golden files: the exact exported bytes of the fixed two-process
//!   semaphore run (`bloom_bench::trace_export_sample`) are archived in
//!   `docs/trace_export.jsonl` and `docs/trace_export.chrome.json` — the
//!   same lockstep discipline as `docs/report.txt`. Regenerate with:
//!
//!   ```text
//!   cargo run -p bloom-bench --example trace_export -- docs
//!   ```
//!
//! * Property: for arbitrary small scenarios, export → parse round-trips
//!   the event count, the pid set, and every event's virtual time, in
//!   both formats.
//!
//! * Replay divergence (the PR-4 bugfix): a faithfully replayed recorded
//!   schedule reports zero divergence; a corrupted decision vector
//!   reports clamping; a truncated one reports an underrun.

#![deny(deprecated)]

use bloom_sim::export::{self, Json};
use bloom_sim::prelude::*;
use bloom_sim::{EventKind, ReplayDivergence};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[test]
fn archived_jsonl_matches_generated() {
    let report = bloom_bench::trace_export_sample();
    let generated = export::to_jsonl(&report.trace, &report.metrics);
    let archived = include_str!("../docs/trace_export.jsonl");
    assert!(
        archived == generated,
        "docs/trace_export.jsonl is stale — regenerate with \
         `cargo run -p bloom-bench --example trace_export -- docs`"
    );
}

#[test]
fn archived_chrome_trace_matches_generated() {
    let report = bloom_bench::trace_export_sample();
    let generated = export::to_chrome_trace(&report.trace, &report.metrics);
    let archived = include_str!("../docs/trace_export.chrome.json");
    assert!(
        archived == generated,
        "docs/trace_export.chrome.json is stale — regenerate with \
         `cargo run -p bloom-bench --example trace_export -- docs`"
    );
}

/// A small scenario parameterized enough for proptest to vary its shape:
/// `procs` processes, each emitting `ops` events with yields between them.
fn scenario(procs: usize, ops: usize) -> Sim {
    let mut sim = Sim::new();
    for p in 0..procs {
        sim.spawn(&format!("p{p}"), move |ctx| {
            for i in 0..ops {
                ctx.emit("op", &[p as i64, i as i64]);
                ctx.yield_now();
            }
        });
    }
    sim
}

fn pid_set(report: &SimReport) -> BTreeSet<u64> {
    report
        .trace
        .events()
        .iter()
        .map(|e| e.pid.0 as u64)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn jsonl_round_trips_counts_pids_and_times(
        procs in 1usize..4,
        ops in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut sim = scenario(procs, ops);
        if seed > 0 {
            // seed 0 keeps the default FIFO policy in the mix.
            sim.set_policy(bloom_sim::RandomPolicy::new(seed));
        }
        let report = sim.run().expect("emit/yield scenarios cannot fail");
        let jsonl = export::to_jsonl(&report.trace, &report.metrics);
        let lines: Vec<Json> = jsonl
            .lines()
            .map(|l| export::parse_json(l).expect("valid JSONL line"))
            .collect();
        // meta + one line per event + metrics
        prop_assert_eq!(lines.len(), report.trace.len() + 2);
        let events = &lines[1..lines.len() - 1];
        let mut parsed_pids = BTreeSet::new();
        for (json, event) in events.iter().zip(report.trace.events()) {
            prop_assert_eq!(json.get("type").unwrap().as_str(), Some("event"));
            prop_assert_eq!(json.get("seq").unwrap().as_u64(), Some(event.seq));
            prop_assert_eq!(json.get("time").unwrap().as_u64(), Some(event.time.0));
            let pid = json.get("pid").unwrap().as_u64().unwrap();
            prop_assert_eq!(pid, event.pid.0 as u64);
            parsed_pids.insert(pid);
        }
        prop_assert_eq!(parsed_pids, pid_set(&report));
        let metrics = lines.last().unwrap().get("metrics").unwrap();
        prop_assert_eq!(
            metrics.get("dispatches").unwrap().as_u64(),
            Some(report.metrics.dispatches)
        );
    }

    #[test]
    fn chrome_trace_round_trips_dispatches_and_pids(
        procs in 1usize..4,
        ops in 1usize..4,
    ) {
        let report = scenario(procs, ops).run().expect("cannot fail");
        let doc = export::parse_json(&export::to_chrome_trace(&report.trace, &report.metrics))
            .expect("valid chrome trace");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let dispatches: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| {
                (
                    e.get("tid").unwrap().as_u64().unwrap(),
                    e.get("ts").unwrap().as_u64().unwrap(),
                )
            })
            .collect();
        let scheduled: Vec<(u64, u64)> = report
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Scheduled))
            .map(|e| (e.pid.0 as u64, e.time.0))
            .collect();
        prop_assert_eq!(dispatches, scheduled, "one X slice per dispatch, same track and tick");
        let tracks: BTreeSet<u64> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        prop_assert_eq!(tracks, pid_set(&report), "one named track per pid");
    }
}

/// A contested scenario (several processes, several yields each) recorded
/// under the adversarial LIFO policy, so the decision vector is non-trivial.
fn contested_sim() -> Sim {
    scenario(3, 3)
}

#[test]
fn faithful_replay_reports_zero_divergence() {
    let mut sim = contested_sim();
    sim.set_policy(LifoPolicy);
    let recorded = sim.run().expect("cannot fail");
    assert!(
        !recorded.decisions.is_empty(),
        "scenario must be contested for the test to mean anything"
    );
    let script: Vec<u32> = recorded.decisions.iter().map(|d| d.chosen).collect();
    assert!(
        script.iter().any(|&c| c != 0),
        "LIFO must pick non-canonically"
    );

    let mut sim = contested_sim();
    sim.set_policy(ReplayPolicy::new(script));
    let replayed = sim.run().expect("replay of a clean run is clean");
    assert_eq!(replayed.metrics.replay, ReplayDivergence::default());
    assert!(!replayed.metrics.replay.diverged());
    assert_eq!(
        replayed.trace.render(),
        recorded.trace.render(),
        "faithful replay reproduces the run"
    );
}

#[test]
fn corrupted_script_reports_clamping() {
    let mut sim = contested_sim();
    sim.set_policy(LifoPolicy);
    let recorded = sim.run().expect("cannot fail");
    let mut script: Vec<u32> = recorded.decisions.iter().map(|d| d.chosen).collect();
    script[0] = 99; // no decision point in this scenario has arity 100

    let mut sim = contested_sim();
    sim.set_policy(ReplayPolicy::new(script));
    let replayed = sim.run().expect("clamped replay still completes");
    assert!(
        replayed.metrics.replay.clamped > 0,
        "clamping must be recorded"
    );
    assert!(replayed.metrics.replay.diverged());
}

#[test]
fn truncated_script_reports_underrun() {
    let mut sim = contested_sim();
    sim.set_policy(LifoPolicy);
    let recorded = sim.run().expect("cannot fail");
    let script: Vec<u32> = recorded.decisions.iter().map(|d| d.chosen).collect();
    let truncated = script[..script.len() - 1].to_vec();

    let mut sim = contested_sim();
    sim.set_policy(ReplayPolicy::new(truncated));
    let replayed = sim.run().expect("underrun replay still completes");
    assert!(
        replayed.metrics.replay.underruns > 0,
        "script exhaustion at a contested decision must be recorded"
    );
    assert!(replayed.metrics.replay.diverged());
}
