//! Experiment T2: test-set coverage and minimal selection (§1, §4.1).
//!
//! The paper's goal: "derive a set of examples that includes all of these
//! properties with a minimum of redundancy; it will then be possible to
//! tell when an evaluation is complete". These tests exercise the
//! machinery on the canonical catalog and verify that the footnote-2
//! choices are explainable: each of the six problems earns its place by
//! covering something the others do not.

#![deny(deprecated)]

use bloom_core::{
    catalog, coverage, full_target, gaps, greedy_cover, is_complete, minimal_cover, spec,
    ConstraintKind, InfoType, ProblemId, ProblemSpec,
};

#[test]
fn catalog_coverage_spans_all_info_types_and_both_kinds() {
    let cat = catalog();
    let covered = coverage(&cat);
    for info in InfoType::ALL {
        assert!(
            covered.iter().any(|&(_, i)| i == info),
            "no catalog problem exercises {info}"
        );
    }
    for kind in [ConstraintKind::Exclusion, ConstraintKind::Priority] {
        assert!(covered.iter().any(|&(k, _)| k == kind));
    }
}

#[test]
fn minimal_cover_is_small_and_verified_minimal() {
    let cat = catalog();
    let target = full_target(&cat);
    let cover = minimal_cover(&cat, &target).expect("catalog covers itself");
    let chosen: Vec<ProblemSpec> = cover.iter().map(|&i| cat[i].clone()).collect();
    assert!(is_complete(&chosen, &target));
    for skip in 0..cover.len() {
        let without: Vec<ProblemSpec> = chosen
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != skip)
            .map(|(_, p)| p.clone())
            .collect();
        assert!(
            !is_complete(&without, &target),
            "dropping one problem must lose coverage"
        );
    }
    println!(
        "minimal evaluation set ({} problems): {:?}",
        cover.len(),
        chosen.iter().map(|p| p.id.label()).collect::<Vec<_>>()
    );
}

#[test]
fn greedy_matches_exact_on_this_catalog() {
    let cat = catalog();
    let target = full_target(&cat);
    let exact = minimal_cover(&cat, &target).unwrap();
    let greedy = greedy_cover(&cat, &target).unwrap();
    assert_eq!(
        greedy.len(),
        exact.len(),
        "on the canonical catalog the greedy heuristic happens to be optimal"
    );
}

#[test]
fn footnote2_suite_contains_exactly_one_redundancy() {
    // A dividend of the methodology: applied to the paper's *own* test
    // suite, the coverage analysis shows the disk scheduler covers nothing
    // the alarm clock does not (both were included "to make use of
    // parameters passed", but the alarm clock alone exercises parameters
    // in both constraint kinds). Every other member is irreplaceable.
    let suite = [
        ProblemId::BoundedBuffer,
        ProblemId::FcfsResource,
        ProblemId::ReadersPriorityDb,
        ProblemId::DiskScheduler,
        ProblemId::AlarmClock,
        ProblemId::OneSlotBuffer,
    ];
    let specs: Vec<ProblemSpec> = suite.iter().map(|&id| spec(id)).collect();
    let mut redundant = Vec::new();
    for skip in 0..specs.len() {
        let target = coverage(&specs);
        let without: Vec<ProblemSpec> = specs
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != skip)
            .map(|(_, p)| p.clone())
            .collect();
        if gaps(&without, &target).is_empty() {
            redundant.push(specs[skip].id);
        }
    }
    assert_eq!(
        redundant,
        vec![ProblemId::DiskScheduler],
        "the disk scheduler is the footnote-2 suite's one coverage redundancy"
    );
}

#[test]
fn dropping_one_slot_buffer_loses_history_coverage() {
    let cat: Vec<ProblemSpec> = catalog()
        .into_iter()
        .filter(|p| p.id != ProblemId::OneSlotBuffer)
        .collect();
    let target = full_target(&catalog());
    let g = gaps(&cat, &target);
    assert!(
        g.contains(&(ConstraintKind::Exclusion, InfoType::History)),
        "history information is covered only by the one-slot buffer: {g:?}"
    );
}

#[test]
fn rw_variants_are_redundant_for_coverage_but_not_for_independence() {
    // For pure feature coverage, writers-priority adds nothing beyond
    // readers-priority — the paper includes it for the *independence*
    // analysis, not for expressiveness coverage.
    let rp = spec(ProblemId::ReadersPriorityDb);
    let wp = spec(ProblemId::WritersPriorityDb);
    assert_eq!(rp.features(), wp.features());
}
