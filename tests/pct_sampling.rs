//! Root integration test for the R3 sampling layer: seeded PCT/walk
//! sampling over the workload-DSL scenarios, worker-count determinism,
//! replay of sampled counterexamples, and prefix shrinking.
//!
//! The populations here are deliberately past anything the exhaustive
//! explorers could enumerate (101+ processes); every assertion is
//! against a *fixed seed*, so a failure is a deterministic regression,
//! not flake. The CI smoke job runs this file in release.

#![deny(deprecated)]

use bloom_problems::liveness::LiveMechanism;
use bloom_problems::r3::{
    nested_monitor_at_scale, nested_monitor_laws, starvation_at_scale, starvation_laws,
};
use bloom_problems::workload::{Arrival, Think, WorkloadSpec};
use bloom_sim::{replay_exact, shrink_prefix, ExploreConfig, SampleRecord, SampleStrategy};
use proptest::prelude::*;

fn small_spec() -> WorkloadSpec {
    WorkloadSpec::new(21)
        .clients(10)
        .ops(5)
        .arrival(Arrival::Together)
        .think(Think::None)
}

fn hundred_spec() -> WorkloadSpec {
    WorkloadSpec::new(8)
        .clients(100)
        .ops(2)
        .arrival(Arrival::Together)
        .think(Think::None)
}

/// One line per sampled schedule: iteration, decision vector, violated
/// laws. Byte-comparing these across worker counts is the determinism
/// contract.
fn render(journal: &[SampleRecord<Vec<String>>]) -> Vec<String> {
    journal
        .iter()
        .map(|r| format!("{}:{:?}:{:?}", r.iteration, r.choices, r.value))
        .collect()
}

#[test]
fn same_seed_is_byte_identical_across_worker_counts() {
    let spec = small_spec();
    let laws = starvation_laws();
    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let (journal, stats) = ExploreConfig::new(0).threads(threads).sample(
            SampleStrategy::Pct {
                change_points: 4,
                depth_hint: 1024,
            },
            16,
            5,
            || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
            |_, result| {
                let violated = laws.violated(result);
                (violated.clone(), violated)
            },
        );
        let rendered = render(&journal);
        let sampling = stats.sampling.expect("sampler stats");
        match &baseline {
            None => baseline = Some((rendered, sampling)),
            Some((expect_journal, expect_sampling)) => {
                assert_eq!(
                    &rendered, expect_journal,
                    "sampled journal diverged at {threads} workers"
                );
                assert_eq!(
                    &sampling, expect_sampling,
                    "sampling stats diverged at {threads} workers"
                );
            }
        }
    }
}

#[test]
fn pct_finds_replays_and_shrinks_weak_starvation_at_101_processes() {
    let spec = hundred_spec();
    let laws = starvation_laws();
    let (journal, stats) = ExploreConfig::new(0).sample(
        SampleStrategy::Pct {
            change_points: 4,
            depth_hint: 4096,
        },
        4,
        2,
        || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
        |_, result| {
            let violated = laws.violated(result);
            (violated.clone(), violated)
        },
    );
    let sampling = stats.sampling.expect("sampler stats");
    let hits = sampling
        .violations
        .get("starvation-free")
        .copied()
        .unwrap_or(0);
    assert!(
        hits > 0,
        "seeded PCT must starve the writer among 101 processes; got {:?}",
        sampling.violations
    );

    let witness = journal
        .iter()
        .find(|r| r.value.iter().any(|k| k == "starvation-free"))
        .expect("a violating schedule is journaled");
    // The sampled vector replays byte-identically (replay_exact hard-errors
    // on any divergence) and reproduces the same verdict.
    let replayed = replay_exact(
        || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
        &witness.choices,
    );
    assert_eq!(
        laws.violated(&replayed),
        witness.value,
        "replay must reproduce the original violations"
    );

    let minimal = shrink_prefix(
        || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
        &witness.choices,
        |result| laws.violated(result).iter().any(|k| k == "starvation-free"),
    );
    assert!(
        minimal.len() <= witness.choices.len(),
        "shrinking may only remove decisions"
    );
}

#[test]
fn pct_finds_replays_and_shrinks_nested_monitor_deadlock_at_102_processes() {
    let spec = WorkloadSpec::new(13)
        .clients(100)
        .ops(2)
        .arrival(Arrival::Together)
        .think(Think::Fixed(2));
    let laws = nested_monitor_laws();
    let (journal, stats) = ExploreConfig::new(0).sample(
        SampleStrategy::Pct {
            change_points: 2,
            depth_hint: 512,
        },
        6,
        1,
        || nested_monitor_at_scale(&spec),
        |_, result| {
            let violated = laws.violated(result);
            (violated.clone(), violated)
        },
    );
    let sampling = stats.sampling.expect("sampler stats");
    let hits = sampling.violations.get("no-deadlock").copied().unwrap_or(0);
    assert!(
        hits > 0,
        "seeded PCT must close Lister's cycle among 102 processes; got {:?}",
        sampling.violations
    );

    let witness = journal
        .iter()
        .find(|r| r.value.iter().any(|k| k == "no-deadlock"))
        .expect("a deadlocking schedule is journaled");
    let replayed = replay_exact(|| nested_monitor_at_scale(&spec), &witness.choices);
    assert!(
        replayed.is_err(),
        "replaying the sampled vector must reproduce the deadlock"
    );

    let minimal = shrink_prefix(
        || nested_monitor_at_scale(&spec),
        &witness.choices,
        |result| result.is_err(),
    );
    assert!(minimal.len() <= witness.choices.len());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Whatever counterexample a seeded sampler finds, its shrunk prefix
    /// must still violate the same law — shrinking never launders a
    /// failure into a pass.
    #[test]
    fn shrunk_counterexamples_still_violate(seed in any::<u64>()) {
        let spec = WorkloadSpec::new(3)
            .clients(6)
            .ops(6)
            .arrival(Arrival::Together)
            .think(Think::None);
        let laws = starvation_laws();
        let (journal, _) = ExploreConfig::new(0).sample(
            SampleStrategy::Pct {
                change_points: 4,
                depth_hint: 1024,
            },
            6,
            seed,
            || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
            |_, result| {
                let violated = laws.violated(result);
                (violated.clone(), violated)
            },
        );
        let fails = |result: &Result<bloom_sim::SimReport, bloom_sim::SimError>| {
            laws.violated(result).iter().any(|k| k == "starvation-free")
        };
        for witness in journal
            .iter()
            .filter(|r| r.value.iter().any(|k| k == "starvation-free"))
            .take(1)
        {
            let minimal = shrink_prefix(
                || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
                &witness.choices,
                fails,
            );
            prop_assert!(minimal.len() <= witness.choices.len());
            prop_assert!(fails(&bloom_sim::replay_prefix(
                || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
                &minimal,
            )));
        }
    }
}
