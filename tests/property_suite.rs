//! Property-based tests over the whole stack.
//!
//! proptest generates random seeds, workload shapes and path expressions;
//! the safety invariants must hold for every generated case (failures
//! shrink to a minimal seed/shape).

#![deny(deprecated)]

use bloom_core::checks::{
    check_buffer_bounds, check_elevator, check_exclusion, check_fifo, expect_clean,
};
use bloom_core::events::extract;
use bloom_core::MechanismId;
use bloom_pathexpr::{parse_path, Path, PathExpr};
use bloom_problems::drivers::{buffer_scenario, disk_scenario, fcfs_scenario, rw_scenario};
use bloom_problems::rw::RwVariant;
use proptest::prelude::*;

fn mechanisms() -> impl Strategy<Value = MechanismId> {
    prop_oneof![
        Just(MechanismId::Semaphore),
        Just(MechanismId::Monitor),
        Just(MechanismId::Serializer),
        Just(MechanismId::PathV1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Readers/writers exclusion holds for every mechanism, variant and
    /// random schedule proptest can find.
    #[test]
    fn rw_exclusion_is_inviolable(
        mech in mechanisms(),
        variant in prop_oneof![
            Just(RwVariant::ReadersPriority),
            Just(RwVariant::WritersPriority),
            Just(RwVariant::Fcfs),
        ],
        readers in 1usize..5,
        writers in 1usize..4,
        ops in 1usize..4,
        seed in any::<u64>(),
    ) {
        let report = rw_scenario(mech, variant, readers, writers, ops, Some(seed));
        let events = extract(&report.trace);
        expect_clean(
            &check_exclusion(&events, &[("read", "write"), ("write", "write")]),
            &format!("{mech}/{variant:?} seed {seed}"),
        );
    }

    /// Buffer capacity and value conservation hold under random shapes.
    #[test]
    fn buffer_never_overflows(
        mech in prop_oneof![
            Just(MechanismId::Semaphore),
            Just(MechanismId::Monitor),
            Just(MechanismId::Serializer),
            Just(MechanismId::PathV2),
        ],
        capacity in 1usize..6,
        producers in 1usize..4,
        per_producer in 1usize..5,
        seed in any::<u64>(),
    ) {
        let total = producers * per_producer;
        // One consumer takes everything: always evenly divisible.
        let (report, mut sent, mut received) =
            buffer_scenario(mech, capacity, producers, 1, per_producer, Some(seed));
        let events = extract(&report.trace);
        expect_clean(
            &check_buffer_bounds(&events, "deposit", "remove", capacity as i64),
            &format!("{mech} cap {capacity} seed {seed}"),
        );
        sent.sort_unstable();
        received.sort_unstable();
        prop_assert_eq!(sent.len(), total);
        prop_assert_eq!(sent, received);
    }

    /// FCFS order is exact for every mechanism under random schedules.
    #[test]
    fn fcfs_order_is_exact(
        mech in mechanisms(),
        workers in 2usize..7,
        uses in 1usize..4,
        seed in any::<u64>(),
    ) {
        let report = fcfs_scenario(mech, workers, uses, Some(seed));
        let events = extract(&report.trace);
        expect_clean(&check_fifo(&events, &["use"]), &format!("{mech} seed {seed}"));
    }

    /// The disk never violates elevator order, whatever the workload.
    #[test]
    fn elevator_order_is_exact(
        mech in mechanisms(),
        processes in 1usize..5,
        seeks in 1usize..5,
        workload in any::<u64>(),
        sched in any::<u64>(),
    ) {
        let report = disk_scenario(mech, processes, seeks, workload, Some(sched));
        let events = extract(&report.trace);
        expect_clean(
            &check_elevator(&events, "seek"),
            &format!("{mech} workload {workload} sched {sched}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Path expression structural properties
// ---------------------------------------------------------------------------

/// Random path-expression ASTs (bounded depth).
fn path_expr(depth: u32) -> BoxedStrategy<PathExpr> {
    let leaf = "[a-e]{1,3}".prop_map(PathExpr::Op).boxed();
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(PathExpr::Seq),
            prop::collection::vec(inner.clone(), 2..4).prop_map(PathExpr::Sel),
            inner.clone().prop_map(|e| PathExpr::Burst(Box::new(e))),
            (1u32..5, inner).prop_map(|(n, e)| PathExpr::Bounded(n, Box::new(e))),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Pretty-printing then re-parsing reaches a fixed point after one
    /// round (nested `Seq`/`Sel` flatten associatively on the first print,
    /// after which print∘parse is the identity) and preserves semantics
    /// observable through the alphabet.
    #[test]
    fn path_display_parse_round_trip(body in path_expr(3)) {
        let path = Path::new(body);
        let printed = path.to_string();
        let reparsed = parse_path(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(path.alphabet(), reparsed.alphabet());
        let reprinted = reparsed.to_string();
        prop_assert_eq!(&printed, &reprinted, "print is stable after one round trip");
        let reparsed2 = parse_path(&reprinted).expect("stable text reparses");
        prop_assert_eq!(reparsed, reparsed2);
    }

    /// The alphabet of a path is exactly the set of ops in its display.
    #[test]
    fn alphabet_matches_display(body in path_expr(3)) {
        let path = Path::new(body);
        let printed = path.to_string();
        for op in path.alphabet() {
            prop_assert!(printed.contains(&op), "{op} missing from {printed}");
        }
    }
}

// ---------------------------------------------------------------------------
// Single-op path resources behave like FIFO mutexes for any op multiset
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn single_op_path_is_a_fifo_mutex(
        procs in 2usize..6,
        ops in 1usize..5,
        seed in any::<u64>(),
    ) {
        use bloom_pathexpr::PathResource;
        use bloom_sim::prelude::*;
        use std::sync::Arc;

        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(seed));
        let r = Arc::new(PathResource::parse("m", "path a end").unwrap());
        let occupancy = Arc::new(parking_lot::Mutex::new((0u32, 0u32)));
        for i in 0..procs {
            let r = Arc::clone(&r);
            let occupancy = Arc::clone(&occupancy);
            sim.spawn(&format!("p{i}"), move |ctx| {
                for _ in 0..ops {
                    r.perform(ctx, "a", || {
                        {
                            let mut o = occupancy.lock();
                            o.0 += 1;
                            o.1 = o.1.max(o.0);
                        }
                        ctx.yield_now();
                        occupancy.lock().0 -= 1;
                    });
                }
            });
        }
        sim.run().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(occupancy.lock().1, 1);
    }
}

// ---------------------------------------------------------------------------
// Timed acquisition (R2): withdrawal leaves the primitives consistent
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Whatever the schedule, fairness, patience and retry budget, a
    /// timed-out P withdraws without consuming or leaking anything:
    /// mutual exclusion holds throughout and the permit survives the run.
    #[test]
    fn timed_semaphore_survives_withdrawals(
        strong in any::<bool>(),
        contenders in 2usize..6,
        patience in 1u64..8,
        attempts in 1usize..5,
        seed in any::<u64>(),
    ) {
        use bloom_semaphore::{Fairness, Semaphore, TryResult};
        use bloom_sim::prelude::*;
        use std::sync::Arc;

        let fairness = if strong { Fairness::Strong } else { Fairness::Weak };
        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(seed));
        let sem = Arc::new(Semaphore::new("res", 1, fairness));
        // (current holders, max holders, total served)
        let occupancy = Arc::new(parking_lot::Mutex::new((0u32, 0u32, 0u32)));
        for i in 0..contenders {
            let sem = Arc::clone(&sem);
            let occupancy = Arc::clone(&occupancy);
            sim.spawn(&format!("c{i}"), move |ctx| {
                for _ in 0..attempts {
                    if sem.p_by(ctx, patience) == TryResult::Acquired {
                        {
                            let mut o = occupancy.lock();
                            o.0 += 1;
                            o.1 = o.1.max(o.0);
                            o.2 += 1;
                        }
                        ctx.yield_now();
                        occupancy.lock().0 -= 1;
                        sem.v(ctx);
                        return;
                    }
                }
            });
        }
        sim.run().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let (current, max, served) = *occupancy.lock();
        prop_assert_eq!(current, 0);
        prop_assert!(max <= 1, "exclusion violated");
        prop_assert!(served >= 1, "the first contender finds the permit free");
        prop_assert!(sem.try_p(), "a withdrawal leaked the permit");
    }

    /// Whatever the schedule, signalling discipline and patience, timed
    /// condition waits withdraw cleanly: each timeout re-acquires
    /// possession before returning, the busy-flag protocol never admits
    /// two holders, and the flag ends clear.
    #[test]
    fn timed_monitor_wait_survives_withdrawals(
        hoare in any::<bool>(),
        contenders in 2usize..6,
        patience in 1u64..8,
        attempts in 1usize..5,
        seed in any::<u64>(),
    ) {
        use bloom_monitor::{Cond, Monitor, Signaling};
        use bloom_sim::prelude::*;
        use std::sync::Arc;

        let signaling = if hoare { Signaling::Hoare } else { Signaling::SignalAndContinue };
        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(seed));
        let mon = Arc::new(Monitor::new("m", signaling, false));
        let free = Arc::new(Cond::new("free"));
        let occupancy = Arc::new(parking_lot::Mutex::new((0u32, 0u32, 0u32)));
        for i in 0..contenders {
            let mon = Arc::clone(&mon);
            let free = Arc::clone(&free);
            let occupancy = Arc::clone(&occupancy);
            sim.spawn(&format!("c{i}"), move |ctx| {
                let claimed = mon.enter(ctx, |mc| {
                    let mut budget = attempts;
                    while mc.state(|busy| *busy) {
                        if budget == 0 {
                            return false;
                        }
                        budget -= 1;
                        // A `false` return means the wait timed out; either
                        // way possession is ours again here.
                        let _ = mc.wait_by(&free, patience);
                    }
                    mc.state(|busy| *busy = true);
                    true
                });
                if claimed {
                    {
                        let mut o = occupancy.lock();
                        o.0 += 1;
                        o.1 = o.1.max(o.0);
                        o.2 += 1;
                    }
                    ctx.yield_now();
                    occupancy.lock().0 -= 1;
                    mon.enter(ctx, |mc| {
                        mc.state(|busy| *busy = false);
                        mc.signal(&free);
                    });
                }
            });
        }
        sim.run().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let (current, max, served) = *occupancy.lock();
        prop_assert_eq!(current, 0);
        prop_assert!(max <= 1, "exclusion violated");
        prop_assert!(served >= 1, "the first contender finds the flag clear");
        // The flag ends clear: a fresh probe claims it without waiting.
        let mut probe = Sim::new();
        let mon2 = Arc::clone(&mon);
        probe.spawn("probe", move |ctx| {
            mon2.enter(ctx, |mc| assert!(mc.state(|busy| !*busy), "flag left set"));
        });
        probe.run().map_err(|e| TestCaseError::fail(e.to_string()))?;
    }
}

// ---------------------------------------------------------------------------
// CSP channel properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Rendezvous conservation: every value sent is received exactly once,
    /// in per-sender order, whatever the schedule.
    #[test]
    fn channel_conserves_messages(
        senders in 1usize..5,
        msgs in 1usize..6,
        seed in any::<u64>(),
    ) {
        use bloom_channel::Channel;
        use bloom_sim::prelude::*;
        use std::sync::Arc;

        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(seed));
        let ch = Arc::new(Channel::new("ch"));
        for s in 0..senders {
            let ch = Arc::clone(&ch);
            sim.spawn(&format!("s{s}"), move |ctx| {
                for m in 0..msgs {
                    ch.send(ctx, (s * 100 + m) as i64);
                }
            });
        }
        let ch2 = Arc::clone(&ch);
        let got = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        sim.spawn("receiver", move |ctx| {
            for _ in 0..senders * msgs {
                g.lock().push(ch2.recv(ctx));
            }
        });
        sim.run().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let got = got.lock();
        prop_assert_eq!(got.len(), senders * msgs);
        for s in 0..senders as i64 {
            let per: Vec<i64> =
                got.iter().copied().filter(|v| v / 100 == s).map(|v| v % 100).collect();
            let expected: Vec<i64> = (0..msgs as i64).collect();
            prop_assert_eq!(per, expected, "per-sender FIFO order");
        }
    }

    /// Guarded select over a server loop never loses or duplicates
    /// requests, whatever the guard pattern the bounded buffer induces.
    #[test]
    fn csp_buffer_conserves_under_random_shapes(
        capacity in 1usize..5,
        producers in 1usize..4,
        per in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (_, mut sent, mut received) =
            bloom_problems::drivers::buffer_scenario(
                MechanismId::Csp, capacity, producers, 1, per, Some(seed));
        sent.sort_unstable();
        received.sort_unstable();
        prop_assert_eq!(sent, received);
    }
}

// ---------------------------------------------------------------------------
// Path token-machine conservation
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// For any single-path cyclic spec over a two-op sequence with a
    /// numeric bound, in-flight cycles never exceed the bound and the
    /// machine returns to its initial state.
    #[test]
    fn bounded_cycles_conserve_tokens(
        bound in 1u32..5,
        workers in 1usize..4,
        rounds in 1usize..4,
        seed in any::<u64>(),
    ) {
        use bloom_pathexpr::PathResource;
        use bloom_sim::prelude::*;
        use std::sync::Arc;

        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(seed));
        let r = Arc::new(
            PathResource::parse("p", &format!("path {bound} : (a ; b) end")).unwrap(),
        );
        let inflight = Arc::new(parking_lot::Mutex::new((0i64, 0i64)));
        for w in 0..workers {
            let r = Arc::clone(&r);
            let inflight = Arc::clone(&inflight);
            sim.spawn(&format!("w{w}"), move |ctx| {
                for _ in 0..rounds {
                    r.perform(ctx, "a", || {
                        let mut f = inflight.lock();
                        f.0 += 1;
                        f.1 = f.1.max(f.0);
                    });
                    ctx.yield_now();
                    r.perform(ctx, "b", || inflight.lock().0 -= 1);
                }
            });
        }
        sim.run().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let (current, max) = *inflight.lock();
        prop_assert_eq!(current, 0);
        prop_assert!(max <= bound as i64);
        // Machine back at rest: a new cycle can start, b cannot.
        let r2 = Arc::clone(&r);
        let mut sim = Sim::new();
        sim.spawn("probe", move |ctx| {
            let _ = ctx;
            assert!(r2.can_start("a"));
            assert!(!r2.can_start("b"));
        });
        sim.run().unwrap();
    }
}
